"""Tests for the provenance client: forward semantics and TRACER
optimality against brute force.  (The wp-vs-forward consistency check
lives in ``tests/core/test_wp_consistency.py``, shared by every
client.)"""

import itertools
import random

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.lang import (
    Assign,
    AssignNull,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
    parse_program,
)
from repro.provenance import (
    PT_TOP,
    ProvenanceAnalysis,
    ProvenanceClient,
    ProvenanceQuery,
    PtSchema,
)
from tests.randprog import random_escape_program

VARS = ("x", "y")
SITES = ("h1", "h2")
SCHEMA = PtSchema(VARS)


class TestForward:
    @pytest.fixture
    def analysis(self):
        return ProvenanceAnalysis(SCHEMA, frozenset(SITES))

    def test_tracked_allocation(self, analysis):
        d = analysis.transfer(New("x", "h1"), frozenset({"h1"}), SCHEMA.initial())
        assert d.get("x") == frozenset({"h1"})

    def test_untracked_allocation_is_top(self, analysis):
        d = analysis.transfer(New("x", "h1"), frozenset(), SCHEMA.initial())
        assert d.get("x") is PT_TOP

    def test_copy_and_null(self, analysis):
        d = SCHEMA.state({"y": frozenset({"h2"})})
        d = analysis.transfer(Assign("x", "y"), frozenset(SITES), d)
        assert d.get("x") == frozenset({"h2"})
        d = analysis.transfer(AssignNull("x"), frozenset(SITES), d)
        assert d.get("x") == frozenset()

    def test_loads_are_top(self, analysis):
        for command in (LoadGlobal("x", "g"), LoadField("x", "y", "f")):
            d = analysis.transfer(command, frozenset(SITES), SCHEMA.initial())
            assert d.get("x") is PT_TOP

    def test_stores_are_identity(self, analysis):
        d = SCHEMA.state({"x": frozenset({"h1"})})
        for command in (
            StoreGlobal("g", "x"),
            StoreField("y", "f", "x"),
            ThreadStart("x"),
            Invoke("x", "m"),
            Observe("q"),
        ):
            assert analysis.transfer(command, frozenset(SITES), d) == d


class TestEndToEnd:
    def test_devirtualization_scenario(self):
        program = parse_program(
            """
            choice {
              x = new h1
            } or {
              x = new h2
            }
            y = x
            observe pc
            """
        )
        client = ProvenanceClient(program, SCHEMA, frozenset(SITES))
        # y may come from h1 or h2: proving 'only h1/h2' needs both tracked.
        record = Tracer(client, TracerConfig(k=2)).solve(
            ProvenanceQuery("pc", "y", frozenset(SITES))
        )
        assert record.status is QueryStatus.PROVEN
        assert record.abstraction == frozenset(SITES)
        # Proving 'only h1' is impossible: the h2 branch refutes it.
        record = Tracer(client, TracerConfig(k=2)).solve(
            ProvenanceQuery("pc", "y", frozenset({"h1"}))
        )
        assert record.status is QueryStatus.IMPOSSIBLE

    def test_heap_load_is_impossible(self):
        program = parse_program(
            """
            x = new h1
            y = $g
            observe pc
            """
        )
        client = ProvenanceClient(program, SCHEMA, frozenset(SITES))
        record = Tracer(client).solve(
            ProvenanceQuery("pc", "y", frozenset(SITES))
        )
        assert record.status is QueryStatus.IMPOSSIBLE

    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("k", [1, None])
    def test_optimality_vs_brute_force(self, seed, k):
        rng = random.Random(seed * 11 + (3 if k is None else k))
        from tests.randprog import FIELDS, SITES as RSITES, VARS as RVARS

        program = random_escape_program(rng, length=6)
        client = ProvenanceClient(
            program, PtSchema(RVARS), frozenset(RSITES)
        )
        query = ProvenanceQuery("q", "x", frozenset(RSITES))
        expected = None
        for r in range(len(RSITES) + 1):
            if expected is not None:
                break
            for combo in itertools.combinations(sorted(RSITES), r):
                if client.counterexamples([query], frozenset(combo))[query] is None:
                    expected = r
                    break
        record = Tracer(client, TracerConfig(k=k, max_iterations=100)).solve(query)
        if expected is None:
            assert record.status is QueryStatus.IMPOSSIBLE
        else:
            assert record.status is QueryStatus.PROVEN
            assert record.abstraction_cost == expected
