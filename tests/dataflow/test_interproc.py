"""Tests for the interprocedural tabulation engine.

The toy domain from the collecting tests is reused: states are
frozensets of variables known to point somewhere; ``New`` gens,
``AssignNull`` kills, ``Assign`` copies.
"""

import pytest

from repro.dataflow.interproc import ProcGraph, run_tabulation
from repro.lang import (
    Assign,
    AssignNull,
    Atom,
    New,
    Observe,
    Star,
    build_cfg,
    choice,
    seq,
)
from repro.lang.ast import CallProc


def step(command, state):
    if isinstance(command, New):
        return state | {command.lhs}
    if isinstance(command, AssignNull):
        return state - {command.lhs}
    if isinstance(command, Assign):
        if command.rhs in state:
            return state | {command.lhs}
        return state - {command.lhs}
    return state


def graph(**procedures):
    return ProcGraph(
        procedures={name: build_cfg(body) for name, body in procedures.items()},
        main="main",
    )


class TestValidation:
    def test_missing_main_rejected(self):
        with pytest.raises(ValueError):
            ProcGraph(procedures={}, main="main")

    def test_unknown_callee_rejected(self):
        with pytest.raises(ValueError):
            graph(main=seq(CallProc("ghost")))


class TestBasics:
    def test_plain_procedure_matches_collecting(self):
        g = graph(main=seq(New("x", "h"), Assign("y", "x")))
        result = run_tabulation(g, step, frozenset())
        assert result.exit_states() == (frozenset({"x", "y"}),)

    def test_call_splices_callee_effect(self):
        g = graph(
            main=seq(New("x", "h"), CallProc("helper"), Assign("z", "y")),
            helper=seq(Assign("y", "x")),
        )
        result = run_tabulation(g, step, frozenset())
        assert result.exit_states() == (frozenset({"x", "y", "z"}),)

    def test_summary_reused_across_call_sites(self):
        # Both branches call helper from the same state: one summary.
        g = graph(
            main=seq(
                New("x", "h"),
                choice(seq(CallProc("helper")), seq(CallProc("helper"))),
            ),
            helper=seq(Assign("y", "x")),
        )
        result = run_tabulation(g, step, frozenset())
        assert set(result.summaries["helper"]) == {frozenset({"x"})}

    def test_repeated_call_gets_new_entry_summary(self):
        # The second call's entry state includes the first call's
        # effect, so a second summary is tabulated (context sensitivity
        # by entry state, not by call site).
        g = graph(
            main=seq(New("x", "h"), CallProc("helper"), CallProc("helper")),
            helper=seq(Assign("y", "x")),
        )
        result = run_tabulation(g, step, frozenset())
        assert set(result.summaries["helper"]) == {
            frozenset({"x"}),
            frozenset({"x", "y"}),
        }

    def test_polyvariant_summaries(self):
        g = graph(
            main=seq(
                choice(New("x", "h"), AssignNull("x")),
                CallProc("helper"),
            ),
            helper=seq(Assign("y", "x")),
        )
        result = run_tabulation(g, step, frozenset())
        # Two entry states, two summaries: full context sensitivity.
        assert set(result.summaries["helper"]) == {
            frozenset(),
            frozenset({"x"}),
        }
        assert set(result.exit_states()) == {
            frozenset(),
            frozenset({"x", "y"}),
        }

    def test_nested_calls(self):
        g = graph(
            main=seq(New("a", "h"), CallProc("outer")),
            outer=seq(Assign("b", "a"), CallProc("inner")),
            inner=seq(Assign("c", "b")),
        )
        result = run_tabulation(g, step, frozenset())
        assert result.exit_states() == (frozenset({"a", "b", "c"}),)


class TestRecursion:
    def test_self_recursion_terminates(self):
        # rec() { if (*) { x = new h; rec() } }
        g = graph(
            main=seq(CallProc("rec")),
            rec=choice(seq(New("x", "h"), CallProc("rec")), seq()),
        )
        result = run_tabulation(g, step, frozenset())
        assert set(result.exit_states()) == {frozenset(), frozenset({"x"})}

    def test_mutual_recursion_terminates(self):
        g = graph(
            main=seq(CallProc("even")),
            even=choice(seq(New("e", "h"), CallProc("odd")), seq()),
            odd=choice(seq(New("o", "h"), CallProc("even")), seq()),
        )
        result = run_tabulation(g, step, frozenset())
        states = set(result.exit_states())
        assert frozenset() in states
        assert frozenset({"e", "o"}) in states


class TestWitnessTraces:
    def _replay(self, trace):
        state = frozenset()
        for command in trace:
            state = step(command, state)
        return state

    def test_trace_through_call(self):
        g = graph(
            main=seq(New("x", "h"), CallProc("helper"), Observe("q")),
            helper=seq(Assign("y", "x")),
        )
        result = run_tabulation(g, step, frozenset())
        for handle, state in result.states_before_observe("q"):
            trace = result.trace_to(handle, state)
            assert self._replay(trace) == state
            assert not any(isinstance(c, CallProc) for c in trace)

    def test_observe_inside_callee(self):
        g = graph(
            main=seq(
                choice(New("x", "h"), AssignNull("x")),
                CallProc("helper"),
            ),
            helper=seq(Assign("y", "x"), Observe("inside")),
        )
        result = run_tabulation(g, step, frozenset())
        observed = result.states_before_observe("inside")
        states = {state for _h, state in observed}
        assert states == {frozenset(), frozenset({"x", "y"})}
        for handle, state in observed:
            assert self._replay(result.trace_to(handle, state)) == state

    def test_trace_through_recursion(self):
        g = graph(
            main=seq(CallProc("rec"), Observe("q")),
            rec=choice(seq(New("x", "h"), CallProc("rec")), seq()),
        )
        result = run_tabulation(g, step, frozenset())
        for handle, state in result.states_before_observe("q"):
            assert self._replay(result.trace_to(handle, state)) == state

    def test_trace_through_loop_with_calls(self):
        g = graph(
            main=seq(
                Star(seq(CallProc("toggle"))),
                Observe("q"),
            ),
            toggle=choice(seq(New("x", "h")), seq(AssignNull("x"))),
        )
        result = run_tabulation(g, step, frozenset())
        for handle, state in result.states_before_observe("q"):
            assert self._replay(result.trace_to(handle, state)) == state


class TestEquivalenceWithCollecting:
    """On call-free programs the tabulation engine must agree exactly
    with the collecting engine (states at exit and per-observe)."""

    @pytest.mark.parametrize("seed", range(15))
    def test_random_programs(self, seed):
        import random

        from repro.dataflow.collecting import run_collecting
        from tests.randprog import random_escape_program

        rng = random.Random(2000 + seed)
        program = random_escape_program(rng, length=7)
        cfg = build_cfg(program)
        collecting = run_collecting(cfg, step, frozenset())
        g = ProcGraph(procedures={"main": cfg}, main="main")
        tabulated = run_tabulation(g, step, frozenset())
        assert set(tabulated.exit_states()) == set(collecting.exit_states())
        col_states = {s for _n, s in collecting.states_before_observe("q")}
        tab_states = {s for _h, s in tabulated.states_before_observe("q")}
        assert col_states == tab_states
