"""Tests for the forward-engine adapters and CallProc syntax."""

from repro.dataflow import (
    CollectingEngine,
    ProcGraph,
    TabulationEngine,
    engine_for,
)
from repro.lang import (
    Assign,
    CallProc,
    New,
    build_cfg,
    parse_program,
    pretty_command,
    seq,
)
from tests.dataflow.test_collecting import step


class TestEngineFor:
    def test_structured_program_gets_collecting(self):
        engine = engine_for(seq(New("x", "h")))
        assert isinstance(engine, CollectingEngine)

    def test_proc_graph_gets_tabulation(self):
        graph = ProcGraph(
            procedures={"main": build_cfg(seq(New("x", "h")))}, main="main"
        )
        engine = engine_for(graph)
        assert isinstance(engine, TabulationEngine)

    def test_engines_agree_on_call_free_program(self):
        program = seq(New("x", "h"), Assign("y", "x"))
        collecting = engine_for(program).run(step, frozenset())
        graph = ProcGraph(
            procedures={"main": build_cfg(program)}, main="main"
        )
        tabulated = engine_for(graph).run(step, frozenset())
        assert set(collecting.exit_states()) == set(tabulated.exit_states())


class TestCallProcSyntax:
    def test_parse_call(self):
        from repro.lang import Atom

        program = parse_program("call Node.grow")
        assert program == Atom(CallProc("Node.grow"))

    def test_pretty_round_trip(self):
        command = CallProc("helper")
        assert pretty_command(command) == "call helper"
        from repro.lang import Atom

        assert parse_program(pretty_command(command)) == Atom(command)
