"""Tests for the generic worklist solver."""

from repro.dataflow import PowersetLattice, solve_forward
from repro.lang import Assign, AssignNull, New, Star, build_cfg, choice, seq


def transfer(edge, value):
    command = edge.command
    if command is None:
        return value
    if isinstance(command, New):
        return value | {command.lhs}
    if isinstance(command, AssignNull):
        return value - {command.lhs}
    if isinstance(command, Assign):
        return value | {command.lhs} if command.rhs in value else value
    return value


class TestSolveForward:
    def test_straight_line(self):
        cfg = build_cfg(seq(New("x", "h"), Assign("y", "x")))
        values = solve_forward(cfg, PowersetLattice(), transfer, frozenset())
        assert values[cfg.exit] == frozenset({"x", "y"})

    def test_join_at_merge_point(self):
        cfg = build_cfg(choice(New("x", "h"), New("y", "h")))
        values = solve_forward(cfg, PowersetLattice(), transfer, frozenset())
        # May-information joins both branches.
        assert values[cfg.exit] == frozenset({"x", "y"})

    def test_loop_terminates_with_fixpoint(self):
        cfg = build_cfg(Star(seq(New("x", "h"), Assign("y", "x"))))
        values = solve_forward(cfg, PowersetLattice(), transfer, frozenset())
        assert values[cfg.exit] == frozenset({"x", "y"})

    def test_entry_value_preserved(self):
        cfg = build_cfg(seq(AssignNull("z")))
        values = solve_forward(
            cfg, PowersetLattice(), transfer, frozenset({"z", "w"})
        )
        assert values[cfg.exit] == frozenset({"w"})

    def test_unreachable_nodes_absent(self):
        cfg = build_cfg(seq(New("x", "h")))
        values = solve_forward(cfg, PowersetLattice(), transfer, frozenset())
        assert cfg.exit in values
