"""Tests for the disjunctive collecting engine and witness traces.

Toy abstract domain: a state is the frozenset of variables that
definitely point to *some* object; ``New`` gens, ``AssignNull`` kills,
``Assign`` copies.
"""

from repro.lang import (
    Assign,
    AssignNull,
    Atom,
    New,
    Observe,
    Star,
    build_cfg,
    choice,
    enumerate_traces,
    seq,
)
from repro.dataflow import run_collecting


def step(command, state):
    if isinstance(command, New):
        return state | {command.lhs}
    if isinstance(command, AssignNull):
        return state - {command.lhs}
    if isinstance(command, Assign):
        if command.rhs in state:
            return state | {command.lhs}
        return state - {command.lhs}
    return state


def run(program, init=frozenset()):
    return run_collecting(build_cfg(program), step, init)


class TestFixpoint:
    def test_straight_line(self):
        result = run(seq(New("x", "h"), Assign("y", "x")))
        assert result.exit_states() == (frozenset({"x", "y"}),)

    def test_choice_collects_both_branches(self):
        result = run(choice(New("x", "h"), AssignNull("x")))
        assert set(result.exit_states()) == {frozenset(), frozenset({"x"})}

    def test_loop_reaches_fixpoint(self):
        # Loop toggles x: states {} and {x} both reachable at exit.
        program = Star(choice(New("x", "h"), AssignNull("x")))
        result = run(program)
        assert set(result.exit_states()) == {frozenset(), frozenset({"x"})}

    def test_agrees_with_trace_semantics(self):
        program = seq(
            choice(New("x", "h"), AssignNull("x")),
            Star(Atom(Assign("y", "x"))),
            choice(Assign("z", "y"), AssignNull("z")),
        )
        collected = set(run(program).exit_states())
        via_traces = set()
        for trace in enumerate_traces(program, max_unroll=3):
            state = frozenset()
            for command in trace:
                state = step(command, state)
            via_traces.add(state)
        assert collected == via_traces

    def test_steps_counted(self):
        result = run(seq(New("x", "h"), Assign("y", "x")))
        assert result.steps == 2


class TestWitnessTraces:
    def test_trace_replays_to_state(self):
        program = seq(
            choice(New("x", "h"), AssignNull("x")),
            Assign("y", "x"),
        )
        result = run(program)
        for state in result.exit_states():
            trace = result.trace_to(result.cfg.exit, state)
            replay = frozenset()
            for command in trace:
                replay = step(command, replay)
            assert replay == state

    def test_trace_through_loop(self):
        program = Star(Atom(New("x", "h")))
        result = run(program)
        trace = result.trace_to(result.cfg.exit, frozenset({"x"}))
        assert trace == (New("x", "h"),)

    def test_entry_state_has_empty_trace(self):
        result = run(seq(New("x", "h")))
        assert result.trace_to(result.cfg.entry, frozenset()) == ()

    def test_states_before_observe(self):
        program = seq(
            choice(New("x", "h"), AssignNull("x")),
            Observe("q"),
            AssignNull("x"),
        )
        result = run(program)
        observed = result.states_before_observe("q")
        states = {state for _node, state in observed}
        assert states == {frozenset(), frozenset({"x"})}

    def test_observe_trace_ends_at_query_point(self):
        program = seq(New("x", "h"), Observe("q"), AssignNull("x"))
        result = run(program)
        ((node, state),) = result.states_before_observe("q")
        trace = result.trace_to(node, state)
        assert trace == (New("x", "h"),)
