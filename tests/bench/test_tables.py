"""Tests for the table renderers."""

from repro.bench.tables import (
    _format_seconds,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.core.stats import QueryRecord, QueryStatus, summarize_records
from repro.frontend.metrics import ProgramMetrics


def _metrics(name="tsp"):
    return ProgramMetrics(
        name=name,
        app_classes=2,
        total_classes=4,
        app_methods=3,
        total_methods=6,
        app_statements=30,
        total_statements=60,
        reachable_methods=5,
        inlined_commands=120,
        typestate_log2_abstractions=20,
        escape_log2_abstractions=8,
    )


def _aggregates():
    proven = [
        QueryRecord("a", QueryStatus.PROVEN, 2, frozenset({"x"}), 1, 0.5),
        QueryRecord("b", QueryStatus.PROVEN, 3, frozenset({"x", "y"}), 2, 1.5),
    ]
    impossible = [QueryRecord("c", QueryStatus.IMPOSSIBLE, 4, None, None, 2.0)]
    agg = summarize_records(proven + impossible)
    return {"tsp": (agg, agg)}


class TestTable1:
    def test_contains_all_columns(self):
        text = render_table1([_metrics()])
        assert "tsp" in text
        assert "log2|P| ts" in text
        assert "20" in text and "120" in text

    def test_one_row_per_benchmark(self):
        text = render_table1([_metrics("a"), _metrics("b")])
        assert len(text.splitlines()) == 4  # header + rule + 2 rows


class TestTable2:
    def test_iteration_triples(self):
        text = render_table2(_aggregates())
        assert "2/3/2.5" in text  # proven iterations min/max/avg
        assert "4/4/4.0" in text  # impossible iterations

    def test_times_rendered_human_readable(self):
        text = render_table2(_aggregates())
        assert "500ms" in text or "0.5" in text


class TestTable3:
    def test_abstraction_sizes(self):
        text = render_table3(_aggregates())
        assert "1" in text and "2" in text and "1.5" in text

    def test_handles_missing_stats(self):
        agg = summarize_records(
            [QueryRecord("c", QueryStatus.IMPOSSIBLE, 1)]
        )
        text = render_table3({"x": (agg, agg)})
        assert "-" in text


class TestTable4:
    def test_group_columns(self):
        text = render_table4(_aggregates())
        # Two proven queries with distinct abstractions: 2 groups of 1.
        assert "2" in text
        assert "1.0" in text


class TestFormatSeconds:
    def test_scales(self):
        assert _format_seconds(0.02) == "20ms"
        assert _format_seconds(2.5) == "2.5s"
        assert _format_seconds(90) == "1.5m"
        assert _format_seconds(7200) == "2.0h"
