"""Tests for the one-call evaluation report."""

from repro.bench.report import full_report


class TestFullReport:
    def test_single_benchmark_report(self):
        lines = []
        results = full_report(
            names=["tsp"], k=5, emit=lines.append, k_sweep=()
        )
        text = "\n".join(lines)
        assert "tsp" in text
        assert "Figure 12" in text
        assert "Table 2" in text
        assert "Table 3" in text
        assert "Table 4" in text
        assert set(results) == {"tsp"}
        assert set(results["tsp"]) == {"typestate", "escape"}

    def test_k_sweep_included_for_small_benchmarks(self):
        lines = []
        full_report(names=["tsp"], k=5, emit=lines.append, k_sweep=(1,))
        assert any("Figure 13" in line for line in lines)

    def test_figure14_only_for_largest(self):
        lines = []
        full_report(names=["tsp"], k=5, emit=lines.append, k_sweep=())
        assert not any("Figure 14" in line for line in lines)
