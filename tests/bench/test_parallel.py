"""Serial-vs-parallel determinism of the evaluation harness."""

import pytest

from repro.bench.harness import evaluate_benchmark, prepare
from repro.bench.parallel import (
    evaluate_benchmark_parallel,
    evaluate_many,
    work_units,
)
from repro.core.tracer import TracerConfig

CONFIG = TracerConfig(k=5, max_iterations=30)


def record_key(record):
    """Everything about a record except wall-clock time."""
    return (
        record.query_id,
        record.status,
        record.abstraction,
        record.abstraction_cost,
        record.iterations,
        record.forward_runs,
        record.forward_cache_hits,
        record.max_disjuncts,
    )


@pytest.fixture(scope="module")
def instances():
    return {name: prepare(name) for name in ("tsp", "elevator")}


class TestWorkUnits:
    def test_typestate_units_follow_client_count(self, instances):
        from repro.bench.harness import analysis_setups

        bench = instances["elevator"]
        units = work_units(bench, "typestate")
        assert len(units) == len(analysis_setups(bench, "typestate"))
        assert [u.index for u in units] == list(range(len(units)))

    def test_escape_is_one_unit(self, instances):
        assert len(work_units(instances["tsp"], "escape")) == 1

    def test_standard_benchmarks_ship_no_program(self, instances):
        assert all(
            u.front is None for u in work_units(instances["tsp"], "typestate")
        )


class TestSerialParallelDeterminism:
    @pytest.mark.parametrize("name", ["tsp", "elevator"])
    @pytest.mark.parametrize("analysis", ["typestate", "escape"])
    def test_jobs4_matches_jobs1(self, instances, name, analysis):
        serial = evaluate_benchmark(instances[name], analysis, CONFIG, jobs=1)
        parallel = evaluate_benchmark(instances[name], analysis, CONFIG, jobs=4)
        assert [record_key(r) for r in serial.records] == [
            record_key(r) for r in parallel.records
        ]

    def test_evaluate_many_matches_serial(self, instances):
        serial = evaluate_many(instances, ("typestate", "escape"), CONFIG, jobs=1)
        parallel = evaluate_many(
            instances, ("typestate", "escape"), CONFIG, jobs=4
        )
        assert list(serial) == list(parallel)
        for name in serial:
            assert list(serial[name]) == list(parallel[name])
            for analysis in serial[name]:
                assert [
                    record_key(r) for r in serial[name][analysis].records
                ] == [record_key(r) for r in parallel[name][analysis].records]

    def test_custom_program_rides_along(self, instances):
        # A non-suite program must reach the workers by value.
        custom = prepare("tsp", instances["tsp"].front)
        assert not custom.standard
        serial = evaluate_benchmark(custom, "typestate", CONFIG, jobs=1)
        parallel = evaluate_benchmark(custom, "typestate", CONFIG, jobs=2)
        assert [record_key(r) for r in serial.records] == [
            record_key(r) for r in parallel.records
        ]

    def test_single_unit_falls_back_to_serial(self, instances):
        result = evaluate_benchmark(instances["tsp"], "escape", CONFIG, jobs=4)
        assert result.query_count > 0


class TestRenderedOutputDeterminism:
    def test_tables_and_figure_identical_after_time_normalisation(
        self, instances
    ):
        import dataclasses

        from repro.bench.figures import render_figure12
        from repro.bench.tables import render_table2
        from repro.core.stats import summarize_records

        def rendered(results):
            aggregates = {
                name: tuple(
                    summarize_records(
                        [
                            dataclasses.replace(r, time_seconds=0.0)
                            for r in results[name][analysis].records
                        ]
                    )
                    for analysis in ("typestate", "escape")
                )
                for name in results
            }
            return render_figure12(aggregates) + "\n" + render_table2(aggregates)

        serial = evaluate_many(instances, ("typestate", "escape"), CONFIG, jobs=1)
        parallel = evaluate_many(
            instances, ("typestate", "escape"), CONFIG, jobs=4
        )
        assert rendered(serial) == rendered(parallel)
