"""Tests for the seven-benchmark suite definitions."""

import pytest

from repro.bench.suite import BENCHMARK_NAMES, benchmark, benchmark_profiles, load_suite
from repro.frontend import compute_metrics


class TestSuite:
    def test_seven_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 7
        assert BENCHMARK_NAMES[0] == "tsp"

    def test_profiles_cover_all_names(self):
        assert set(benchmark_profiles()) == set(BENCHMARK_NAMES)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            benchmark("doom3")

    def test_each_benchmark_builds(self):
        for name in BENCHMARK_NAMES:
            program = benchmark(name)
            assert program.finalized
            assert program.site_class

    def test_load_suite_builds_everything(self):
        suite = load_suite()
        assert set(suite) == set(BENCHMARK_NAMES)

    def test_deterministic_rebuild(self):
        first = benchmark("hedc")
        second = benchmark("hedc")
        assert first.site_class == second.site_class

    def test_relative_size_ordering(self):
        """The suite preserves the paper's relative size ordering."""
        sizes = {
            name: compute_metrics(name, benchmark(name)).inlined_commands
            for name in BENCHMARK_NAMES
        }
        assert sizes["tsp"] < sizes["hedc"] < sizes["weblech"]
        assert sizes["weblech"] < sizes["antlr"] < sizes["avrora"]
        assert max(sizes, key=sizes.get) == "avrora"


class TestScaledProfiles:
    def test_scaling_grows_programs(self):
        from repro.bench.suite import benchmark_scaled
        from repro.frontend import compute_metrics

        small = compute_metrics("s", benchmark_scaled("tsp", 0.5))
        large = compute_metrics("l", benchmark_scaled("tsp", 2.0))
        assert small.inlined_commands < large.inlined_commands

    def test_scale_one_is_the_suite_program(self):
        from repro.bench.suite import benchmark, benchmark_scaled

        base = benchmark("elevator")
        scaled = benchmark_scaled("elevator", 1.0)
        assert base.site_class == scaled.site_class

    def test_rejects_tiny_factor(self):
        import pytest as _pytest

        from repro.bench.suite import benchmark_scaled

        with _pytest.raises(ValueError):
            benchmark_scaled("tsp", 0.1)

    def test_unknown_name_rejected(self):
        import pytest as _pytest

        from repro.bench.suite import benchmark_scaled

        with _pytest.raises(KeyError):
            benchmark_scaled("doom3", 1.0)
