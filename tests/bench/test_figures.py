"""Tests for the figure renderers."""

from repro.bench.figures import render_figure12, render_figure13, render_figure14
from repro.core.stats import QueryRecord, QueryStatus, summarize_records


def _aggregate(proven, impossible, exhausted):
    records = []
    for i in range(proven):
        records.append(
            QueryRecord(f"p{i}", QueryStatus.PROVEN, 1, frozenset({"x"}), 1)
        )
    for i in range(impossible):
        records.append(QueryRecord(f"i{i}", QueryStatus.IMPOSSIBLE, 1))
    for i in range(exhausted):
        records.append(QueryRecord(f"e{i}", QueryStatus.EXHAUSTED, 9))
    return summarize_records(records)


class TestFigure12:
    def test_bars_reflect_fractions(self):
        agg = _aggregate(5, 5, 0)
        text = render_figure12({"tsp": (agg, agg)})
        assert "5 proven" in text
        assert "#" in text and "x" in text

    def test_empty_query_set(self):
        agg = _aggregate(0, 0, 0)
        text = render_figure12({"tsp": (agg, agg)})
        assert "no queries" in text

    def test_unresolved_marked(self):
        agg = _aggregate(1, 1, 8)
        text = render_figure12({"b": (agg, agg)})
        assert "8 unresolved" in text
        assert "." in text


class TestFigure13:
    def test_bars_scale_to_peak(self):
        text = render_figure13({"tsp": {1: 1.0, 5: 2.0, 10: 4.0}})
        lines = [l for l in text.splitlines() if "k=" in l]
        assert len(lines) == 3
        assert lines[0].count("#") < lines[2].count("#")

    def test_beam_disabled_labelled(self):
        text = render_figure13({"tsp": {None: 1.0, 1: 0.5}})
        assert "k=all" in text


class TestFigure14:
    def test_histogram_rows(self):
        text = render_figure14({"avrora": {1: 10, 7: 2}})
        assert "size   1" in text
        assert "size   7" in text
        assert "10" in text

    def test_empty_histogram(self):
        text = render_figure14({"antlr": {}})
        assert "antlr" in text
