"""Tests for the synthetic benchmark generator."""

import dataclasses

from repro.bench.generators import BenchmarkProfile, synthesize
from repro.frontend import build_callgraph, inline_program
from repro.frontend.program import (
    SCall,
    SLoadField,
    SNew,
    SStoreGlobal,
    SThreadStart,
    walk_statements,
)

PROFILE = BenchmarkProfile(name="toy", seed=42, app_classes=3, lib_classes=1)


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = synthesize(PROFILE)
        b = synthesize(PROFILE)
        assert sorted(a.classes) == sorted(b.classes)
        assert a.site_class == b.site_class
        a_inline = inline_program(a)
        b_inline = inline_program(b)
        assert a_inline.command_count == b_inline.command_count
        assert a_inline.variables == b_inline.variables

    def test_different_seed_different_program(self):
        a = synthesize(PROFILE)
        b = synthesize(dataclasses.replace(PROFILE, seed=43))
        a_cmds = inline_program(a).command_count
        b_cmds = inline_program(b).command_count
        assert a.site_class != b.site_class or a_cmds != b_cmds


class TestWellFormedness:
    def test_finalizes_without_error(self):
        program = synthesize(PROFILE)
        assert program.finalized

    def test_callgraph_is_acyclic_for_inliner(self):
        program = synthesize(PROFILE)
        result = inline_program(program)
        assert result.recursion_cuts == 0  # layered levels forbid cycles

    def test_entry_exists(self):
        program = synthesize(PROFILE)
        assert program.entry() is not None

    def test_workers_have_run_methods(self):
        profile = dataclasses.replace(PROFILE, worker_classes=2)
        program = synthesize(profile)
        for name in ("Worker0", "Worker1"):
            assert "run" in program.classes[name].methods

    def test_thread_starts_emitted(self):
        profile = dataclasses.replace(PROFILE, worker_classes=1)
        program = synthesize(profile)
        main = program.entry()
        assert any(
            isinstance(s, SThreadStart) for s in walk_statements(main.body)
        )


class TestPatternMix:
    def _all_stmts(self, program):
        return [
            stmt
            for _cls, method in program.methods()
            for stmt in walk_statements(method.body)
        ]

    def test_contains_allocations_calls_and_heap_ops(self):
        stmts = self._all_stmts(synthesize(PROFILE))
        kinds = {type(s) for s in stmts}
        assert SNew in kinds
        assert SCall in kinds

    def test_publication_sites_exist(self):
        profile = dataclasses.replace(PROFILE, publish_weight=6)
        stmts = self._all_stmts(synthesize(profile))
        assert any(isinstance(s, SStoreGlobal) for s in stmts)

    def test_queries_generated_on_field_accesses(self):
        program = synthesize(PROFILE)
        result = inline_program(program)
        accesses = [
            s
            for _cls, m in program.methods()
            for s in walk_statements(m.body)
            if isinstance(s, SLoadField)
        ]
        if accesses:
            assert result.access_points

    def test_reachability_from_main(self):
        program = synthesize(PROFILE)
        cg = build_callgraph(program)
        # main plus at least one callee should be reachable.
        assert len(cg.reachable) >= 2
