"""Tests for the JSON export of evaluation results."""

import json

import pytest

from repro.bench.export import export_json, record_to_dict, results_to_dict
from repro.bench.harness import EvalResult
from repro.core.stats import QueryRecord, QueryStatus


def _result():
    return EvalResult(
        benchmark="tsp",
        analysis="escape",
        records=[
            QueryRecord(
                "q1",
                QueryStatus.PROVEN,
                2,
                frozenset({"h1"}),
                1,
                0.25,
                max_disjuncts=3,
                forward_runs=2,
            ),
            QueryRecord("q2", QueryStatus.IMPOSSIBLE, 4, None, None, 0.5),
        ],
        wall_seconds=1.0,
    )


class TestRecordToDict:
    def test_proven_record(self):
        data = record_to_dict(_result().records[0])
        assert data["status"] == "proven"
        assert data["abstraction"] == ["h1"]
        assert data["abstraction_cost"] == 1
        assert data["iterations"] == 2

    def test_impossible_record_has_null_abstraction(self):
        data = record_to_dict(_result().records[1])
        assert data["abstraction"] is None
        assert data["status"] == "impossible"


class TestResultsToDict:
    def test_structure(self):
        data = results_to_dict({"tsp": {"escape": _result()}})
        entry = data["tsp"]["escape"]
        assert entry["aggregate"]["total"] == 2
        assert entry["aggregate"]["proven"] == 1
        assert entry["aggregate"]["groups"]["count"] == 1
        assert len(entry["records"]) == 2

    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "out.json"
        export_json({"tsp": {"escape": _result()}}, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["tsp"]["escape"]["aggregate"]["impossible"] == 1


class TestEndToEndExport:
    def test_real_benchmark_exports(self, tmp_path):
        from repro.bench.harness import evaluate_benchmark, prepare

        bench = prepare("tsp")
        results = {
            "tsp": {"escape": evaluate_benchmark(bench, "escape")}
        }
        path = tmp_path / "eval.json"
        export_json(results, str(path))
        loaded = json.loads(path.read_text())
        aggregate = loaded["tsp"]["escape"]["aggregate"]
        assert aggregate["total"] == len(results["tsp"]["escape"].records)
        assert aggregate["resolved_fraction"] > 0
