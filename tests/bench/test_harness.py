"""Tests for the evaluation harness on the smallest benchmark."""

import pytest

from repro.bench.harness import (
    escape_setup,
    evaluate_benchmark,
    prepare,
    typestate_setup,
)
from repro.core.stats import QueryStatus
from repro.core.tracer import TracerConfig


@pytest.fixture(scope="module")
def tsp():
    return prepare("tsp")


class TestPrepare:
    def test_pipeline_artifacts(self, tsp):
        assert tsp.metrics.inlined_commands > 0
        assert tsp.inlined.sites
        assert tsp.callgraph.reachable

    def test_accepts_custom_program(self, tsp):
        again = prepare("tsp", tsp.front)
        assert again.metrics.inlined_commands == tsp.metrics.inlined_commands


class TestEscapeSetup:
    def test_queries_match_access_points(self, tsp):
        _client, queries = escape_setup(tsp)
        assert len(queries) == len(tsp.inlined.access_points)

    def test_query_vars_in_schema(self, tsp):
        client, queries = escape_setup(tsp)
        for query in queries:
            assert client.schema.is_local(query.var)


class TestTypestateSetup:
    def test_one_client_per_tracked_site(self, tsp):
        setups = typestate_setup(tsp)
        sites = [client.analysis.tracked_site for client, _q in setups]
        assert len(sites) == len(set(sites))
        app_sites = set(tsp.front.app_sites())
        assert all(site in app_sites for site in sites)

    def test_queries_ask_for_init(self, tsp):
        for _client, queries in typestate_setup(tsp):
            for query in queries:
                assert query.allowed == frozenset({"init"})


class TestEvaluate:
    def test_escape_records_cover_all_queries(self, tsp):
        result = evaluate_benchmark(tsp, "escape")
        _client, queries = escape_setup(tsp)
        assert result.query_count == len(queries)
        assert all(r.iterations >= 1 for r in result.records)

    def test_typestate_evaluation(self, tsp):
        result = evaluate_benchmark(tsp, "typestate")
        assert result.analysis == "typestate"
        assert all(
            r.status in (QueryStatus.PROVEN, QueryStatus.IMPOSSIBLE, QueryStatus.EXHAUSTED)
            for r in result.records
        )

    def test_interproc_mode_agrees_with_inlined(self, tsp):
        inline = evaluate_benchmark(tsp, "escape")
        interp = evaluate_benchmark(tsp, "escape-interproc")
        assert inline.query_count == interp.query_count
        by_pc = lambda recs: {
            r.query_id.rsplit(":", 1)[0]: (r.status, r.abstraction_cost)
            for r in recs
        }
        assert by_pc(inline.records) == by_pc(interp.records)

    def test_typestate_interproc_statuses_match_inlined(self, tsp):
        """Proof/impossibility statuses agree between engines; cheapest
        *costs* may legitimately differ because the inlined mode names
        variables per calling context while the procedure mode names
        them per procedure."""
        inline = evaluate_benchmark(tsp, "typestate")
        interp = evaluate_benchmark(tsp, "typestate-interproc")
        by_id = lambda recs: {r.query_id: r.status for r in recs}
        assert by_id(inline.records) == by_id(interp.records)

    def test_unknown_analysis_rejected(self, tsp):
        with pytest.raises(ValueError):
            evaluate_benchmark(tsp, "alias")

    def test_iteration_budget_respected(self, tsp):
        config = TracerConfig(k=5, max_iterations=1)
        result = evaluate_benchmark(tsp, "escape", config)
        for record in result.records:
            assert record.iterations <= 1

    def test_proven_abstractions_verified(self, tsp):
        client, queries = escape_setup(tsp)
        result = evaluate_benchmark(tsp, "escape")
        by_id = {str(q): q for q in queries}
        for record in result.records:
            if record.status is QueryStatus.PROVEN:
                query = by_id[record.query_id]
                assert (
                    client.counterexamples([query], record.abstraction)[query]
                    is None
                )
