"""Seeded random program generators for end-to-end property tests.

These build small structured programs over the analysis language so
TRACER's results can be checked against brute-force enumeration of the
whole abstraction family.
"""

from __future__ import annotations

import random
from typing import List

from repro.lang.ast import (
    Assign,
    AssignNull,
    Atom,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    Program,
    Star,
    StoreField,
    StoreGlobal,
    ThreadStart,
    choice,
    seq,
)

VARS = ("x", "y", "z")
SITES = ("h1", "h2")
FIELDS = ("f",)
METHODS = ("open", "close")


def random_typestate_program(rng: random.Random, length: int = 6) -> Program:
    """A random program ending in ``observe q``, biased towards the
    command mix the type-state analysis cares about."""
    body = [_random_block(rng, length)]
    body.append(seq(Observe("q")))
    return seq(*body)


def random_escape_program(rng: random.Random, length: int = 6) -> Program:
    return random_typestate_program(rng, length)


def _random_block(rng: random.Random, budget: int) -> Program:
    parts: List[Program] = []
    while budget > 0:
        roll = rng.random()
        if roll < 0.12 and budget >= 2:
            inner = _random_block(rng, min(budget - 1, rng.randint(1, 2)))
            parts.append(Star(inner))
            budget -= 2
        elif roll < 0.3 and budget >= 2:
            left = _random_block(rng, 1)
            right = _random_block(rng, 1)
            parts.append(choice(left, right))
            budget -= 2
        else:
            parts.append(Atom(_random_command(rng)))
            budget -= 1
    return seq(*parts) if parts else seq(Atom(_random_command(rng)))


def _random_command(rng: random.Random):
    var = lambda: rng.choice(VARS)
    kind = rng.randrange(10)
    if kind == 0:
        return New(var(), rng.choice(SITES))
    if kind == 1:
        return Assign(var(), var())
    if kind == 2:
        return AssignNull(var())
    if kind == 3:
        return LoadGlobal(var(), "g")
    if kind == 4:
        return StoreGlobal("g", var())
    if kind == 5:
        return LoadField(var(), var(), rng.choice(FIELDS))
    if kind == 6:
        return StoreField(var(), rng.choice(FIELDS), var())
    if kind == 7:
        return ThreadStart(var())
    return Invoke(var(), rng.choice(METHODS))
