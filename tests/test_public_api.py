"""The top-level package exposes a coherent public API."""

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_docstring_quickstart_runs(self):
        program = repro.parse_program(
            """
            x = new File
            y = x
            x.open()
            y.close()
            observe check1
            """
        )
        client = repro.TypestateClient(
            program,
            repro.file_automaton(),
            "File",
            variables=frozenset({"x", "y"}),
        )
        record = repro.Tracer(client, repro.TracerConfig(k=1)).solve(
            repro.TypestateQuery("check1", frozenset({"closed"}))
        )
        assert record.status is repro.QueryStatus.PROVEN
        assert record.abstraction == frozenset({"x", "y"})

    def test_subpackages_importable(self):
        import repro.bench
        import repro.core
        import repro.dataflow
        import repro.escape
        import repro.frontend
        import repro.lang
        import repro.typestate

        assert repro.bench.BENCHMARK_NAMES
