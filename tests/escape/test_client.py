"""Unit tests for the escape TRACER client plumbing."""

import pytest

from repro.core.formula import Lit, Literal, evaluate
from repro.escape import ESC, EscSchema, EscapeClient, EscapeQuery, VarIs
from repro.lang import parse_program

PROGRAM = parse_program(
    """
    u = new h1
    choice {
      $g = u
    } or {
      skip
    }
    observe pc
    """
)


@pytest.fixture
def client():
    return EscapeClient(PROGRAM, EscSchema(["u"], []), frozenset({"h1"}))


class TestFailCondition:
    def test_fail_condition_is_escape_literal(self, client):
        fail = client.fail_condition(EscapeQuery("pc", "u"))
        assert fail == Lit(Literal(VarIs("u", ESC), True))


class TestCounterexamples:
    def test_counterexample_trace_is_replayable(self, client):
        query = EscapeQuery("pc", "u")
        p = frozenset({"h1"})
        trace = client.counterexamples([query], p)[query]
        assert trace is not None
        final = client.analysis.run_trace(
            trace, p, client.analysis.initial_state()
        )
        assert evaluate(
            client.fail_condition(query), client.meta.theory, p, final
        )

    def test_no_counterexample_on_safe_path_query(self, client):
        # Variable never bound at pc in one variant: query on a program
        # point that never sees an escaping state.
        program = parse_program("u = new h1\nobserve pc")
        safe = EscapeClient(program, EscSchema(["u"], []), frozenset({"h1"}))
        query = EscapeQuery("pc", "u")
        assert safe.counterexamples([query], frozenset({"h1"}))[query] is None

    def test_unknown_label_is_trivially_proven(self, client):
        query = EscapeQuery("ghost", "u")
        assert client.counterexamples([query], frozenset())[query] is None

    def test_deterministic_witness(self, client):
        query = EscapeQuery("pc", "u")
        first = client.counterexamples([query], frozenset())[query]
        second = client.counterexamples([query], frozenset())[query]
        assert first == second

    def test_many_queries_one_forward_run(self, client):
        queries = [EscapeQuery("pc", "u"), EscapeQuery("pc", "u")]
        result = client.counterexamples(queries, frozenset())
        assert len(result) == 1  # identical queries collapse by equality
