"""End-to-end reproduction of the paper's Figure 6 worked example.

Program::

    u = new h1; v = new h2; v.f = u; pc: local(u)?

Expected:

* the cheapest abstraction proving ``local(u)`` maps both sites to
  ``L`` (cost 2);
* without under-approximation (``k = None``) one counterexample
  suffices: the failure condition at the start is
  ``h1.E | (h1.L & h2.E)``;
* with ``k = 1`` an extra iteration is needed, but the formulas stay
  small and the same cheapest abstraction is found.
"""

import pytest

from repro.core import Tracer, TracerConfig, backward_trace
from repro.core.formula import evaluate
from repro.core.stats import QueryStatus
from repro.escape import EscSchema, EscapeClient, EscapeQuery
from repro.lang import parse_program

PROGRAM_TEXT = """
u = new h1
v = new h2
v.f = u
observe pc
"""


@pytest.fixture
def client():
    return EscapeClient(
        parse_program(PROGRAM_TEXT),
        EscSchema(["u", "v"], ["f"]),
        sites=frozenset({"h1", "h2"}),
    )


QUERY = EscapeQuery("pc", "u")


class TestFigure6:
    def test_cheapest_abstraction_maps_both_sites_local(self, client):
        record = Tracer(client, TracerConfig(k=1)).solve(QUERY)
        assert record.status is QueryStatus.PROVEN
        assert record.abstraction == frozenset({"h1", "h2"})
        assert record.abstraction_cost == 2

    def test_without_underapprox_two_iterations(self, client):
        record = Tracer(client, TracerConfig(k=None)).solve(QUERY)
        assert record.status is QueryStatus.PROVEN
        assert record.iterations == 2

    def test_with_k1_three_iterations(self, client):
        # (b1): p = [E, E] eliminated via h1.E; (b2): p = [L, E]
        # eliminated via h1.L & h2.E; then [L, L] proves.
        record = Tracer(client, TracerConfig(k=1)).solve(QUERY)
        assert record.iterations == 3

    def test_k1_formulas_smaller_than_full(self, client):
        full = Tracer(client, TracerConfig(k=None)).solve(QUERY)
        beam = Tracer(client, TracerConfig(k=1)).solve(QUERY)
        assert beam.max_disjuncts <= full.max_disjuncts
        assert beam.max_disjuncts == 1

    def test_full_failure_condition_at_start(self, client):
        """The (a) column: the unapproximated sufficient condition for
        failure at the program start covers exactly the abstractions
        other than [h1 -> L, h2 -> L]."""
        witnesses = client.counterexamples([QUERY], frozenset())
        trace = witnesses[QUERY]
        result = backward_trace(
            client.meta,
            client.analysis,
            trace,
            frozenset(),
            client.analysis.initial_state(),
            client.fail_condition(QUERY),
            k=None,
        )
        theory = client.meta.theory
        d_init = client.analysis.initial_state()
        eliminated = {
            p
            for p in [
                frozenset(),
                frozenset({"h1"}),
                frozenset({"h2"}),
                frozenset({"h1", "h2"}),
            ]
            if evaluate(result.condition, theory, p, d_init)
        }
        assert eliminated == {frozenset(), frozenset({"h1"}), frozenset({"h2"})}


class TestEscapeWithLoops:
    def test_loop_with_publication(self):
        text = """
        loop {
          u = new h1
          $g = u
        }
        u = new h1
        observe pc
        """
        client = EscapeClient(
            parse_program(text), EscSchema(["u"], []), frozenset({"h1"})
        )
        record = Tracer(client).solve(EscapeQuery("pc", "u"))
        # Publishing u escapes all L objects, but the fresh allocation
        # after the loop is local again when h1 -> L.
        assert record.status is QueryStatus.PROVEN
        assert record.abstraction == frozenset({"h1"})

    def test_impossible_query(self):
        text = """
        u = new h1
        $g = u
        v = $g
        observe pc
        """
        client = EscapeClient(
            parse_program(text), EscSchema(["u", "v"], []), frozenset({"h1"})
        )
        record = Tracer(client).solve(EscapeQuery("pc", "v"))
        # v = $g is always E: no abstraction can prove locality.
        assert record.status is QueryStatus.IMPOSSIBLE
