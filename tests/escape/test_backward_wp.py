"""Exhaustive validation of the thread-escape backward transfer
functions against the forward semantics (requirement (2), Section 4)."""

import itertools

import pytest

from repro.core.formula import Lit, Literal, evaluate
from repro.escape import (
    ESC,
    EscSchema,
    EscapeAnalysis,
    EscapeMeta,
    FieldIs,
    LOC,
    NIL,
    SiteIs,
    VarIs,
)
from repro.lang import (
    Assign,
    AssignNull,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)

SCHEMA = EscSchema(["u", "v"], ["f"])
SITES = ("h1", "h2")


def all_params():
    for r in range(len(SITES) + 1):
        for combo in itertools.combinations(SITES, r):
            yield frozenset(combo)


def all_primitives():
    for h in SITES:
        for o in (LOC, ESC):
            yield SiteIs(h, o)
    for v in SCHEMA.locals:
        for o in (LOC, ESC, NIL):
            yield VarIs(v, o)
    for f in SCHEMA.fields:
        for o in (LOC, ESC, NIL):
            yield FieldIs(f, o)


COMMANDS = [
    New("u", "h1"),
    New("v", "h2"),
    Assign("u", "v"),
    Assign("v", "u"),
    Assign("u", "u"),
    AssignNull("u"),
    LoadGlobal("v", "g"),
    StoreGlobal("g", "u"),
    ThreadStart("v"),
    LoadField("u", "v", "f"),
    LoadField("u", "u", "f"),
    LoadField("v", "v", "f"),
    StoreField("v", "f", "u"),
    StoreField("u", "f", "u"),
    StoreField("u", "f", "v"),
    Invoke("u", "m"),
    Observe("q"),
]


@pytest.mark.parametrize("command", COMMANDS, ids=repr)
def test_wp_matches_forward(command):
    analysis = EscapeAnalysis(SCHEMA, frozenset(SITES))
    meta = EscapeMeta(analysis)
    theory = meta.theory
    failures = []
    for prim in all_primitives():
        pre = meta.wp_primitive(command, prim)
        for p in all_params():
            for d in SCHEMA.all_states():
                post = analysis.transfer(command, p, d)
                expected = theory.holds(prim, p, post)
                actual = evaluate(pre, theory, p, d)
                if expected != actual:
                    failures.append((prim, sorted(p), repr(d), expected, actual))
    assert not failures, failures[:5]


def test_site_primitives_are_invariant():
    analysis = EscapeAnalysis(SCHEMA, frozenset(SITES))
    meta = EscapeMeta(analysis)
    for command in COMMANDS:
        pre = meta.wp_primitive(command, SiteIs("h1", LOC))
        assert pre == Lit(Literal(SiteIs("h1", LOC), True))


class TestTheoryNormalisation:
    def test_two_positive_values_contradict(self):
        theory = EscapeMeta(EscapeAnalysis(SCHEMA, frozenset(SITES))).theory
        cube = frozenset(
            [Literal(VarIs("u", LOC), True), Literal(VarIs("u", ESC), True)]
        )
        assert theory.normalize_cube(cube) is None

    def test_all_values_negated_contradict(self):
        theory = EscapeMeta(EscapeAnalysis(SCHEMA, frozenset(SITES))).theory
        cube = frozenset(
            Literal(VarIs("u", o), False) for o in (LOC, ESC, NIL)
        )
        assert theory.normalize_cube(cube) is None

    def test_two_negatives_collapse_to_positive(self):
        theory = EscapeMeta(EscapeAnalysis(SCHEMA, frozenset(SITES))).theory
        cube = frozenset(
            [Literal(VarIs("u", LOC), False), Literal(VarIs("u", ESC), False)]
        )
        assert theory.normalize_cube(cube) == frozenset(
            [Literal(VarIs("u", NIL), True)]
        )

    def test_site_group_has_two_values(self):
        theory = EscapeMeta(EscapeAnalysis(SCHEMA, frozenset(SITES))).theory
        cube = frozenset([Literal(SiteIs("h1", LOC), False)])
        assert theory.normalize_cube(cube) == frozenset(
            [Literal(SiteIs("h1", ESC), True)]
        )

    def test_positive_drops_redundant_negative(self):
        theory = EscapeMeta(EscapeAnalysis(SCHEMA, frozenset(SITES))).theory
        cube = frozenset(
            [Literal(VarIs("u", LOC), True), Literal(VarIs("u", ESC), False)]
        )
        assert theory.normalize_cube(cube) == frozenset(
            [Literal(VarIs("u", LOC), True)]
        )
