"""Cube normalisation in the escape theory (exclusive-value groups)."""

from repro.core.formula import Literal
from repro.escape import (
    ESC,
    EscSchema,
    EscapeAnalysis,
    EscapeMeta,
    LOC,
    NIL,
    SiteIs,
    VarIs,
)

SCHEMA = EscSchema(["u", "v"], ["f"])
SITES = ("h1", "h2")


def _theory():
    return EscapeMeta(EscapeAnalysis(SCHEMA, frozenset(SITES))).theory


class TestTheoryNormalisation:
    def test_two_positive_values_contradict(self):
        cube = frozenset(
            [Literal(VarIs("u", LOC), True), Literal(VarIs("u", ESC), True)]
        )
        assert _theory().normalize_cube(cube) is None

    def test_all_values_negated_contradict(self):
        cube = frozenset(
            Literal(VarIs("u", o), False) for o in (LOC, ESC, NIL)
        )
        assert _theory().normalize_cube(cube) is None

    def test_two_negatives_collapse_to_positive(self):
        cube = frozenset(
            [Literal(VarIs("u", LOC), False), Literal(VarIs("u", ESC), False)]
        )
        assert _theory().normalize_cube(cube) == frozenset(
            [Literal(VarIs("u", NIL), True)]
        )

    def test_site_group_has_two_values(self):
        cube = frozenset([Literal(SiteIs("h1", LOC), False)])
        assert _theory().normalize_cube(cube) == frozenset(
            [Literal(SiteIs("h1", ESC), True)]
        )

    def test_positive_drops_redundant_negative(self):
        cube = frozenset(
            [Literal(VarIs("u", LOC), True), Literal(VarIs("u", ESC), False)]
        )
        assert _theory().normalize_cube(cube) == frozenset(
            [Literal(VarIs("u", LOC), True)]
        )
