"""Unit tests for the thread-escape forward transfer functions (Figure 5)."""

import pytest

from repro.escape import ESC, LOC, NIL, EscSchema, EscapeAnalysis
from repro.lang import (
    Assign,
    AssignNull,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)


@pytest.fixture
def schema():
    return EscSchema(["u", "v", "w"], ["f", "g_fld"])


@pytest.fixture
def analysis(schema):
    return EscapeAnalysis(schema, frozenset({"h1", "h2"}))


P_H1 = frozenset({"h1"})


class TestSimpleCommands:
    def test_new_local_site(self, schema, analysis):
        d = analysis.transfer(New("u", "h1"), P_H1, schema.initial())
        assert d.get("u") == LOC

    def test_new_escaping_site(self, schema, analysis):
        d = analysis.transfer(New("u", "h2"), P_H1, schema.initial())
        assert d.get("u") == ESC

    def test_copy(self, schema, analysis):
        d0 = schema.state({"u": LOC})
        d = analysis.transfer(Assign("v", "u"), P_H1, d0)
        assert d.get("v") == LOC

    def test_null(self, schema, analysis):
        d0 = schema.state({"u": LOC})
        assert analysis.transfer(AssignNull("u"), P_H1, d0).get("u") == NIL

    def test_load_global_escapes(self, schema, analysis):
        d = analysis.transfer(LoadGlobal("u", "g"), P_H1, schema.initial())
        assert d.get("u") == ESC

    def test_observe_and_invoke_are_identity(self, schema, analysis):
        d0 = schema.state({"u": LOC, "f": ESC})
        assert analysis.transfer(Observe("q"), P_H1, d0) == d0
        assert analysis.transfer(Invoke("u", "m"), P_H1, d0) == d0


class TestPublication:
    def test_store_global_of_local_escapes_everything(self, schema, analysis):
        d0 = schema.state({"u": LOC, "v": LOC, "w": NIL, "f": LOC})
        d = analysis.transfer(StoreGlobal("g", "u"), P_H1, d0)
        assert d.get("u") == ESC
        assert d.get("v") == ESC
        assert d.get("w") == NIL  # null stays null
        assert d.get("f") == NIL  # fields reset

    def test_store_global_of_escaped_is_noop(self, schema, analysis):
        d0 = schema.state({"u": ESC, "v": LOC})
        assert analysis.transfer(StoreGlobal("g", "u"), P_H1, d0) == d0

    def test_thread_start_behaves_like_store_global(self, schema, analysis):
        d0 = schema.state({"u": LOC, "v": LOC})
        d = analysis.transfer(ThreadStart("u"), P_H1, d0)
        assert d.get("v") == ESC


class TestLoadField:
    def test_through_local_base_reads_field_summary(self, schema, analysis):
        d0 = schema.state({"v": LOC, "f": LOC})
        assert analysis.transfer(LoadField("u", "v", "f"), P_H1, d0).get("u") == LOC

    def test_through_escaped_base_gives_escaped(self, schema, analysis):
        d0 = schema.state({"v": ESC, "f": LOC})
        assert analysis.transfer(LoadField("u", "v", "f"), P_H1, d0).get("u") == ESC

    def test_through_null_base_gives_escaped(self, schema, analysis):
        d0 = schema.state({"v": NIL})
        assert analysis.transfer(LoadField("u", "v", "f"), P_H1, d0).get("u") == ESC


class TestStoreField:
    def test_local_into_escaped_base_escapes(self, schema, analysis):
        d0 = schema.state({"u": LOC, "v": ESC, "w": LOC})
        d = analysis.transfer(StoreField("v", "f", "u"), P_H1, d0)
        assert d.get("u") == ESC
        assert d.get("w") == ESC

    def test_escaped_into_escaped_base_is_noop(self, schema, analysis):
        d0 = schema.state({"u": ESC, "v": ESC})
        assert analysis.transfer(StoreField("v", "f", "u"), P_H1, d0) == d0

    def test_null_base_is_noop(self, schema, analysis):
        d0 = schema.state({"u": LOC, "v": NIL})
        assert analysis.transfer(StoreField("v", "f", "u"), P_H1, d0) == d0

    def test_local_base_null_field_takes_rhs(self, schema, analysis):
        d0 = schema.state({"u": LOC, "v": LOC})
        d = analysis.transfer(StoreField("v", "f", "u"), P_H1, d0)
        assert d.get("f") == LOC

    def test_local_base_equal_values_noop(self, schema, analysis):
        d0 = schema.state({"u": ESC, "v": LOC, "f": ESC})
        assert analysis.transfer(StoreField("v", "f", "u"), P_H1, d0) == d0

    def test_local_base_null_rhs_keeps_field(self, schema, analysis):
        d0 = schema.state({"u": NIL, "v": LOC, "f": ESC})
        assert analysis.transfer(StoreField("v", "f", "u"), P_H1, d0) == d0

    def test_local_base_mixing_L_and_E_escapes(self, schema, analysis):
        d0 = schema.state({"u": ESC, "v": LOC, "f": LOC, "w": LOC})
        d = analysis.transfer(StoreField("v", "f", "u"), P_H1, d0)
        assert d.get("w") == ESC
        assert d.get("f") == NIL


class TestInitialState:
    def test_everything_starts_null(self, schema, analysis):
        d = analysis.initial_state()
        assert all(d.get(name) == NIL for name in schema.names)
