"""End-to-end optimality of TRACER for the thread-escape client."""

import itertools
import random

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.escape import EscSchema, EscapeClient, EscapeQuery
from tests.randprog import FIELDS, SITES, VARS, random_escape_program

QUERY = EscapeQuery("q", "x")


def _brute_force_minimum(client, query):
    for r in range(len(SITES) + 1):
        for combo in itertools.combinations(SITES, r):
            p = frozenset(combo)
            if client.counterexamples([query], p)[query] is None:
                return len(p)
    return None


def _client(program):
    return EscapeClient(
        program, EscSchema(VARS, FIELDS), frozenset(SITES)
    )


@pytest.mark.parametrize("seed", range(40))
@pytest.mark.parametrize("k", [1, 3, None])
def test_tracer_matches_brute_force(seed, k):
    rng = random.Random(seed * 13 + (99 if k is None else k))
    program = random_escape_program(rng, length=6)
    client = _client(program)
    expected = _brute_force_minimum(client, QUERY)
    record = Tracer(client, TracerConfig(k=k, max_iterations=200)).solve(QUERY)
    if expected is None:
        assert record.status is QueryStatus.IMPOSSIBLE, program
    else:
        assert record.status is QueryStatus.PROVEN, program
        assert record.abstraction_cost == expected, program
        assert client.counterexamples([QUERY], record.abstraction)[QUERY] is None


@pytest.mark.parametrize("seed", range(10))
def test_multiple_query_vars_grouped(seed):
    rng = random.Random(31 + seed)
    program = random_escape_program(rng, length=7)
    client = _client(program)
    queries = [EscapeQuery("q", v) for v in VARS]
    tracer = Tracer(client, TracerConfig(k=2, max_iterations=200))
    grouped = tracer.solve_all(queries)
    for query in queries:
        single = tracer.solve(query)
        assert grouped[query].status == single.status
        assert grouped[query].abstraction_cost == single.abstraction_cost
