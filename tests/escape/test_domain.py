"""Tests for the escape abstract-state representation."""

import pytest

from repro.escape import ESC, EscSchema, LOC, NIL


@pytest.fixture
def schema():
    return EscSchema(["u", "v"], ["f"])


class TestSchema:
    def test_names_are_sorted_and_deduped(self):
        schema = EscSchema(["b", "a", "a"], ["g", "f"])
        assert schema.locals == ("a", "b")
        assert schema.fields == ("f", "g")

    def test_rejects_local_field_collision(self):
        with pytest.raises(ValueError):
            EscSchema(["x"], ["x"])

    def test_kind_predicates(self, schema):
        assert schema.is_local("u") and not schema.is_field("u")
        assert schema.is_field("f") and not schema.is_local("f")
        assert not schema.is_local("ghost")

    def test_state_rejects_bad_value(self, schema):
        with pytest.raises(ValueError):
            schema.state({"u": "Z"})

    def test_all_states_cardinality(self, schema):
        assert sum(1 for _ in schema.all_states()) == 3 ** 3


class TestState:
    def test_initial_all_null(self, schema):
        state = schema.initial()
        assert all(state.get(name) == NIL for name in schema.names)

    def test_set_returns_new_state(self, schema):
        state = schema.initial()
        updated = state.set("u", LOC)
        assert updated.get("u") == LOC
        assert state.get("u") == NIL

    def test_set_same_value_returns_self(self, schema):
        state = schema.state({"u": ESC})
        assert state.set("u", ESC) is state

    def test_esc_semantics(self, schema):
        state = schema.state({"u": LOC, "v": NIL, "f": LOC})
        escaped = state.esc()
        assert escaped.get("u") == ESC
        assert escaped.get("v") == NIL
        assert escaped.get("f") == NIL

    def test_equality_and_hash(self, schema):
        a = schema.state({"u": LOC})
        b = schema.state({"u": LOC})
        assert a == b
        assert hash(a) == hash(b)
        assert a != schema.state({"u": ESC})

    def test_repr_elides_nulls(self, schema):
        assert repr(schema.state({"u": LOC})) == "[u->L]"
