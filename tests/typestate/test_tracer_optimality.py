"""End-to-end optimality of TRACER for the type-state client.

For random small programs the whole abstraction family (2^|V|) is
enumerated by brute force; TRACER must return an abstraction of
exactly the minimum proving cost, or ``IMPOSSIBLE`` exactly when no
abstraction proves the query.  This validates Algorithm 1 end to end:
forward engine, counterexample extraction, backward meta-analysis,
viability clauses, and MinCostSAT together.
"""

import itertools
import random

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.typestate import TypestateClient, TypestateQuery, file_automaton
from tests.randprog import VARS, random_typestate_program

QUERY = TypestateQuery("q", frozenset({"closed"}))


def _brute_force_minimum(client, query):
    """Smallest proving cost over the whole family, or None."""
    best = None
    for r in range(len(VARS) + 1):
        for combo in itertools.combinations(VARS, r):
            p = frozenset(combo)
            if client.counterexamples([query], p)[query] is None:
                return len(p)
    return None


def _client(program):
    return TypestateClient(
        program, file_automaton(), "h1", frozenset(VARS)
    )


@pytest.mark.parametrize("seed", range(40))
@pytest.mark.parametrize("k", [1, 3, None])
def test_tracer_matches_brute_force(seed, k):
    rng = random.Random(seed * 7 + (0 if k is None else k))
    program = random_typestate_program(rng, length=6)
    client = _client(program)
    expected = _brute_force_minimum(client, QUERY)
    record = Tracer(client, TracerConfig(k=k, max_iterations=200)).solve(QUERY)
    if expected is None:
        assert record.status is QueryStatus.IMPOSSIBLE, program
    else:
        assert record.status is QueryStatus.PROVEN, program
        assert record.abstraction_cost == expected, program
        # The returned abstraction really proves the query.
        assert client.counterexamples([QUERY], record.abstraction)[QUERY] is None


@pytest.mark.parametrize("seed", range(10))
def test_grouped_driver_agrees_with_single_query(seed):
    rng = random.Random(1000 + seed)
    program = random_typestate_program(rng, length=7)
    client = _client(program)
    q1 = TypestateQuery("q", frozenset({"closed"}))
    q2 = TypestateQuery("q", frozenset({"opened"}))
    tracer = Tracer(client, TracerConfig(k=2, max_iterations=200))
    grouped = tracer.solve_all([q1, q2])
    for query in (q1, q2):
        single = tracer.solve(query)
        assert grouped[query].status == single.status
        assert grouped[query].abstraction_cost == single.abstraction_cost
