"""Unit tests for the type-state TRACER client plumbing."""

import pytest

from repro.core.formula import evaluate
from repro.lang import parse_program
from repro.typestate import (
    TypestateClient,
    TypestateQuery,
    file_automaton,
    stress_automaton,
)

PROGRAM = parse_program(
    """
    x = new File
    x.open()
    observe pc
    """
)


@pytest.fixture
def client():
    return TypestateClient(
        PROGRAM, file_automaton(), "File", frozenset({"x"})
    )


class TestFailCondition:
    def test_disallowed_states_and_error(self, client):
        query = TypestateQuery("pc", frozenset({"opened"}))
        fail = client.fail_condition(query)
        theory = client.meta.theory
        from repro.typestate import TOP, TsState

        assert evaluate(fail, theory, frozenset(), TOP)
        assert evaluate(
            fail, theory, frozenset(), TsState.make(["closed"], [])
        )
        assert not evaluate(
            fail, theory, frozenset(), TsState.make(["opened"], [])
        )


class TestCounterexamples:
    def test_weak_update_fails_without_tracking(self, client):
        query = TypestateQuery("pc", frozenset({"opened"}))
        trace = client.counterexamples([query], frozenset())[query]
        assert trace is not None  # {closed, opened} reaches pc

    def test_tracking_x_proves(self, client):
        query = TypestateQuery("pc", frozenset({"opened"}))
        assert client.counterexamples([query], frozenset({"x"}))[query] is None

    def test_event_labels_gate_events(self):
        client = TypestateClient(
            PROGRAM,
            stress_automaton(["open"]),
            "File",
            frozenset({"x"}),
            event_labels=frozenset(),  # nothing is an event
        )
        query = TypestateQuery("pc", frozenset({"init"}))
        # With no events the object stays init: trivially proven.
        assert client.counterexamples([query], frozenset())[query] is None

    def test_may_point_gates_events(self):
        client = TypestateClient(
            PROGRAM,
            file_automaton(),
            "File",
            frozenset({"x"}),
            may_point=lambda v: False,
        )
        query = TypestateQuery("pc", frozenset({"closed"}))
        # open() is not an event for this instance: stays closed.
        assert client.counterexamples([query], frozenset())[query] is None
