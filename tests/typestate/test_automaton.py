"""Tests for type-state automata."""

import pytest

from repro.typestate import TOP_TRANSITION, TypestateAutomaton, file_automaton, stress_automaton


class TestConstruction:
    def test_rejects_unknown_init(self):
        with pytest.raises(ValueError):
            TypestateAutomaton.make("t", ["a"], "b", {"m": {"a": "a"}})

    def test_rejects_partial_transition_row(self):
        with pytest.raises(ValueError):
            TypestateAutomaton.make("t", ["a", "b"], "a", {"m": {"a": "b"}})

    def test_rejects_unknown_target(self):
        with pytest.raises(ValueError):
            TypestateAutomaton.make("t", ["a"], "a", {"m": {"a": "ghost"}})

    def test_rejects_mismatched_strong_weak_methods(self):
        with pytest.raises(ValueError):
            TypestateAutomaton.make(
                "t",
                ["a"],
                "a",
                strong={"m": {"a": "a"}},
                weak={"n": {"a": "a"}},
            )

    def test_weak_defaults_to_strong(self):
        automaton = TypestateAutomaton.make("t", ["a"], "a", {"m": {"a": "a"}})
        assert automaton.uniform


class TestFileAutomaton:
    def test_protocol_transitions(self):
        automaton = file_automaton()
        assert automaton.strong_target("open", "closed") == "opened"
        assert automaton.strong_target("close", "opened") == "closed"

    def test_error_transitions(self):
        automaton = file_automaton()
        assert automaton.strong_target("open", "opened") == TOP_TRANSITION
        assert automaton.strong_error_states("close") == frozenset({"closed"})

    def test_preimages(self):
        automaton = file_automaton()
        assert automaton.strong_preimage("open", "opened") == frozenset({"closed"})
        assert automaton.strong_preimage("open", "closed") == frozenset()

    def test_methods_and_events(self):
        automaton = file_automaton()
        assert automaton.methods == frozenset({"open", "close"})
        assert automaton.is_event("open")
        assert not automaton.is_event("read")


class TestStressAutomaton:
    def test_strong_is_identity(self):
        automaton = stress_automaton(["m", "n"])
        assert automaton.strong_target("m", "init") == "init"
        assert automaton.strong_target("n", "error") == "error"

    def test_weak_drives_to_error(self):
        automaton = stress_automaton(["m"])
        assert automaton.weak_target("m", "init") == "error"

    def test_not_uniform(self):
        assert not stress_automaton(["m"]).uniform

    def test_no_top_transitions(self):
        automaton = stress_automaton(["m"])
        assert automaton.strong_error_states("m") == frozenset()
        assert automaton.weak_error_states("m") == frozenset()

    def test_requires_methods(self):
        with pytest.raises(ValueError):
            stress_automaton([])
