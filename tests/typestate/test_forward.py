"""Unit tests for the type-state forward transfer functions (Figure 4)."""

import pytest

from repro.lang import (
    Assign,
    AssignNull,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)
from repro.typestate import (
    TOP,
    TsState,
    TypestateAnalysis,
    file_automaton,
    stress_automaton,
)

VARS = frozenset({"x", "y", "z"})


@pytest.fixture
def analysis():
    return TypestateAnalysis(file_automaton(), "h", VARS)


P_ALL = frozenset({"x", "y", "z"})
P_NONE = frozenset()


class TestMustAliasUpdates:
    def test_new_tracked_site_starts_tracking(self, analysis):
        d = analysis.transfer(New("x", "h"), P_ALL, TsState.make(["opened"], ["y"]))
        assert d == TsState.make(["closed"], ["x"])

    def test_new_tracked_site_untracked_var(self, analysis):
        d = analysis.transfer(New("x", "h"), P_NONE, TsState.make(["closed"], []))
        assert d == TsState.make(["closed"], [])

    def test_new_other_site_drops_lhs(self, analysis):
        d = analysis.transfer(
            New("x", "other"), P_ALL, TsState.make(["opened"], ["x", "y"])
        )
        assert d == TsState.make(["opened"], ["y"])

    def test_copy_propagates_alias_when_tracked(self, analysis):
        d = analysis.transfer(Assign("y", "x"), P_ALL, TsState.make(["closed"], ["x"]))
        assert d == TsState.make(["closed"], ["x", "y"])

    def test_copy_drops_alias_when_untracked(self, analysis):
        d = analysis.transfer(
            Assign("y", "x"), frozenset({"x"}), TsState.make(["closed"], ["x", "y"])
        )
        assert d == TsState.make(["closed"], ["x"])

    def test_copy_from_nonalias_drops_lhs(self, analysis):
        d = analysis.transfer(Assign("y", "z"), P_ALL, TsState.make(["closed"], ["x", "y"]))
        assert d == TsState.make(["closed"], ["x"])

    def test_null_assignment_drops_lhs(self, analysis):
        d = analysis.transfer(AssignNull("x"), P_ALL, TsState.make(["closed"], ["x"]))
        assert d == TsState.make(["closed"], [])

    @pytest.mark.parametrize(
        "command",
        [LoadField("x", "y", "f"), LoadGlobal("x", "g")],
    )
    def test_heap_loads_drop_lhs(self, analysis, command):
        d = analysis.transfer(command, P_ALL, TsState.make(["closed"], ["x", "y"]))
        assert d == TsState.make(["closed"], ["y"])

    @pytest.mark.parametrize(
        "command",
        [StoreField("y", "f", "x"), StoreGlobal("g", "x"), ThreadStart("x"), Observe("q")],
    )
    def test_heap_stores_are_identity(self, analysis, command):
        d0 = TsState.make(["closed"], ["x"])
        assert analysis.transfer(command, P_ALL, d0) == d0


class TestEvents:
    def test_strong_update_on_must_alias(self, analysis):
        d = analysis.transfer(
            Invoke("x", "open"), P_ALL, TsState.make(["closed"], ["x"])
        )
        assert d == TsState.make(["opened"], ["x"])

    def test_weak_update_keeps_old_states(self, analysis):
        d = analysis.transfer(Invoke("x", "open"), P_NONE, TsState.make(["closed"], []))
        assert d == TsState.make(["closed", "opened"], [])

    def test_strong_error(self, analysis):
        d = analysis.transfer(
            Invoke("x", "close"), P_ALL, TsState.make(["closed"], ["x"])
        )
        assert d is TOP

    def test_weak_error(self, analysis):
        d = analysis.transfer(
            Invoke("y", "close"), P_NONE, TsState.make(["closed", "opened"], [])
        )
        assert d is TOP

    def test_non_automaton_method_is_identity(self, analysis):
        d0 = TsState.make(["closed"], ["x"])
        assert analysis.transfer(Invoke("x", "frobnicate"), P_ALL, d0) == d0

    def test_may_point_gates_events(self):
        analysis = TypestateAnalysis(
            file_automaton(), "h", VARS, may_point=lambda v: v == "x"
        )
        d0 = TsState.make(["closed"], [])
        assert analysis.transfer(Invoke("y", "open"), P_ALL, d0) == d0
        assert analysis.transfer(Invoke("x", "open"), P_ALL, d0) == TsState.make(
            ["closed", "opened"], []
        )

    def test_top_is_absorbing(self, analysis):
        for command in [
            New("x", "h"),
            Assign("x", "y"),
            Invoke("x", "open"),
            AssignNull("x"),
        ]:
            assert analysis.transfer(command, P_ALL, TOP) is TOP


class TestStressProperty:
    def test_strong_call_keeps_init(self):
        analysis = TypestateAnalysis(stress_automaton(["m"]), "h", VARS)
        d = analysis.transfer(Invoke("x", "m"), P_ALL, TsState.make(["init"], ["x"]))
        assert d == TsState.make(["init"], ["x"])

    def test_weak_call_reaches_error(self):
        analysis = TypestateAnalysis(stress_automaton(["m"]), "h", VARS)
        d = analysis.transfer(Invoke("x", "m"), P_NONE, TsState.make(["init"], []))
        assert d == TsState.make(["init", "error"], [])

    def test_error_is_sticky(self):
        analysis = TypestateAnalysis(stress_automaton(["m"]), "h", VARS)
        d = analysis.transfer(
            Invoke("x", "m"), P_ALL, TsState.make(["error"], ["x"])
        )
        assert d == TsState.make(["error"], ["x"])


class TestInitialState:
    def test_initial_state_is_init_with_empty_aliases(self, analysis):
        assert analysis.initial_state() == TsState.make(["closed"], [])
