"""Exhaustive validation of the type-state backward transfer functions.

Requirement (2) of Section 4 determines the backward functions
semantically::

    gamma([[a]]b(f)) = {(p, d) | (p, [[a]]p(d)) in gamma(f)}

For small universes this is decidable by enumeration, so every
``wp_primitive`` is checked against the forward semantics on *all*
pairs ``(p, d)`` — the figures of the paper are partly garbled in the
source text; this enumeration is the ground truth.
"""

import itertools

import pytest

from repro.core.formula import evaluate
from repro.lang import (
    Assign,
    AssignNull,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)
from repro.typestate import (
    TOP,
    TsErr,
    TsParam,
    TsState,
    TsType,
    TsVar,
    TypestateAnalysis,
    TypestateMeta,
    file_automaton,
    stress_automaton,
)

VARS = ("x", "y")


def all_params():
    for r in range(len(VARS) + 1):
        for combo in itertools.combinations(VARS, r):
            yield frozenset(combo)


def all_states(automaton):
    yield TOP
    states = sorted(automaton.states)
    for ts_bits in range(2 ** len(states)):
        ts = frozenset(s for i, s in enumerate(states) if ts_bits >> i & 1)
        for vs_bits in range(2 ** len(VARS)):
            vs = frozenset(v for i, v in enumerate(VARS) if vs_bits >> i & 1)
            yield TsState(ts, vs)


def all_primitives(automaton):
    yield TsErr()
    for v in VARS:
        yield TsParam(v)
        yield TsVar(v)
    for s in sorted(automaton.states):
        yield TsType(s)


COMMANDS = [
    New("x", "h"),
    New("y", "h"),
    New("x", "other"),
    Assign("x", "y"),
    Assign("y", "x"),
    Assign("x", "x"),
    AssignNull("x"),
    LoadField("x", "y", "f"),
    LoadGlobal("y", "g"),
    StoreField("x", "f", "y"),
    StoreGlobal("g", "x"),
    ThreadStart("x"),
    Observe("q"),
    Invoke("x", "open"),
    Invoke("y", "open"),
    Invoke("x", "close"),
    Invoke("x", "nonevent"),
]

STRESS_COMMANDS = [
    Invoke("x", "m"),
    Invoke("y", "m"),
    New("x", "h"),
    Assign("y", "x"),
]


def _check(analysis, meta, command):
    automaton = analysis.automaton
    theory = meta.theory
    failures = []
    for prim in all_primitives(automaton):
        pre = meta.wp_primitive(command, prim)
        for p in all_params():
            for d in all_states(automaton):
                post = analysis.transfer(command, p, d)
                expected = theory.holds(prim, p, post)
                actual = evaluate(pre, theory, p, d)
                if expected != actual:
                    failures.append((prim, p, d, post, expected, actual))
    assert not failures, failures[:5]


@pytest.mark.parametrize("command", COMMANDS, ids=repr)
def test_wp_matches_forward_file_automaton(command):
    analysis = TypestateAnalysis(file_automaton(), "h", frozenset(VARS))
    meta = TypestateMeta(analysis)
    _check(analysis, meta, command)


@pytest.mark.parametrize("command", STRESS_COMMANDS, ids=repr)
def test_wp_matches_forward_stress_automaton(command):
    analysis = TypestateAnalysis(stress_automaton(["m"]), "h", frozenset(VARS))
    meta = TypestateMeta(analysis)
    _check(analysis, meta, command)


def test_wp_with_may_point_gating():
    analysis = TypestateAnalysis(
        file_automaton(), "h", frozenset(VARS), may_point=lambda v: v == "x"
    )
    meta = TypestateMeta(analysis)
    _check(analysis, meta, Invoke("y", "open"))
    _check(analysis, meta, Invoke("x", "open"))


def test_param_primitives_are_invariant():
    analysis = TypestateAnalysis(file_automaton(), "h", frozenset(VARS))
    meta = TypestateMeta(analysis)
    from repro.core.formula import Lit, Literal

    for command in COMMANDS:
        pre = meta.wp_primitive(command, TsParam("x"))
        assert pre == Lit(Literal(TsParam("x"), True))
