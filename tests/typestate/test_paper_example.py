"""End-to-end reproduction of the paper's Figure 1 worked example.

Program::

    x = new File; y = x; if (*) z = x;
    x.open(); y.close();
    if (*) check1(x, closed) else check2(x, opened)

Expected (Figure 1(b)):

* check1 is provable; the cheapest abstraction is {x, y};
* check2 is impossible — no abstraction proves it;
* variable z never enters any abstraction TRACER tries.
"""

import pytest

from repro.core import Tracer, TracerConfig, backward_trace
from repro.core.formula import evaluate
from repro.core.stats import QueryStatus
from repro.lang import parse_program
from repro.typestate import (
    TsState,
    TypestateClient,
    TypestateQuery,
    file_automaton,
)

PROGRAM_TEXT = """
x = new File
y = x
choice {
  z = x
} or {
  skip
}
x.open()
y.close()
observe check1
observe check2
"""


@pytest.fixture
def client():
    return TypestateClient(
        parse_program(PROGRAM_TEXT),
        file_automaton(),
        tracked_site="File",
        variables=frozenset({"x", "y", "z"}),
    )


CHECK1 = TypestateQuery("check1", frozenset({"closed"}))
CHECK2 = TypestateQuery("check2", frozenset({"opened"}))


class TestCheck1:
    def test_cheapest_abstraction_is_x_y(self, client):
        record = Tracer(client, TracerConfig(k=1)).solve(CHECK1)
        assert record.status is QueryStatus.PROVEN
        assert record.abstraction == frozenset({"x", "y"})
        assert record.abstraction_cost == 2

    def test_three_iterations_with_k1(self, client):
        # Paper: p={} fails, p={x} fails, p={x,y} proves.
        record = Tracer(client, TracerConfig(k=1)).solve(CHECK1)
        assert record.iterations == 3

    def test_z_is_irrelevant(self, client):
        record = Tracer(client, TracerConfig(k=1)).solve(CHECK1)
        assert "z" not in record.abstraction

    def test_k5_also_proves(self, client):
        record = Tracer(client, TracerConfig(k=5)).solve(CHECK1)
        assert record.status is QueryStatus.PROVEN
        assert record.abstraction == frozenset({"x", "y"})

    def test_no_beam_also_proves(self, client):
        record = Tracer(client, TracerConfig(k=None)).solve(CHECK1)
        assert record.status is QueryStatus.PROVEN
        assert record.abstraction == frozenset({"x", "y"})


class TestCheck2:
    def test_impossible(self, client):
        record = Tracer(client, TracerConfig(k=1)).solve(CHECK2)
        assert record.status is QueryStatus.IMPOSSIBLE

    def test_impossible_in_two_iterations(self, client):
        # Paper Section 2: iteration 1 eliminates all p without x,
        # iteration 2 eliminates all p with x.
        record = Tracer(client, TracerConfig(k=1)).solve(CHECK2)
        assert record.iterations == 2

    def test_impossible_under_any_k(self, client):
        for k in (1, 5, None):
            record = Tracer(client, TracerConfig(k=k)).solve(CHECK2)
            assert record.status is QueryStatus.IMPOSSIBLE


class TestGroupedQueries:
    def test_solving_both_together(self, client):
        records = Tracer(client, TracerConfig(k=1)).solve_all([CHECK1, CHECK2])
        assert records[CHECK1].status is QueryStatus.PROVEN
        assert records[CHECK2].status is QueryStatus.IMPOSSIBLE


class TestIteration1Artifacts:
    """Spot-check the meta-analysis formulas of Figure 1(c)."""

    def test_first_counterexample_under_empty_abstraction(self, client):
        witnesses = client.counterexamples([CHECK1], frozenset())
        trace = witnesses[CHECK1]
        assert trace is not None
        # The final forward state along the trace is TOP (after y.close()
        # on {closed, opened} with empty must-alias set).
        final = client.analysis.run_trace(
            trace, frozenset(), client.analysis.initial_state()
        )
        from repro.typestate import TOP

        assert final is TOP

    def test_backward_condition_eliminates_all_p_without_x(self, client):
        # Figure 1(c): the start formula implies x not in p.
        witnesses = client.counterexamples([CHECK1], frozenset())
        trace = witnesses[CHECK1]
        result = backward_trace(
            client.meta,
            client.analysis,
            trace,
            frozenset(),
            client.analysis.initial_state(),
            client.fail_condition(CHECK1),
            k=1,
        )
        theory = client.meta.theory
        d_init = client.analysis.initial_state()
        for p in [frozenset(), frozenset({"y"}), frozenset({"z"}), frozenset({"y", "z"})]:
            assert evaluate(result.condition, theory, p, d_init)
        for p in [frozenset({"x"}), frozenset({"x", "y"})]:
            assert not evaluate(result.condition, theory, p, d_init)
