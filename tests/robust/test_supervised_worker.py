"""The supervised worker: crash isolation, timeout kills, respawn
backoff, and the chaos kill hook."""

import os
import threading
import time

import pytest

from repro.robust.pool import SupervisedWorker, WorkerCrash, WorkerTimeout


def _echo_worker(conn):
    while True:
        try:
            payload = conn.recv()
        except EOFError:
            break
        if payload is None:
            break
        if payload == "die":
            os._exit(13)
        if payload == "hang":
            time.sleep(60)
        conn.send(("echo", payload))
    conn.close()


class TestCallAndCrash:
    def test_round_trip_and_warm_process(self):
        with SupervisedWorker(_echo_worker, name="echo") as worker:
            assert worker.call("one") == ("echo", "one")
            pid = worker.pid
            assert worker.alive and pid is not None
            assert worker.call("two") == ("echo", "two")
            assert worker.pid == pid  # same process: warm state survives
            assert worker.spawns == 1

    def test_crash_fails_one_call_and_respawns_on_next(self):
        respawns = []
        worker = SupervisedWorker(
            _echo_worker,
            name="echo",
            backoff_seconds=0.01,
            on_respawn=lambda reason, delay, failures: respawns.append(
                (reason, delay, failures)
            ),
        )
        try:
            assert worker.call("warm") == ("echo", "warm")
            with pytest.raises(WorkerCrash):
                worker.call("die")
            assert worker.consecutive_failures == 1
            assert not worker.alive
            # The next call pays the backoff, respawns, and succeeds.
            assert worker.call("after") == ("echo", "after")
            assert worker.respawns == 1
            assert worker.consecutive_failures == 0
            assert respawns == [("crash", pytest.approx(0.01), 1)]
        finally:
            worker.close()

    def test_timeout_kills_the_worker(self):
        worker = SupervisedWorker(
            _echo_worker, name="echo", backoff_seconds=0.01
        )
        try:
            with pytest.raises(WorkerTimeout):
                worker.call("hang", timeout=0.2)
            # Killed, not left running: a late reply must never sit in
            # the pipe to answer the next request.
            assert not worker.alive
            assert worker.call("next") == ("echo", "next")
            assert worker.respawns == 1
        finally:
            worker.close()

    def test_kill_process_mid_call_surfaces_as_crash(self):
        worker = SupervisedWorker(
            _echo_worker, name="echo", backoff_seconds=0.01
        )
        try:
            assert worker.call("warm") == ("echo", "warm")
            killer = threading.Timer(0.1, worker.kill_process)
            killer.daemon = True
            killer.start()
            with pytest.raises(WorkerCrash):
                worker.call("hang", timeout=10)
            assert worker.call("after") == ("echo", "after")
        finally:
            worker.close()


class TestBackoff:
    def test_backoff_grows_exponentially_and_caps(self):
        slept = []
        worker = SupervisedWorker(
            _echo_worker,
            name="echo",
            backoff_seconds=0.05,
            backoff_factor=2.0,
            backoff_cap=0.15,
            sleep=slept.append,
        )
        try:
            for expected in (0.05, 0.10, 0.15, 0.15):
                with pytest.raises(WorkerCrash):
                    worker.call("die")
                assert worker.backoff() == pytest.approx(expected)
            worker.call("recovered")
            assert slept[:3] == [
                pytest.approx(0.05),
                pytest.approx(0.10),
                pytest.approx(0.15),
            ]
            # Success resets the ladder.
            assert worker.backoff() == 0.0
        finally:
            worker.close()

    def test_first_spawn_is_silent(self):
        respawns = []
        worker = SupervisedWorker(
            _echo_worker,
            name="echo",
            on_respawn=lambda *a: respawns.append(a),
        )
        try:
            worker.call("first")
            assert respawns == []
            assert worker.spawns == 1 and worker.respawns == 0
        finally:
            worker.close()


class TestClose:
    def test_close_stops_the_child(self):
        worker = SupervisedWorker(_echo_worker, name="echo")
        worker.call("warm")
        pid = worker.pid
        worker.close()
        assert not worker.alive
        # Closing again is a no-op.
        worker.close()
        assert pid is not None
