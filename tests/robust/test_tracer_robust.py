"""TRACER under budgets, injected faults, and lenient containment."""

import time

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.formula import lit
from repro.core.stats import QueryStatus
from repro.core.tracer import ProgressError, run_query_group
from repro.lang import parse_program
from repro.obs import trace as obs
from repro.obs.sinks import MemorySink
from repro.robust.faults import FaultPlan, FaultRule, fault_scope
from repro.typestate import (
    TypestateClient,
    TypestateMeta,
    TypestateQuery,
    file_automaton,
)
from repro.typestate.meta import TsParam

PROGRAM = parse_program(
    """
    x = new File
    x.open()
    x.close()
    observe pc
    """
)

TWO_QUERY_PROGRAM = parse_program(
    """
    x = new File
    x.open()
    observe mid
    x.close()
    observe end
    """
)

QUERY = TypestateQuery("pc", frozenset({"closed"}))


def _client(program=PROGRAM):
    return TypestateClient(program, file_automaton(), "File", frozenset({"x"}))


class SteppingClock:
    """Deterministic clock: every reading advances a fixed step."""

    def __init__(self, step):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def events_named(sink, name):
    return [
        record
        for record in sink.events
        if record.get("type") == "event" and record.get("name") == name
    ]


class TestDeadline:
    def test_deadline_mid_forward_run_lands_exhausted(self):
        """Satellite regression: a single forward run exceeding the
        deadline resolves EXHAUSTED near the deadline (cooperative
        checks inside the worklist), not after the run completes."""
        clock = SteppingClock(step=0.01)
        config = TracerConfig(k=5, max_seconds=0.05, budget_check_every=1)
        records = run_query_group(_client(), [QUERY], config, clock=clock)
        record = records[QUERY]
        assert record.status is QueryStatus.EXHAUSTED
        # The overshoot is bounded by one check interval of fake time:
        # the budget tripped *inside* the run, within tolerance of the
        # deadline, instead of letting the fixpoint finish.
        assert record.time_seconds <= 0.05 + 10 * clock.step

    def test_wall_clock_deadline_with_injected_delay(self):
        """Real-time variant: a slow forward phase (injected delay)
        trips the real perf_counter deadline inside the fixpoint."""
        plan = FaultPlan(
            [FaultRule("forward_run", "delay", delay=0.05, times=None)]
        )
        config = TracerConfig(k=5, max_seconds=0.01, budget_check_every=1)
        started = time.perf_counter()
        with fault_scope(plan):
            record = Tracer(_client(), config).solve(QUERY)
        assert record.status is QueryStatus.EXHAUSTED
        assert time.perf_counter() - started < 5.0

    def test_generous_deadline_unaffected(self):
        config = TracerConfig(k=5, max_seconds=60.0, budget_check_every=1)
        record = Tracer(_client(), config).solve(QUERY)
        assert record.status is QueryStatus.PROVEN

    def test_budget_exceeded_event_emitted(self):
        sink = MemorySink()
        clock = SteppingClock(step=0.01)
        config = TracerConfig(k=5, max_seconds=0.05, budget_check_every=1)
        with obs.tracing(sink):
            run_query_group(_client(), [QUERY], config, clock=clock)
        exceeded = events_named(sink, "budget_exceeded")
        assert exceeded
        assert exceeded[0]["attrs"]["reason"] == "deadline"


class TestStepBudget:
    def test_step_budget_is_deterministic(self):
        config = TracerConfig(k=5, max_steps=5)
        first = Tracer(_client(), config).solve(QUERY)
        second = Tracer(_client(), config).solve(QUERY)
        assert first.status is QueryStatus.EXHAUSTED
        assert (first.iterations, first.time_seconds == 0.0) == (
            second.iterations,
            second.time_seconds == 0.0,
        )

    def test_generous_step_budget_unaffected(self):
        record = Tracer(_client(), TracerConfig(k=5, max_steps=10**9)).solve(
            QUERY
        )
        assert record.status is QueryStatus.PROVEN


class TestDegradationLadder:
    def test_injected_explosions_shrink_beam_then_succeed(self):
        """Two injected explosions walk the ladder 8 -> 4 -> 2; the
        third attempt runs clean and the query still proves."""
        sink = MemorySink()
        plan = FaultPlan(
            [FaultRule("backward", "raise", error="explosion", times=2)]
        )
        with obs.tracing(sink), fault_scope(plan):
            record = Tracer(_client(), TracerConfig(k=8)).solve(QUERY)
        assert record.status is QueryStatus.PROVEN
        degraded = events_named(sink, "degraded")
        shrinks = [
            e["attrs"]
            for e in degraded
            if e["attrs"].get("reason") == "formula_explosion"
        ]
        assert [(s["from_k"], s["to_k"]) for s in shrinks] == [(8, 4), (4, 2)]

    def test_persistent_explosion_exhausts_after_degrading(self):
        """Acceptance: an injected FormulaExplosion produces at least
        one degraded beam-shrink event before the query lands
        EXHAUSTED."""
        sink = MemorySink()
        plan = FaultPlan(
            [FaultRule("backward", "raise", error="explosion", times=None)]
        )
        with obs.tracing(sink), fault_scope(plan):
            record = Tracer(_client(), TracerConfig(k=8)).solve(QUERY)
        assert record.status is QueryStatus.EXHAUSTED
        shrinks = [
            e
            for e in events_named(sink, "degraded")
            if e["attrs"].get("reason") == "formula_explosion"
        ]
        assert len(shrinks) >= 1

    def test_k_min_floor_respected(self):
        sink = MemorySink()
        plan = FaultPlan(
            [FaultRule("backward", "raise", error="explosion", times=None)]
        )
        with obs.tracing(sink), fault_scope(plan):
            record = Tracer(
                _client(), TracerConfig(k=8, k_min=4)
            ).solve(QUERY)
        assert record.status is QueryStatus.EXHAUSTED
        shrinks = [
            e["attrs"]["to_k"]
            for e in events_named(sink, "degraded")
            if e["attrs"].get("reason") == "formula_explosion"
        ]
        assert shrinks and min(shrinks) == 4


class TestStrictVsLenient:
    def test_strict_default_reraises_client_errors(self):
        plan = FaultPlan([FaultRule("choose", "raise")])
        with fault_scope(plan):
            with pytest.raises(RuntimeError):
                Tracer(_client(), TracerConfig(k=5)).solve(QUERY)

    def test_lenient_contains_forward_phase_error(self):
        sink = MemorySink()
        plan = FaultPlan([FaultRule("forward_run", "raise")])
        with obs.tracing(sink), fault_scope(plan):
            record = Tracer(
                _client(), TracerConfig(k=5, strict=False)
            ).solve(QUERY)
        assert record.status is QueryStatus.EXHAUSTED
        degraded = events_named(sink, "degraded")
        assert any(
            e["attrs"].get("reason") == "forward_error" for e in degraded
        )

    def test_lenient_contains_progress_error(self):
        """The ProgressError that is rightly fatal under strict mode is
        contained to the query under strict=False."""

        class NoProgress(TypestateMeta):
            def wp_primitive(self, command, prim):
                return lit(TsParam("ghost"))

        client = _client()
        client.meta = NoProgress(client.analysis)
        record = Tracer(
            client, TracerConfig(k=None, strict=False)
        ).solve(QUERY)
        assert record.status is QueryStatus.EXHAUSTED

    def test_lenient_backward_error_spares_the_rest_of_the_group(self):
        """A backward-phase fault on one query must not take down its
        group: the other member still resolves on its own merits."""
        client = _client(TWO_QUERY_PROGRAM)
        queries = [
            TypestateQuery("mid", frozenset({"opened"})),
            TypestateQuery("end", frozenset({"closed"})),
        ]
        baseline = Tracer(client, TracerConfig(k=5)).solve_all(queries)
        assert all(
            r.status is QueryStatus.PROVEN for r in baseline.values()
        )
        plan = FaultPlan([FaultRule("backward", "raise", at=1, times=1)])
        with fault_scope(plan):
            records = Tracer(
                _client(TWO_QUERY_PROGRAM),
                TracerConfig(k=5, strict=False),
            ).solve_all(queries)
        statuses = sorted(r.status.value for r in records.values())
        assert "proven" in statuses  # the group survived
        assert "exhausted" in statuses  # only the faulted query paid
