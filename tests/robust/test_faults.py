"""Unit tests of the deterministic fault-injection plans."""

import pickle

import pytest

from repro.core.formula import FormulaExplosion
from repro.robust import faults as robust_faults
from repro.robust.faults import FaultPlan, FaultRule, InjectedFault, fault_scope


class TestSpecParsing:
    def test_minimal_spec(self):
        rule = FaultRule.from_spec("backward:raise")
        assert rule.site == "backward"
        assert rule.action == "raise"
        assert (rule.at, rule.times, rule.error) == (1, 1, "injected")

    def test_full_spec(self):
        rule = FaultRule.from_spec("backward:raise:error=explosion,at=2,times=none")
        assert rule.error == "explosion"
        assert rule.at == 2
        assert rule.times is None

    def test_delay_and_attempt(self):
        rule = FaultRule.from_spec("forward_run:delay:delay=0.25,attempt=0")
        assert rule.delay == 0.25
        assert rule.attempt == 0

    @pytest.mark.parametrize(
        "spec",
        ["nocolon", "site:frobnicate", "site:raise:error=martian", "site:raise:who=1"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultRule.from_spec(spec)


class TestFiring:
    def test_fires_on_nth_hit_for_times_hits(self):
        plan = FaultPlan([FaultRule("s", "raise", at=2, times=2)])
        plan.inject("s")  # hit 1: below 'at'
        for _ in range(2):  # hits 2 and 3 fire
            with pytest.raises(InjectedFault):
                plan.inject("s")
        assert plan.inject("s") is None  # hit 4: window closed

    def test_sites_are_independent(self):
        plan = FaultPlan([FaultRule("a", "raise")])
        assert plan.inject("b") is None
        with pytest.raises(InjectedFault):
            plan.inject("a")

    def test_explosion_error_kind_raises_the_real_exception(self):
        plan = FaultPlan([FaultRule("s", "raise", error="explosion")])
        with pytest.raises(FormulaExplosion):
            plan.inject("s")

    def test_corrupt_is_reported_not_raised(self):
        plan = FaultPlan([FaultRule("s", "corrupt")])
        assert plan.inject("s") == "corrupt"
        assert plan.inject("s") is None

    def test_attempt_pinned_rule_only_fires_on_that_attempt(self):
        plan = FaultPlan([FaultRule("s", "raise", attempt=0)])
        assert plan.inject("s", attempt=1) is None
        assert plan.inject("s", attempt=None) is None
        with pytest.raises(InjectedFault):
            plan.inject("s", attempt=0)

    def test_reset_replays_identically(self):
        plan = FaultPlan([FaultRule("s", "raise", at=2)])
        assert plan.inject("s") is None
        plan.reset()
        assert plan.inject("s") is None  # hit counter went back to 0
        with pytest.raises(InjectedFault):
            plan.inject("s")


class TestPickling:
    def test_counters_do_not_travel(self):
        plan = FaultPlan([FaultRule("s", "raise", at=2)])
        assert plan.inject("s") is None  # hit 1 consumed in this process
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.rules == plan.rules
        assert clone.inject("s") is None  # fresh counters: this is hit 1
        with pytest.raises(InjectedFault):
            clone.inject("s")


class TestAmbientScope:
    def test_inject_is_noop_without_plan(self):
        assert robust_faults.current_plan() is None
        assert robust_faults.inject("anything") is None

    def test_scope_installs_and_restores(self):
        plan = FaultPlan([FaultRule("s", "raise")])
        with fault_scope(plan):
            assert robust_faults.current_plan() is plan
            with pytest.raises(InjectedFault):
                robust_faults.inject("s")
        assert robust_faults.current_plan() is None

    def test_scope_carries_attempt(self):
        plan = FaultPlan([FaultRule("s", "raise", attempt=1)])
        with fault_scope(plan, attempt=0):
            assert robust_faults.inject("s") is None
        with fault_scope(plan, attempt=1):
            with pytest.raises(InjectedFault):
                robust_faults.inject("s")

    def test_none_plan_scope_is_noop(self):
        with fault_scope(None):
            assert robust_faults.inject("s") is None
