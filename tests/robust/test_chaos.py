"""Chaos matrix: every instrumented site x every benign fault action.

The contract under test (satellite of the robustness PR): with a
lenient configuration, no injected raise or delay at any span site may
crash the solver — every query resolves to one of the three statuses,
and the per-query time accounting stays conserved (each query carries
a non-negative share, and the shares never exceed the group's wall
clock)."""

import time

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.lang import parse_program
from repro.robust.faults import FaultPlan, FaultRule, fault_scope
from repro.typestate import TypestateClient, TypestateQuery, file_automaton

PROGRAM = parse_program(
    """
    x = new File
    x.open()
    observe mid
    x.close()
    observe end
    """
)

QUERIES = [
    TypestateQuery("mid", frozenset({"opened"})),
    TypestateQuery("end", frozenset({"closed"})),
]

SITES = ("choose", "forward_run", "extract", "backward")

ACTIONS = (
    ("raise", {}),
    ("raise", {"error": "explosion"}),
    ("delay", {"delay": 0.01}),
)

VALID = {QueryStatus.PROVEN, QueryStatus.IMPOSSIBLE, QueryStatus.EXHAUSTED}


def _client():
    return TypestateClient(PROGRAM, file_automaton(), "File", frozenset({"x"}))


@pytest.mark.parametrize("site", SITES)
@pytest.mark.parametrize("action,extra", ACTIONS, ids=lambda a: str(a))
@pytest.mark.parametrize("repeat", ["once", "always"])
def test_chaos_never_crashes_the_lenient_solver(site, action, extra, repeat):
    times = 1 if repeat == "once" else None
    plan = FaultPlan([FaultRule(site, action, times=times, **extra)])
    config = TracerConfig(k=5, max_iterations=10, strict=False)
    started = time.perf_counter()
    with fault_scope(plan):
        records = Tracer(_client(), config).solve_all(QUERIES)
    wall = time.perf_counter() - started
    assert set(records) == set(QUERIES)
    for record in records.values():
        assert record.status in VALID
        assert record.time_seconds >= 0.0
    # Conservation: equal-share charging can never mint more per-query
    # time than the group actually spent.
    assert sum(r.time_seconds for r in records.values()) <= wall + 0.5


def test_chaos_with_budget_still_resolves_every_query():
    """Faults and cooperative budgets composed: still no crash, still a
    verdict per query."""
    plan = FaultPlan(
        [
            FaultRule("forward_run", "delay", delay=0.005, times=None),
            FaultRule("backward", "raise", error="explosion", at=2),
        ]
    )
    config = TracerConfig(
        k=5,
        max_iterations=10,
        max_seconds=5.0,
        max_steps=100_000,
        strict=False,
        budget_check_every=1,
    )
    with fault_scope(plan):
        records = Tracer(_client(), config).solve_all(QUERIES)
    assert set(records) == set(QUERIES)
    assert all(r.status in VALID for r in records.values())


class TestKillMidQuery:
    """SIGKILL the solver mid-CEGAR (a real ``kill`` fault, so the
    process dies with no chance to clean up), then resume from the
    journal and demand an identical verdict and clause set.

    The kill runs in a subprocess — ``kill`` SIGKILLs the *current*
    process, which would take pytest down with it."""

    PROGRAM_TEXT = (
        "x = new File\n"
        "y = x\n"
        "x.open()\n"
        "y.close()\n"
        "observe check1\n"
        "observe check2\n"
    )

    def _run(self, tmp_path, *argv):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(root)
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            cwd=str(tmp_path),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def _certificates(self, path):
        import json

        with open(path) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        return [r for r in records if r.get("type") == "certificate"]

    @pytest.mark.parametrize("site,hit", [("backward", 1), ("choose", 2)])
    def test_kill_then_resume_is_verdict_identical(self, tmp_path, site, hit):
        prog = tmp_path / "prog.rp"
        prog.write_text(self.PROGRAM_TEXT)
        base = [
            "solve-typestate",
            "prog.rp",
            "--query",
            "check1",
            "--allowed",
            "closed",
        ]
        # Reference run: no faults, no journal.
        reference = self._run(
            tmp_path, *base, "--certify-out", "ref.jsonl"
        )
        assert reference.returncode == 0, reference.stderr
        # Killed run: SIGKILL mid-search, journal survives on disk.
        killed = self._run(
            tmp_path,
            *base,
            "--journal",
            "journal.jsonl",
            "--inject",
            f"{site}:kill:at={hit}",
        )
        assert killed.returncode == -9
        assert (tmp_path / "journal.jsonl").exists()
        # Resumed run: replay the journal, finish live, certify.
        resumed = self._run(
            tmp_path,
            *base,
            "--resume-journal",
            "journal.jsonl",
            "--certify-out",
            "resumed.jsonl",
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "PROVEN" in resumed.stdout
        ref_cert, = self._certificates(tmp_path / "ref.jsonl")
        res_cert, = self._certificates(tmp_path / "resumed.jsonl")
        assert res_cert["verdict"] == ref_cert["verdict"] == "proven"
        assert res_cert["abstraction"] == ref_cert["abstraction"]
        assert res_cert["clauses"] == ref_cert["clauses"]
        assert res_cert["annotation_digest"] == ref_cert["annotation_digest"]

    def test_kill_mid_impossible_query(self, tmp_path):
        prog = tmp_path / "prog.rp"
        prog.write_text(self.PROGRAM_TEXT)
        base = [
            "solve-typestate",
            "prog.rp",
            "--query",
            "check2",
            "--allowed",
            "opened",
        ]
        reference = self._run(tmp_path, *base, "--certify-out", "ref.jsonl")
        assert reference.returncode == 10, reference.stderr
        killed = self._run(
            tmp_path,
            *base,
            "--journal",
            "journal.jsonl",
            "--inject",
            "backward:kill:at=1",
        )
        assert killed.returncode == -9
        resumed = self._run(
            tmp_path,
            *base,
            "--resume-journal",
            "journal.jsonl",
            "--certify-out",
            "resumed.jsonl",
        )
        assert resumed.returncode == 10, resumed.stderr
        assert "IMPOSSIBLE" in resumed.stdout
        ref_cert, = self._certificates(tmp_path / "ref.jsonl")
        res_cert, = self._certificates(tmp_path / "resumed.jsonl")
        assert res_cert["verdict"] == ref_cert["verdict"] == "impossible"
        assert res_cert["clauses"] == ref_cert["clauses"]
