"""Chaos matrix: every instrumented site x every benign fault action.

The contract under test (satellite of the robustness PR): with a
lenient configuration, no injected raise or delay at any span site may
crash the solver — every query resolves to one of the three statuses,
and the per-query time accounting stays conserved (each query carries
a non-negative share, and the shares never exceed the group's wall
clock)."""

import time

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.lang import parse_program
from repro.robust.faults import FaultPlan, FaultRule, fault_scope
from repro.typestate import TypestateClient, TypestateQuery, file_automaton

PROGRAM = parse_program(
    """
    x = new File
    x.open()
    observe mid
    x.close()
    observe end
    """
)

QUERIES = [
    TypestateQuery("mid", frozenset({"opened"})),
    TypestateQuery("end", frozenset({"closed"})),
]

SITES = ("choose", "forward_run", "extract", "backward")

ACTIONS = (
    ("raise", {}),
    ("raise", {"error": "explosion"}),
    ("delay", {"delay": 0.01}),
)

VALID = {QueryStatus.PROVEN, QueryStatus.IMPOSSIBLE, QueryStatus.EXHAUSTED}


def _client():
    return TypestateClient(PROGRAM, file_automaton(), "File", frozenset({"x"}))


@pytest.mark.parametrize("site", SITES)
@pytest.mark.parametrize("action,extra", ACTIONS, ids=lambda a: str(a))
@pytest.mark.parametrize("repeat", ["once", "always"])
def test_chaos_never_crashes_the_lenient_solver(site, action, extra, repeat):
    times = 1 if repeat == "once" else None
    plan = FaultPlan([FaultRule(site, action, times=times, **extra)])
    config = TracerConfig(k=5, max_iterations=10, strict=False)
    started = time.perf_counter()
    with fault_scope(plan):
        records = Tracer(_client(), config).solve_all(QUERIES)
    wall = time.perf_counter() - started
    assert set(records) == set(QUERIES)
    for record in records.values():
        assert record.status in VALID
        assert record.time_seconds >= 0.0
    # Conservation: equal-share charging can never mint more per-query
    # time than the group actually spent.
    assert sum(r.time_seconds for r in records.values()) <= wall + 0.5


def test_chaos_with_budget_still_resolves_every_query():
    """Faults and cooperative budgets composed: still no crash, still a
    verdict per query."""
    plan = FaultPlan(
        [
            FaultRule("forward_run", "delay", delay=0.005, times=None),
            FaultRule("backward", "raise", error="explosion", at=2),
        ]
    )
    config = TracerConfig(
        k=5,
        max_iterations=10,
        max_seconds=5.0,
        max_steps=100_000,
        strict=False,
        budget_check_every=1,
    )
    with fault_scope(plan):
        records = Tracer(_client(), config).solve_all(QUERIES)
    assert set(records) == set(QUERIES)
    assert all(r.status in VALID for r in records.values())
