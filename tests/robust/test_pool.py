"""Crash-surviving pool tests: retries, SIGKILL, timeouts."""

import os
import signal
import time

import pytest

from repro.robust.pool import RetryPolicy, run_units

FAST = RetryPolicy(max_attempts=3, backoff_seconds=0.0)


def _double(item, attempt):
    return item * 2


def _fail_first(item, attempt):
    if attempt == 0:
        raise ValueError(f"flaky {item}")
    return item * 10


def _always_fail(item, attempt):
    raise ValueError(f"hopeless {item}")


def _kill_first(item, attempt):
    if attempt == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return item + 100


def _hang_first(item, attempt):
    if attempt == 0:
        time.sleep(60)
    return item


class TestHappyPath:
    def test_results_in_item_order(self):
        outcomes = run_units(_double, [3, 1, 2], policy=FAST, max_workers=2)
        assert [o.result for o in outcomes] == [6, 2, 4]
        assert all(o.succeeded and o.attempts == 1 for o in outcomes)

    def test_empty_items(self):
        assert run_units(_double, [], policy=FAST) == []


class TestRetries:
    def test_exception_is_retried_and_recovers(self):
        outcomes = run_units(_fail_first, [1, 2], policy=FAST, max_workers=2)
        assert [o.result for o in outcomes] == [10, 20]
        assert all(o.retried and o.attempts == 2 for o in outcomes)
        assert all("flaky" in o.errors[0] for o in outcomes)

    def test_attempts_are_exhausted_then_reported(self):
        policy = RetryPolicy(max_attempts=2, backoff_seconds=0.0)
        outcomes = run_units(_always_fail, [7], policy=policy)
        (outcome,) = outcomes
        assert not outcome.succeeded
        assert outcome.attempts == 2
        assert "hopeless 7" in outcome.error
        assert len(outcome.errors) == 2

    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_seconds=0.5, backoff_factor=2.0)
        assert policy.backoff(0) == pytest.approx(0.5)
        assert policy.backoff(2) == pytest.approx(2.0)

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestWorkerDeath:
    def test_sigkilled_worker_does_not_sink_the_run(self):
        """A worker SIGKILLed mid-unit surfaces as BrokenProcessPool in
        the parent; the pool respawns and the unit succeeds on retry."""
        outcomes = run_units(_kill_first, [1, 2, 3], policy=FAST, max_workers=2)
        assert [o.result for o in outcomes] == [101, 102, 103]
        assert all(o.succeeded for o in outcomes)
        assert any(o.retried for o in outcomes)
        assert any("worker crashed" in e for o in outcomes for e in o.errors)


class TestTimeout:
    def test_hung_unit_times_out_and_recovers(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_seconds=0.0, unit_timeout=1.0
        )
        started = time.monotonic()
        outcomes = run_units(_hang_first, [5], policy=policy, max_workers=1)
        elapsed = time.monotonic() - started
        (outcome,) = outcomes
        assert outcome.succeeded
        assert outcome.result == 5
        assert outcome.attempts == 2
        assert "timeout" in outcome.errors[0]
        assert elapsed < 30  # nowhere near the 60s hang
