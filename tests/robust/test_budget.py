"""Unit tests of the cooperative budget layer."""

import pytest

from repro.robust import budget as robust_budget
from repro.robust.budget import Budget, BudgetExceeded, budget_scope


class FakeClock:
    """A clock that advances a fixed step per reading."""

    def __init__(self, step=0.0, start=100.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value

    def advance(self, seconds):
        self.now += seconds


class TestStepBudget:
    def test_trips_exactly_past_max_steps(self):
        budget = Budget(max_steps=3)
        budget.tick()
        budget.tick()
        budget.tick()
        with pytest.raises(BudgetExceeded) as caught:
            budget.tick()
        assert caught.value.reason == "steps"
        assert caught.value.steps == 4

    def test_bulk_ticks_count_in_full(self):
        budget = Budget(max_steps=10)
        with pytest.raises(BudgetExceeded):
            budget.tick(11)


class TestDeadline:
    def test_clock_consulted_every_check_every_ticks(self):
        clock = FakeClock()
        budget = Budget(max_seconds=5.0, clock=clock, check_every=4)
        clock.advance(10.0)  # already past the deadline...
        budget.tick()
        budget.tick()
        budget.tick()  # ...but the clock has not been read yet
        with pytest.raises(BudgetExceeded) as caught:
            budget.tick()
        assert caught.value.reason == "deadline"

    def test_checkpoint_always_consults_clock(self):
        clock = FakeClock()
        budget = Budget(max_seconds=5.0, clock=clock, check_every=1000)
        budget.checkpoint()  # within deadline: fine
        clock.advance(10.0)
        with pytest.raises(BudgetExceeded):
            budget.checkpoint()

    def test_remaining_seconds(self):
        clock = FakeClock()
        budget = Budget(max_seconds=5.0, clock=clock)
        assert budget.remaining_seconds() == pytest.approx(5.0)
        clock.advance(2.0)
        assert budget.remaining_seconds() == pytest.approx(3.0)
        assert Budget(max_steps=1).remaining_seconds() is None

    def test_check_every_must_be_positive(self):
        with pytest.raises(ValueError):
            Budget(max_seconds=1.0, check_every=0)


class TestAmbientScope:
    def test_module_tick_is_noop_without_budget(self):
        assert robust_budget.current_budget() is None
        robust_budget.tick()  # must not raise
        robust_budget.checkpoint()

    def test_scope_installs_and_restores(self):
        budget = Budget(max_steps=100)
        with budget_scope(budget):
            assert robust_budget.current_budget() is budget
            robust_budget.tick(7)
        assert robust_budget.current_budget() is None
        assert budget.steps == 7

    def test_scopes_nest(self):
        outer = Budget(max_steps=100)
        inner = Budget(max_steps=100)
        with budget_scope(outer):
            with budget_scope(inner):
                robust_budget.tick()
            assert robust_budget.current_budget() is outer
        assert inner.steps == 1
        assert outer.steps == 0

    def test_scope_pops_on_exception(self):
        budget = Budget(max_steps=1)
        with pytest.raises(BudgetExceeded):
            with budget_scope(budget):
                robust_budget.tick(5)
        assert robust_budget.current_budget() is None

    def test_none_scope_clears_budget(self):
        outer = Budget(max_steps=1)
        with budget_scope(outer):
            with budget_scope(None):
                robust_budget.tick(50)  # no ambient budget: no-op
        assert outer.steps == 0
