"""The append-only CEGAR search journal: recording, replay, mismatch
detection, and crash tolerance of the underlying JSONL file."""

import json

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.lang import parse_program
from repro.robust.journal import (
    JOURNAL_VERSION,
    JournalMismatch,
    SearchJournal,
    clause_from_jsonable,
    clause_to_jsonable,
    command_from_dict,
    command_to_dict,
    load_journal,
    trace_from_jsonable,
    trace_to_jsonable,
)
from repro.typestate import TypestateClient, TypestateQuery, file_automaton

PROGRAM = parse_program(
    """
    x = new File
    y = x
    x.open()
    y.close()
    observe check1
    observe check2
    """
)

Q_PROVEN = TypestateQuery("check1", frozenset({"closed"}))
Q_IMPOSSIBLE = TypestateQuery("check2", frozenset({"opened"}))


def _client():
    return TypestateClient(
        PROGRAM, file_automaton(), "File", frozenset({"x", "y"})
    )


def _config():
    return TracerConfig(k=5, max_iterations=30)


class TestCodecs:
    def test_clause_round_trip(self):
        clause = frozenset({("b", False), ("a", True)})
        encoded = clause_to_jsonable(clause)
        assert encoded == [["a", True], ["b", False]]  # sorted, stable
        assert clause_from_jsonable(encoded) == clause

    def test_command_round_trip_covers_the_program(self):
        from repro.lang.ast import atoms_of

        for command in atoms_of(PROGRAM):
            encoded = command_to_dict(command)
            json.dumps(encoded)  # must be JSON-able as-is
            assert command_from_dict(encoded) == command

    def test_trace_round_trip(self):
        from repro.lang.ast import atoms_of

        trace = tuple(atoms_of(PROGRAM))
        assert trace_from_jsonable(trace_to_jsonable(trace)) == trace


class TestRecordReplay:
    def _solve(self, queries, journal):
        with journal:
            solved = Tracer(_client(), _config(), journal=journal).solve_all(
                queries
            )
        return solved

    def test_fresh_run_writes_header_and_rounds(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        solved = self._solve([Q_PROVEN], SearchJournal(path))
        assert solved[Q_PROVEN].status is QueryStatus.PROVEN
        header, rounds = load_journal(path)
        assert header["version"] == JOURNAL_VERSION
        assert header["queries"] == [str(Q_PROVEN)]
        assert rounds
        assert all(r["round"] == i + 1 for i, r in enumerate(rounds))

    def test_resume_reproduces_records_bit_identically(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        queries = [Q_PROVEN, Q_IMPOSSIBLE]
        first = self._solve(queries, SearchJournal(path))
        second = self._solve(queries, SearchJournal(path, resume=True))
        for query in queries:
            a, b = first[query], second[query]
            assert a.status == b.status
            assert a.abstraction == b.abstraction
            assert a.abstraction_cost == b.abstraction_cost
            assert a.iterations == b.iterations
            assert a.forward_runs == b.forward_runs
            assert a.forward_cache_hits == b.forward_cache_hits

    def test_resume_does_not_rerun_recorded_rounds(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        self._solve([Q_PROVEN], SearchJournal(path))

        class ExplodingClient(TypestateClient):
            def run_forward(self, p):
                raise AssertionError("replay must not run the analysis")

        client = ExplodingClient(
            PROGRAM, file_automaton(), "File", frozenset({"x", "y"})
        )
        with SearchJournal(path, resume=True) as journal:
            solved = Tracer(client, _config(), journal=journal).solve_all(
                [Q_PROVEN]
            )
        assert solved[Q_PROVEN].status is QueryStatus.PROVEN

    def test_resume_after_truncated_tail(self, tmp_path):
        """A SIGKILL mid-append leaves a torn last line; resume must
        replay the intact prefix and search the rest live."""
        path = str(tmp_path / "journal.jsonl")
        self._solve([Q_PROVEN], SearchJournal(path))
        with open(path, "r+") as handle:
            content = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(content[: len(content) - 20])  # tear the tail
        solved = self._solve([Q_PROVEN], SearchJournal(path, resume=True))
        assert solved[Q_PROVEN].status is QueryStatus.PROVEN

    def test_resume_with_different_queries_rejected(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        self._solve([Q_PROVEN], SearchJournal(path))
        with pytest.raises(JournalMismatch):
            self._solve([Q_IMPOSSIBLE], SearchJournal(path, resume=True))

    def test_resume_with_tampered_abstraction_rejected(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        self._solve([Q_PROVEN], SearchJournal(path))
        lines = open(path).read().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "round" and record.get("abstraction"):
                record["abstraction"] = ["ghost"]
            doctored.append(json.dumps(record, sort_keys=True))
        with open(path, "w") as handle:
            handle.write("\n".join(doctored) + "\n")
        with pytest.raises(JournalMismatch):
            self._solve([Q_PROVEN], SearchJournal(path, resume=True))

    def test_fresh_journal_truncates_stale_file(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        self._solve([Q_IMPOSSIBLE], SearchJournal(path))
        self._solve([Q_PROVEN], SearchJournal(path))  # fresh, not resume
        header, _rounds = load_journal(path)
        assert header["queries"] == [str(Q_PROVEN)]

    def test_journal_emits_replay_events(self, tmp_path):
        from repro.obs import trace as obs
        from repro.obs.sinks import MemorySink

        path = str(tmp_path / "journal.jsonl")
        self._solve([Q_PROVEN], SearchJournal(path))
        sink = MemorySink()
        with obs.tracing(sink):
            self._solve([Q_PROVEN], SearchJournal(path, resume=True))
        names = [
            record.get("name")
            for record in sink.events
            if record.get("type") == "event"
        ]
        assert "journal_replayed" in names
