"""Verdict certificates: emission, independent checking, and rejection
of tampered or malformed certificate files."""

import json

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.lang import parse_program
from repro.robust.certify import (
    CERTIFICATE_VERSION,
    CertificateStore,
    check_certificate,
    load_certificates,
    write_certificates,
)
from repro.typestate import TypestateClient, TypestateQuery, file_automaton

PROGRAM = parse_program(
    """
    x = new File
    y = x
    x.open()
    y.close()
    observe check1
    observe check2
    """
)

Q_PROVEN = TypestateQuery("check1", frozenset({"closed"}))
Q_IMPOSSIBLE = TypestateQuery("check2", frozenset({"opened"}))


def _client():
    return TypestateClient(
        PROGRAM, file_automaton(), "File", frozenset({"x", "y"})
    )


def _certify(queries):
    store = CertificateStore()
    Tracer(
        _client(), TracerConfig(k=5, max_iterations=30), certificates=store
    ).solve_all(queries)
    return store


class TestEmission:
    def test_one_certificate_per_query(self):
        store = _certify([Q_PROVEN, Q_IMPOSSIBLE])
        by_query = store.by_query()
        assert set(by_query) == {str(Q_PROVEN), str(Q_IMPOSSIBLE)}
        assert by_query[str(Q_PROVEN)]["verdict"] == "proven"
        assert by_query[str(Q_IMPOSSIBLE)]["verdict"] == "impossible"

    def test_proven_certificate_carries_the_evidence(self):
        cert = _certify([Q_PROVEN]).by_query()[str(Q_PROVEN)]
        assert cert["version"] == CERTIFICATE_VERSION
        assert cert["abstraction"] == ["x", "y"]
        assert cert["abstraction_cost"] == 2
        assert cert["annotation_digest"]
        assert cert["clauses"]  # the accumulated viability clauses
        assert cert["witnesses"]  # the counterexample traces behind them

    def test_impossible_certificate_carries_witnesses(self):
        cert = _certify([Q_IMPOSSIBLE]).by_query()[str(Q_IMPOSSIBLE)]
        assert cert["abstraction"] is None
        assert cert["witnesses"]
        for witness in cert["witnesses"]:
            assert witness["trace"]
            assert witness["clauses"]

    def test_certificates_are_json_serialisable(self):
        store = _certify([Q_PROVEN, Q_IMPOSSIBLE])
        for cert in store.certificates:
            json.dumps(cert)

    def test_stamp_attaches_client_info(self):
        store = _certify([Q_PROVEN])
        store.stamp({"kind": "test", "detail": 7})
        assert all(
            cert["client"] == {"kind": "test", "detail": 7}
            for cert in store.certificates
        )


class TestChecking:
    def test_genuine_certificates_check_out(self):
        store = _certify([Q_PROVEN, Q_IMPOSSIBLE])
        for query in (Q_PROVEN, Q_IMPOSSIBLE):
            report = check_certificate(
                _client(), query, store.by_query()[str(query)]
            )
            assert report.ok, report.problems

    def test_cheaper_claim_rejected(self):
        cert = dict(_certify([Q_PROVEN]).by_query()[str(Q_PROVEN)])
        cert["abstraction"] = []
        cert["abstraction_cost"] = 0
        report = check_certificate(_client(), Q_PROVEN, cert)
        assert not report.ok
        assert any("clause" in p or "cost" in p for p in report.problems)

    def test_non_minimal_claim_rejected(self):
        """An abstraction that proves the query but is not cheapest in
        the family must fail the fresh MinCostSAT minimality check."""
        cert = dict(_certify([Q_PROVEN]).by_query()[str(Q_PROVEN)])
        cert["clauses"] = []  # forget the learned clauses
        report = check_certificate(_client(), Q_PROVEN, cert)
        assert not report.ok
        assert any("minimum" in p or "cost" in p for p in report.problems)

    def test_wrong_digest_rejected(self):
        cert = dict(_certify([Q_PROVEN]).by_query()[str(Q_PROVEN)])
        cert["annotation_digest"] = "0" * 64
        report = check_certificate(_client(), Q_PROVEN, cert)
        assert not report.ok
        assert any("digest" in p for p in report.problems)

    def test_impossible_with_satisfiable_clauses_rejected(self):
        cert = dict(_certify([Q_IMPOSSIBLE]).by_query()[str(Q_IMPOSSIBLE)])
        cert["clauses"] = cert["clauses"][:1]
        report = check_certificate(_client(), Q_IMPOSSIBLE, cert)
        assert not report.ok

    def test_doctored_witness_trace_rejected(self):
        cert = dict(_certify([Q_IMPOSSIBLE]).by_query()[str(Q_IMPOSSIBLE)])
        witnesses = [dict(w) for w in cert["witnesses"]]
        # Drop the trace's failing suffix: the replayed trace no longer
        # reaches the fail condition, so Theorem 3 checking must object.
        witnesses[0]["trace"] = witnesses[0]["trace"][:1]
        cert["witnesses"] = witnesses
        report = check_certificate(_client(), Q_IMPOSSIBLE, cert)
        assert not report.ok


class TestFileFormat:
    def test_write_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "certs.jsonl")
        store = _certify([Q_PROVEN, Q_IMPOSSIBLE])
        write_certificates(store.certificates, path)
        loaded = load_certificates(path)
        assert loaded == store.certificates

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValueError):
            load_certificates(str(tmp_path / "nope.jsonl"))

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "certs.jsonl"
        path.write_text(
            json.dumps(
                {
                    "type": "certificate_header",
                    "version": CERTIFICATE_VERSION + 1,
                }
            )
            + "\n"
        )
        with pytest.raises(ValueError):
            load_certificates(str(path))

    def test_garbage_line_rejected(self, tmp_path):
        path = tmp_path / "certs.jsonl"
        path.write_text(
            json.dumps(
                {"type": "certificate_header", "version": CERTIFICATE_VERSION}
            )
            + "\nnot json\n"
        )
        with pytest.raises(ValueError):
            load_certificates(str(path))
