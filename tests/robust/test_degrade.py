"""Unit tests of the beam-width degradation ladder."""

import pytest

from repro.core.formula import FormulaExplosion
from repro.robust.degrade import (
    DEFAULT_FALLBACK_K,
    beam_ladder,
    run_with_degradation,
)


class TestLadder:
    def test_halves_down_to_floor(self):
        assert beam_ladder(8) == [8, 4, 2, 1]
        assert beam_ladder(5) == [5, 2, 1]
        assert beam_ladder(8, k_min=2) == [8, 4, 2]

    def test_floor_alone(self):
        assert beam_ladder(1) == [1]

    def test_none_falls_back_to_default(self):
        ladder = beam_ladder(None)
        assert ladder[0] is None
        assert ladder[1] == DEFAULT_FALLBACK_K
        assert ladder[-1] == 1

    def test_bad_floor(self):
        with pytest.raises(ValueError):
            beam_ladder(8, k_min=0)


class TestRunWithDegradation:
    def test_no_explosion_runs_once(self):
        calls = []
        result, width = run_with_degradation(lambda k: calls.append(k) or "ok", 8)
        assert (result, width) == ("ok", 8)
        assert calls == [8]

    def test_retries_with_halved_beam(self):
        calls, degradations = [], []

        def attempt(k):
            calls.append(k)
            if k > 2:
                raise FormulaExplosion("too wide")
            return f"ok@{k}"

        result, width = run_with_degradation(
            attempt, 8, on_degrade=lambda a, b: degradations.append((a, b))
        )
        assert (result, width) == ("ok@2", 2)
        assert calls == [8, 4, 2]
        assert degradations == [(8, 4), (4, 2)]

    def test_exhausted_ladder_reraises(self):
        def attempt(k):
            raise FormulaExplosion("always")

        with pytest.raises(FormulaExplosion):
            run_with_degradation(attempt, 4)

    def test_other_exceptions_pass_through_undampened(self):
        def attempt(k):
            raise KeyError("not an explosion")

        with pytest.raises(KeyError):
            run_with_degradation(attempt, 4)
