"""JSONL checkpoint round-trips and crash tolerance."""

import json

import pytest

from repro.core.stats import CacheCounters, QueryRecord, QueryStatus
from repro.robust.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWriter,
    load_checkpoint,
    unit_from_dict,
    unit_to_dict,
)

KEY = ("tsp", "typestate", 2)
RECORDS = [
    QueryRecord(
        query_id="q1",
        status=QueryStatus.PROVEN,
        iterations=3,
        abstraction=frozenset({"a", "b"}),
        abstraction_cost=2,
        time_seconds=0.125,
        max_disjuncts=4,
        forward_runs=3,
        forward_cache_hits=1,
    ),
    QueryRecord(query_id="q2", status=QueryStatus.EXHAUSTED, iterations=30),
]
METRICS = {"forward_run": CacheCounters(hits=5, misses=2)}
CERTIFICATES = [{"type": "certificate", "query": "q1", "verdict": "proven"}]
PAYLOAD = (RECORDS, METRICS, 2, CERTIFICATES)


class TestRoundTrip:
    def test_unit_dict_round_trip(self):
        key, payload = unit_from_dict(unit_to_dict(KEY, PAYLOAD))
        assert key == KEY
        records, metrics, attempts, certificates = payload
        assert records == RECORDS
        assert metrics == METRICS
        assert attempts == 2
        assert certificates == CERTIFICATES

    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with CheckpointWriter(path) as writer:
            writer.write_unit(KEY, PAYLOAD)
        loaded = load_checkpoint(path)
        assert set(loaded) == {KEY}
        assert loaded[KEY][0] == RECORDS

    def test_reopening_appends_without_second_header(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with CheckpointWriter(path) as writer:
            writer.write_unit(KEY, PAYLOAD)
        other = ("tsp", "typestate", 3)
        with CheckpointWriter(path) as writer:
            writer.write_unit(other, PAYLOAD)
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert [l["type"] for l in lines] == ["checkpoint_header", "unit", "unit"]
        assert set(load_checkpoint(path)) == {KEY, other}


class TestCrashTolerance:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "nope.jsonl")) == {}

    def test_torn_tail_is_ignored(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with CheckpointWriter(path) as writer:
            writer.write_unit(KEY, PAYLOAD)
        with open(path, "a") as handle:
            handle.write('{"type": "unit", "benchmark": "tsp", "ana')  # torn
        loaded = load_checkpoint(path)
        assert set(loaded) == {KEY}

    def test_unknown_version_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with open(path, "w") as handle:
            handle.write(
                json.dumps(
                    {"type": "checkpoint_header", "version": CHECKPOINT_VERSION + 1}
                )
                + "\n"
            )
        with pytest.raises(ValueError):
            load_checkpoint(path)
