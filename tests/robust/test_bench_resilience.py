"""Crash-surviving parallel evaluation: retries, kills, checkpoints.

Satellite regressions of the robustness PR: a SIGKILLed worker or a
failing first attempt must not change the merged records (they are
bit-identical to an un-faulted run), permanently failing units land in
``failed_units`` instead of raising, and ``--resume`` reruns only the
units missing from the checkpoint."""

import pytest

from repro.bench.harness import evaluate_benchmark, prepare
from repro.bench.parallel import RunOptions, evaluate_benchmark_parallel
from repro.core.tracer import TracerConfig
from repro.robust.faults import FaultPlan, FaultRule
from repro.robust.pool import RetryPolicy

CONFIG = TracerConfig(k=5, max_iterations=30)
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_seconds=0.0)


def record_key(record):
    """Everything about a record except wall-clock time."""
    return (
        record.query_id,
        record.status,
        record.abstraction,
        record.abstraction_cost,
        record.iterations,
        record.forward_runs,
        record.forward_cache_hits,
        record.max_disjuncts,
    )


def keys(result):
    return [record_key(r) for r in result.records]


@pytest.fixture(scope="module")
def bench():
    return prepare("elevator")


@pytest.fixture(scope="module")
def baseline(bench):
    return evaluate_benchmark(bench, "typestate", CONFIG, jobs=1)


class TestFaultedMergesAreBitIdentical:
    def test_raise_on_first_attempt_retries_to_identical_records(
        self, bench, baseline
    ):
        plan = FaultPlan(
            [FaultRule("unit:elevator:typestate:0", "raise", attempt=0)]
        )
        result = evaluate_benchmark_parallel(
            bench,
            "typestate",
            CONFIG,
            jobs=2,
            options=RunOptions(retry=FAST_RETRY, fault_plan=plan),
        )
        assert keys(result) == keys(baseline)
        assert result.degraded
        assert result.failed_units == ()

    def test_sigkilled_worker_recovers_to_identical_records(
        self, bench, baseline
    ):
        """Acceptance: SIGKILL of one worker mid-evaluation completes
        via respawn + retry, never an unhandled BrokenProcessPool."""
        plan = FaultPlan(
            [FaultRule("unit:elevator:typestate:0", "kill", attempt=0)]
        )
        result = evaluate_benchmark_parallel(
            bench,
            "typestate",
            CONFIG,
            jobs=2,
            options=RunOptions(retry=FAST_RETRY, fault_plan=plan),
        )
        assert keys(result) == keys(baseline)
        assert result.degraded
        assert result.failed_units == ()

    def test_corrupted_unit_output_is_caught_and_retried(
        self, bench, baseline
    ):
        plan = FaultPlan(
            [FaultRule("unit:elevator:typestate:0", "corrupt", attempt=0)]
        )
        result = evaluate_benchmark_parallel(
            bench,
            "typestate",
            CONFIG,
            jobs=2,
            options=RunOptions(retry=FAST_RETRY, fault_plan=plan),
        )
        assert keys(result) == keys(baseline)
        assert result.failed_units == ()


class TestPermanentFailure:
    def test_unit_failing_every_attempt_lands_in_failed_units(
        self, bench, baseline
    ):
        plan = FaultPlan(
            [FaultRule("unit:elevator:typestate:0", "raise", times=None)]
        )
        result = evaluate_benchmark_parallel(
            bench,
            "typestate",
            CONFIG,
            jobs=2,
            options=RunOptions(
                retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
                fault_plan=plan,
            ),
        )
        assert result.degraded
        assert len(result.failed_units) == 1
        assert result.failed_units[0].startswith("elevator:typestate:0:")
        # Units merge in unit order, so dropping unit 0 drops exactly
        # the baseline's leading records; every other unit survives.
        from repro.bench.harness import analysis_setups

        dropped = len(analysis_setups(bench, "typestate")[0][1])
        assert dropped > 0
        assert keys(result) == keys(baseline)[dropped:]


class TestCheckpointResume:
    def test_resume_runs_only_unfinished_units(self, bench, baseline, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        first = evaluate_benchmark_parallel(
            bench,
            "typestate",
            CONFIG,
            jobs=2,
            options=RunOptions(retry=FAST_RETRY, checkpoint_path=path),
        )
        assert keys(first) == keys(baseline)
        # Resume from a complete checkpoint under a plan that fails
        # *every* executed unit: nothing may execute, so the merge must
        # still be identical — proof that only unfinished units rerun.
        poison = FaultPlan([FaultRule("unit", "raise", times=None)])
        resumed = evaluate_benchmark_parallel(
            bench,
            "typestate",
            CONFIG,
            jobs=2,
            options=RunOptions(
                retry=RetryPolicy(max_attempts=1, backoff_seconds=0.0),
                checkpoint_path=path,
                resume=True,
                fault_plan=poison,
            ),
        )
        assert keys(resumed) == keys(baseline)
        assert resumed.failed_units == ()
        assert resumed.degraded  # resumed-from-checkpoint is flagged

    def test_resume_after_torn_checkpoint_reruns_the_missing_unit(
        self, bench, baseline, tmp_path
    ):
        path = str(tmp_path / "ckpt.jsonl")
        evaluate_benchmark_parallel(
            bench,
            "typestate",
            CONFIG,
            jobs=2,
            options=RunOptions(retry=FAST_RETRY, checkpoint_path=path),
        )
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")  # drop one unit
        resumed = evaluate_benchmark_parallel(
            bench,
            "typestate",
            CONFIG,
            jobs=2,
            options=RunOptions(
                retry=FAST_RETRY, checkpoint_path=path, resume=True
            ),
        )
        assert keys(resumed) == keys(baseline)
        # The rerun unit was checkpointed again: a second resume finds
        # everything complete.
        from repro.robust.checkpoint import load_checkpoint
        from repro.bench.harness import analysis_setups

        assert len(load_checkpoint(path)) == len(
            analysis_setups(bench, "typestate")
        )


class TestEvaluateManyResilience:
    def test_kill_in_one_benchmark_spares_the_rest(self):
        from repro.bench.parallel import evaluate_many

        instances = {name: prepare(name) for name in ("tsp", "elevator")}
        serial = evaluate_many(
            instances, ("typestate",), CONFIG, jobs=1
        )
        plan = FaultPlan(
            [FaultRule("unit:elevator:typestate:0", "kill", attempt=0)]
        )
        faulted = evaluate_many(
            instances,
            ("typestate",),
            CONFIG,
            jobs=2,
            options=RunOptions(retry=FAST_RETRY, fault_plan=plan),
        )
        for name in serial:
            assert keys(faulted[name]["typestate"]) == keys(
                serial[name]["typestate"]
            )
        assert faulted["elevator"]["typestate"].failed_units == ()
