"""Durability and protocol tests for the lease log and the clause bus.

Mirrors the crash matrix of ``tests/serve/test_store_lifecycle.py``:
torn tails are crash artifacts (skipped, then truncated before the
next append), interior corruption and checksum mismatches are data
loss (loud failures), and two handles interleaving through the flock
see each other's appends.  On top of that, the lease-specific
semantics: heartbeat-based liveness, steal vs retry, first-completion
-wins dedup with fingerprint assertion, and the structural verifier.
"""

import json

import pytest

from repro.robust.clausebus import BUS_VERSION, ClauseBus, ClauseFeed, load_bus_records
from repro.robust.leases import (
    LeaseConsistencyError,
    LeaseCorruption,
    LeaseLog,
    LeaseWatcher,
    lease_summary,
    load_lease_records,
    payload_fingerprint,
    record_checksum,
    verify_lease_log,
)

TASKS = [("bench", "typestate", 0, gi) for gi in range(3)]
TTL = 10.0


def _log(tmp_path, worker="w1", fresh=False):
    return LeaseLog(str(tmp_path / "run.leases"), worker=worker, fresh=fresh)


class TestLeaseLogLifecycle:
    def test_fresh_log_has_header(self, tmp_path):
        log = _log(tmp_path)
        records = load_lease_records(log.path)
        assert [r["type"] for r in records] == ["lease_header"]
        assert records[0]["version"] == 1

    def test_claim_complete_roundtrip(self, tmp_path):
        log = _log(tmp_path)
        claim = log.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        assert claim.task == TASKS[0]
        assert claim.attempt == 1
        assert claim.stolen_from is None
        log.complete(claim.task, claim.attempt, {"value": 1}, "fp-1")
        payloads = log.completed_payloads()
        assert payloads == {TASKS[0]: {"value": 1}}
        # The next claim moves on to the second task.
        assert log.claim_next(TASKS, TTL, max_attempts=3, now=0.0).task == TASKS[1]

    def test_two_handles_interleave(self, tmp_path):
        a = _log(tmp_path, worker="a")
        b = LeaseLog(a.path, worker="b")
        first = a.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        second = b.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        # b synced a's claim through the flock and skipped its task.
        assert first.task == TASKS[0]
        assert second.task == TASKS[1]
        a.complete(first.task, first.attempt, {"v": "a"}, "fa")
        assert b.completed_payloads()[TASKS[0]] == {"v": "a"}

    def test_fresh_flag_truncates_previous_run(self, tmp_path):
        log = _log(tmp_path)
        claim = log.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        log.complete(claim.task, claim.attempt, {"v": 1}, "fp")
        again = _log(tmp_path, worker="w2", fresh=True)
        assert again.completed_payloads() == {}
        assert [r["type"] for r in load_lease_records(again.path)] == [
            "lease_header"
        ]

    def test_torn_tail_skipped_then_truncated_on_append(self, tmp_path):
        log = _log(tmp_path)
        log.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        with open(log.path, "a") as handle:
            handle.write('{"type": "complete", "task"')  # killed mid-write
        # A reader skips the torn tail...
        records = load_lease_records(log.path)
        assert [r["type"] for r in records] == ["lease_header", "claim"]
        # ...and the next append truncates it rather than concatenating.
        other = LeaseLog(log.path, worker="w2")
        other.heartbeat(now=1.0)
        records = load_lease_records(log.path)
        assert [r["type"] for r in records] == [
            "lease_header", "claim", "heartbeat",
        ]

    def test_interior_corruption_raises(self, tmp_path):
        log = _log(tmp_path)
        log.heartbeat(now=1.0)
        lines = open(log.path).read().splitlines()
        lines[0] = "not json"
        with open(log.path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(LeaseCorruption):
            load_lease_records(log.path)

    def test_checksum_mismatch_raises(self, tmp_path):
        log = _log(tmp_path)
        log.heartbeat(now=1.0)
        lines = open(log.path).read().splitlines()
        beat = json.loads(lines[-1])
        beat["t"] = 99.0  # tampered field, stale checksum
        lines[-1] = json.dumps(beat, sort_keys=True)
        with open(log.path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(LeaseCorruption):
            load_lease_records(log.path)

    def test_checksum_excludes_itself(self):
        record = {"type": "heartbeat", "worker": "w", "t": 1.0}
        digest = record_checksum(record)
        assert record_checksum(dict(record, sha256=digest)) == digest


class TestLeaseProtocol:
    def test_voluntary_release_is_retry_not_steal(self, tmp_path):
        a = _log(tmp_path, worker="a")
        claim = a.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        a.release(claim.task, claim.attempt, error="boom")
        b = LeaseLog(a.path, worker="b")
        again = b.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        assert again.task == TASKS[0]
        assert again.attempt == 2
        assert again.stolen_from is None

    def test_expired_lease_is_stolen(self, tmp_path):
        a = _log(tmp_path, worker="a")
        a.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        b = LeaseLog(a.path, worker="b")
        # Within the TTL the lease is live: b gets the *next* task.
        assert b.claim_next(TASKS, TTL, max_attempts=3, now=1.0).task == TASKS[1]
        stolen = b.claim_next(TASKS, TTL, max_attempts=3, now=TTL + 1.0)
        assert stolen.task == TASKS[0]
        assert stolen.attempt == 2
        assert stolen.stolen_from == "a"

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        a = _log(tmp_path, worker="a")
        a.claim_next(TASKS[:1], TTL, max_attempts=3, now=0.0)
        a.heartbeat(now=TTL - 1.0)
        b = LeaseLog(a.path, worker="b")
        # Liveness dates from the last heartbeat, not the claim.
        assert b.claim_next(TASKS[:1], TTL, max_attempts=3, now=TTL + 5.0) is None
        assert (
            b.claim_next(TASKS[:1], TTL, max_attempts=3, now=2 * TTL).task
            == TASKS[0]
        )

    def test_parent_release_makes_next_claim_a_steal(self, tmp_path):
        a = _log(tmp_path, worker="a")
        claim = a.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        parent = LeaseLog(a.path, worker="parent")
        parent.release(claim.task, claim.attempt, error="worker died", by="parent")
        b = LeaseLog(a.path, worker="b")
        stolen = b.claim_next(TASKS, TTL, max_attempts=3, now=1.0)
        assert stolen.task == TASKS[0]
        assert stolen.stolen_from == "a"

    def test_first_completion_wins_and_duplicates_must_agree(self, tmp_path):
        a = _log(tmp_path, worker="a")
        b = LeaseLog(a.path, worker="b")
        ca = a.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        cb = b.claim_next(TASKS, TTL, max_attempts=3, now=TTL + 1.0)
        assert cb.stolen_from == "a"
        assert b.complete(cb.task, cb.attempt, {"v": 1}, "same") is True
        # The original holder finishes late: dedup, not a second record.
        assert a.complete(ca.task, ca.attempt, {"v": 1}, "same") is False
        assert a.duplicates == 1
        assert len(a.completed_payloads()) == 1
        # A *disagreeing* duplicate is determinism breakage.
        with pytest.raises(LeaseConsistencyError):
            a.complete(ca.task, ca.attempt, {"v": 2}, "different")

    def test_max_attempts_exhausted_is_failed(self, tmp_path):
        log = _log(tmp_path)
        for _ in range(2):
            claim = log.claim_next(TASKS[:1], TTL, max_attempts=2, now=0.0)
            log.release(claim.task, claim.attempt, error="boom")
        assert log.claim_next(TASKS[:1], TTL, max_attempts=2, now=0.0) is None
        statuses = log.snapshot(TASKS[:1], TTL, max_attempts=2, now=0.0)
        assert statuses[TASKS[0]] == "failed"
        assert log.last_error(TASKS[0]) == "boom"

    def test_watcher_polls_incrementally(self, tmp_path):
        log = _log(tmp_path)
        watcher = LeaseWatcher(log.path)
        assert [r["type"] for r in watcher.poll()] == ["lease_header"]
        log.heartbeat(now=1.0)
        assert [r["type"] for r in watcher.poll()] == ["heartbeat"]
        assert watcher.poll() == []

    def test_payload_fingerprint_ignores_volatile_keys(self):
        a = {"records": [1, 2], "metrics": {"x": 1}, "events": ["e"]}
        b = {"records": [1, 2], "metrics": {"x": 9}, "events": []}
        volatile = ("metrics", "events")
        assert payload_fingerprint(a, volatile) == payload_fingerprint(b, volatile)
        c = {"records": [1, 3], "metrics": {"x": 1}, "events": ["e"]}
        assert payload_fingerprint(a, volatile) != payload_fingerprint(c, volatile)


class TestVerifyLeaseLog:
    def test_healthy_log(self, tmp_path):
        log = _log(tmp_path)
        claim = log.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        log.complete(claim.task, claim.attempt, {"v": 1}, "fp")
        problems, summary = verify_lease_log(log.path)
        assert problems == []
        assert summary["counters"]["claims"] == 1
        assert summary["counters"]["completions"] == 1
        assert summary["by_status"] == {"complete": 1}

    def test_completion_without_claim_is_a_problem(self, tmp_path):
        log = _log(tmp_path)
        log.complete(TASKS[0], 1, {"v": 1}, "fp")
        problems, _summary = verify_lease_log(log.path)
        assert any("without a matching claim" in p for p in problems)

    def test_missing_header_is_a_problem(self, tmp_path):
        path = tmp_path / "empty.leases"
        path.write_text("")
        problems, _summary = verify_lease_log(str(path))
        assert problems

    def test_summary_marks_expired_leases(self, tmp_path):
        log = _log(tmp_path)
        log.claim_next(TASKS, TTL, max_attempts=3, now=0.0)
        summary = lease_summary(
            load_lease_records(log.path), ttl=TTL, now=TTL + 1.0
        )
        assert summary["by_status"] == {"expired": 1}


class TestClauseBus:
    def test_publish_fetch_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.bus")
        bus = ClauseBus(path, worker="w1")
        record = {"round": 1, "queries": ["q1"], "outcome": "ok"}
        assert bus.publish("scope", 1, ["q1"], record) is True
        # Duplicate publication is dropped (first wins).
        assert bus.publish("scope", 1, ["q1"], record) is False
        other = ClauseBus(path, worker="w2")
        assert other.fetch("scope", 1, ["q1"]) == record
        assert other.fetch("scope", 2, ["q1"]) is None
        assert other.fetch("other", 1, ["q1"]) is None
        assert [r["type"] for r in load_bus_records(path)] == [
            "bus_header", "round",
        ]
        assert load_bus_records(path)[0]["version"] == BUS_VERSION

    def test_torn_tail_tolerated_and_truncated(self, tmp_path):
        path = str(tmp_path / "run.bus")
        bus = ClauseBus(path, worker="w1")
        bus.publish("s", 1, ["q"], {"round": 1})
        with open(path, "a") as handle:
            handle.write('{"type": "round", "scope"')
        other = ClauseBus(path, worker="w2")
        assert other.fetch("s", 1, ["q"]) == {"round": 1}
        other.publish("s", 2, ["q"], {"round": 2})
        assert [r["type"] for r in load_bus_records(path)] == [
            "bus_header", "round", "round",
        ]

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "run.bus")
        bus = ClauseBus(path, worker="w1")
        bus.publish("s", 1, ["q"], {"round": 1})
        lines = open(path).read().splitlines()
        lines[0] = "garbage"
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises((LeaseCorruption, ValueError)):
            load_bus_records(path)

    def test_checksum_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "run.bus")
        bus = ClauseBus(path, worker="w1")
        bus.publish("s", 1, ["q"], {"round": 1})
        lines = open(path).read().splitlines()
        entry = json.loads(lines[-1])
        entry["worker"] = "forged"
        lines[-1] = json.dumps(entry, sort_keys=True)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(LeaseCorruption):
            load_bus_records(path)

    def test_unwritable_bus_disables_not_raises(self, tmp_path):
        # A directory is not a writable log: the bus goes best-effort
        # dead instead of failing the evaluation.
        bus = ClauseBus(str(tmp_path), worker="w1")
        assert bus.disabled
        assert bus.publish("s", 1, ["q"], {"round": 1}) is False
        assert bus.dropped == 1
        assert bus.fetch("s", 1, ["q"]) is None

    def test_feed_publishes_only_ok_rounds(self, tmp_path):
        path = str(tmp_path / "run.bus")
        feed = ClauseFeed(ClauseBus(path, worker="w1"), scope="t1")
        feed.publish({"round": 1, "queries": ["q"], "outcome": "budget"})
        feed.publish({"round": 2, "queries": ["q"], "outcome": "ok"})
        assert feed.published == 1
        sibling = ClauseFeed(ClauseBus(path, worker="w2"), scope="t1")
        assert sibling.drain(1, ["q"]) is None
        assert sibling.drain(2, ["q"]) == {
            "round": 2, "queries": ["q"], "outcome": "ok",
        }
        assert sibling.imported == 1
        # A different scope never sees it: rounds are per task.
        assert ClauseFeed(
            ClauseBus(path, worker="w3"), scope="t2"
        ).drain(2, ["q"]) is None
