"""Behavioral tests for the lease-based work-stealing scheduler.

Each test drives :func:`repro.robust.scheduler.run_leased` with a
cheap synthetic ``execute`` (no TRACER workload) so the scheduler's
fault paths — retry, steal-on-kill, steal-on-hang, respawn, resume —
are exercised in seconds.  The merge-order property test at the bottom
is the determinism half of the contract: group payloads completing in
any order assemble into the same :class:`EvalResult` export.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.export import record_to_dict, results_to_dict
from repro.bench.parallel import _merge, _payload_result
from repro.core.stats import CacheCounters, QueryRecord, QueryStatus
from repro.robust.faults import FaultPlan
from repro.robust.scheduler import run_leased

TASKS = [("bench", "typestate", 0, gi) for gi in range(4)]


def _ok(task):
    payload = {"task": list(task), "value": task[3] * 10}
    return payload, f"fp-{task[3]}"


def _lease_path(tmp_path):
    return str(tmp_path / "run.leases")


class TestRunLeased:
    def test_two_workers_complete_all_tasks(self, tmp_path):
        result = run_leased(
            TASKS, _ok, _lease_path(tmp_path), workers=2,
            heartbeat_interval=0.05, lease_ttl=2.0,
        )
        assert result.failed == {}
        assert sorted(result.payloads) == sorted(TASKS)
        assert result.payloads[TASKS[2]] == {
            "task": list(TASKS[2]), "value": 20,
        }
        assert result.stats["claims"] == len(TASKS)
        assert result.stats["steals"] == 0

    def test_raised_task_is_retried(self, tmp_path):
        # attempt=0 pins the rule to each task's *first* attempt (the
        # plan's hit counters reset per task), so every task fails once
        # and succeeds on retry.
        plan = FaultPlan.from_specs(["scheduler.task:raise:attempt=0"])
        result = run_leased(
            TASKS, _ok, _lease_path(tmp_path), workers=2,
            heartbeat_interval=0.05, lease_ttl=2.0, fault_plan=plan,
        )
        assert result.failed == {}
        assert sorted(result.payloads) == sorted(TASKS)
        assert all(result.attempts[task] == 2 for task in TASKS)

    def test_killed_worker_leases_are_stolen(self, tmp_path):
        # Worker 0 SIGKILLs itself on its first claimed task; the
        # parent force-releases the orphaned lease and worker 1 steals
        # it without waiting out the TTL.
        result = run_leased(
            TASKS, _ok, _lease_path(tmp_path), workers=2,
            heartbeat_interval=0.05, lease_ttl=5.0,
            worker_faults=(("scheduler.task:kill:at=1",), None),
        )
        assert result.failed == {}
        assert sorted(result.payloads) == sorted(TASKS)
        assert result.stats["steals"] >= 1
        assert result.stats["expiries"] >= 1

    def test_hung_worker_lease_expires_and_is_stolen(self, tmp_path):
        # Worker 0 goes silent (alive, no heartbeats) holding a lease;
        # the TTL expires under it and worker 1 reclaims.
        result = run_leased(
            TASKS, _ok, _lease_path(tmp_path), workers=2,
            heartbeat_interval=0.1, lease_ttl=0.6, poll_interval=0.02,
            worker_faults=(("scheduler.hang:corrupt:at=1",), None),
        )
        assert result.failed == {}
        assert sorted(result.payloads) == sorted(TASKS)
        assert result.stats["steals"] >= 1

    def test_respawn_when_every_worker_dies(self, tmp_path):
        # The only worker kills itself on its first claim; the parent
        # notices no live workers with work remaining and brings up a
        # clean replacement (chaos plans are not reinstalled).
        result = run_leased(
            TASKS, _ok, _lease_path(tmp_path), workers=1,
            heartbeat_interval=0.05, lease_ttl=1.0, poll_interval=0.02,
            worker_faults=(("scheduler.task:kill:at=1",),),
        )
        assert result.failed == {}
        assert sorted(result.payloads) == sorted(TASKS)
        assert result.stats["respawns"] >= 1

    def test_resume_skips_durably_completed_tasks(self, tmp_path):
        lease_path = _lease_path(tmp_path)
        first = run_leased(
            TASKS, _ok, lease_path, workers=2,
            heartbeat_interval=0.05, lease_ttl=2.0,
        )
        assert first.failed == {}

        marker = tmp_path / "executed"

        def poisoned(task):
            # Any execution on resume is a durability bug; leave
            # forensic evidence (workers are forked processes).
            with open(marker, "a") as handle:
                handle.write(f"{task}\n")
            raise AssertionError(f"re-executed completed task {task!r}")

        second = run_leased(
            TASKS, poisoned, lease_path, workers=2, resume=True,
            heartbeat_interval=0.05, lease_ttl=2.0,
        )
        assert second.failed == {}
        assert second.resumed == len(TASKS)
        assert second.payloads == first.payloads
        assert not marker.exists()

    def test_resume_runs_only_the_missing_tasks(self, tmp_path):
        lease_path = _lease_path(tmp_path)
        flaky = TASKS[2]

        def fails_one(task):
            if task == flaky:
                raise RuntimeError("injected: group keeps failing")
            return _ok(task)

        first = run_leased(
            TASKS, fails_one, lease_path, workers=2, max_attempts=2,
            heartbeat_interval=0.05, lease_ttl=2.0,
        )
        assert set(first.failed) == {flaky}
        assert first.attempts[flaky] == 2
        assert "injected" in first.failed[flaky]

        executed = tmp_path / "resumed-executions"

        def recovered(task):
            with open(executed, "a") as handle:
                handle.write(json.dumps(list(task)) + "\n")
            return _ok(task)

        second = run_leased(
            TASKS, recovered, lease_path, workers=2, resume=True,
            max_attempts=2, heartbeat_interval=0.05, lease_ttl=2.0,
        )
        assert second.failed == {}
        assert sorted(second.payloads) == sorted(TASKS)
        # Only the group that never completed durably was re-solved.
        reruns = [
            tuple(json.loads(line))
            for line in executed.read_text().splitlines()
        ]
        assert reruns == [flaky]

    def test_duplicate_completion_must_be_bit_identical(self, tmp_path):
        # The at-least-once safety net: if two attempts of one task
        # ever produce semantically different payloads, the scheduler
        # refuses rather than picking one.  (Driven at the LeaseLog
        # level in test_leases.py; here we check the worker surfaces
        # it as a failure instead of a silent pick.)
        from repro.robust.leases import LeaseConsistencyError, LeaseLog

        log = LeaseLog(_lease_path(tmp_path), worker="w1")
        claim = log.claim_next(TASKS, 5.0, max_attempts=3, now=0.0)
        log.complete(claim.task, claim.attempt, {"v": 1}, "fp-a")
        with pytest.raises(LeaseConsistencyError):
            log.complete(claim.task, claim.attempt, {"v": 2}, "fp-b")


def _record(query_id: str, n: int) -> QueryRecord:
    return QueryRecord(
        query_id=query_id,
        status=QueryStatus.PROVEN if n % 2 == 0 else QueryStatus.IMPOSSIBLE,
        iterations=n + 1,
        abstraction=(f"p{n}",),
        abstraction_cost=n,
        time_seconds=0.0,
        max_disjuncts=1 + n,
        forward_runs=n + 1,
        forward_cache_hits=n,
    )


def _group_payloads():
    """Four synthetic group payloads of one unit (two per group)."""
    payloads = {}
    for gi in range(4):
        records = [_record(f"q{gi * 2 + k}", gi * 2 + k) for k in range(2)]
        payloads[("bench", "typestate", 0, gi)] = {
            "task": ["bench", "typestate", 0, gi],
            "queries": [record.query_id for record in records],
            "records": [record_to_dict(record) for record in records],
            "metrics": {"forward_cache": {"hits": gi, "misses": 1}},
            "events": [],
            "certificates": [{"query": record.query_id} for record in records],
        }
    return payloads


@settings(max_examples=30, deadline=None)
@given(order=st.permutations(list(range(4))))
def test_merge_is_completion_order_independent(order):
    """Shuffling the order in which group payloads complete must not
    change the exported result: assembly reads payloads by task key in
    task order, never in completion order."""
    payloads = _group_payloads()
    task_order = sorted(payloads)  # the deterministic assembly order
    baseline_unit = _assemble(payloads, task_order)

    shuffled = {}
    for index in order:
        task = task_order[index]
        shuffled[task] = payloads[task]  # dict insertion = completion order
    shuffled_unit = _assemble(shuffled, task_order)

    baseline = _merge("bench", "typestate", [baseline_unit], 1.0)
    reordered = _merge("bench", "typestate", [shuffled_unit], 1.0)
    exported = results_to_dict({"bench": {"typestate": baseline}})
    reexported = results_to_dict({"bench": {"typestate": reordered}})
    exported["meta"] = reexported["meta"] = {}
    assert exported == reexported


def _assemble(payloads, task_order):
    """The per-unit assembly loop of ``_run_leased``, distilled:
    concatenate group results in *task* order regardless of the
    payload dict's (completion) order."""
    records, metrics, certificates = [], {}, []
    for task in task_order:
        group_records, group_metrics, _events, group_certs = (
            _payload_result(payloads[task])
        )
        records.extend(group_records)
        for name, counters in group_metrics.items():
            metrics[name] = metrics.get(name, CacheCounters()) + counters
        certificates.extend(group_certs)
    return records, metrics, [], certificates
