"""Tests for the context-sensitive inliner."""

import pytest

from repro.frontend import (
    ClassDef,
    FrontProgram,
    MethodDef,
    SApiCall,
    SAssign,
    SCall,
    SIf,
    SLoadField,
    SNew,
    SReturn,
    SStoreField,
    SThreadStart,
    SWhile,
    inline_program,
)
from repro.frontend.inline import query_var_for
from repro.lang import (
    Assign,
    AssignNull,
    Invoke,
    LoadField,
    New,
    Observe,
    ThreadStart,
    atoms_of,
)


def _simple_call_program():
    program = FrontProgram()
    program.add_class(
        ClassDef(
            name="Main",
            methods={
                "main": MethodDef(
                    name="main",
                    body=[
                        SNew("a", "A"),
                        SCall(lhs="r", base="a", method="id", args=("a",)),
                    ],
                )
            },
        )
    )
    program.add_class(
        ClassDef(
            name="A",
            methods={
                "id": MethodDef(name="id", params=("v",), body=[SReturn("v")])
            },
        )
    )
    return program


class TestCallInlining:
    def test_parameters_become_assignments(self):
        result = inline_program(_simple_call_program())
        atoms = list(atoms_of(result.program))
        # this and v are bound by copies, and the return flows to r.
        assigns = [a for a in atoms if isinstance(a, Assign)]
        assert any(a.lhs.startswith("this_") for a in assigns)
        assert any(a.lhs.startswith("v_") for a in assigns)
        assert any(a.lhs.startswith("r_") for a in assigns)

    def test_invoke_marker_with_pc(self):
        result = inline_program(_simple_call_program())
        invokes = [a for a in atoms_of(result.program) if isinstance(a, Invoke)]
        assert len(invokes) == 1
        assert invokes[0].method == "id"
        assert invokes[0].site_label == "Main.main/1"

    def test_observe_emitted_before_call(self):
        result = inline_program(_simple_call_program())
        atoms = list(atoms_of(result.program))
        observe_at = atoms.index(Observe("Main.main/1"))
        assert isinstance(atoms[observe_at + 1], Invoke)

    def test_call_point_recorded(self):
        result = inline_program(_simple_call_program())
        assert result.call_points["Main.main/1"] == ("Main", "main", "a", "id")

    def test_void_call_without_lhs(self):
        program = _simple_call_program()
        program.classes["Main"].methods["main"].body[1] = SCall(
            lhs=None, base="a", method="id", args=("a",)
        )
        result = inline_program(program)
        atoms = list(atoms_of(result.program))
        assert not any(isinstance(a, Assign) and a.lhs.startswith("r_") for a in atoms)

    def test_distinct_contexts_get_distinct_names(self):
        program = _simple_call_program()
        program.classes["Main"].methods["main"].body.append(
            SCall(lhs="s", base="a", method="id", args=("a",))
        )
        result = inline_program(program)
        v_copies = {v for v in result.variables if v.startswith("v_")}
        assert len(v_copies) == 2

    def test_no_target_call_yields_null(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[SCall(lhs="r", base="ghost", method="m")],
                    )
                },
            )
        )
        result = inline_program(program)
        atoms = list(atoms_of(result.program))
        assert any(isinstance(a, AssignNull) and a.lhs.startswith("r_") for a in atoms)


class TestRecursionCut:
    def test_self_recursion_cut(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[
                            SNew("a", "Main"),
                            SCall(lhs=None, base="a", method="loop"),
                        ],
                    ),
                    "loop": MethodDef(
                        name="loop",
                        body=[SCall(lhs=None, base="this", method="loop")],
                    ),
                },
            )
        )
        result = inline_program(program)
        assert result.recursion_cuts >= 1


class TestQueryPlumbing:
    def test_field_access_gets_query_var(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Main",
                fields=("f",),
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[
                            SNew("a", "Main"),
                            SLoadField("x", "a", "f"),
                        ],
                    )
                },
            )
        )
        result = inline_program(program)
        pc = "Main.main/1"
        qvar = query_var_for(pc)
        assert result.access_points[pc][3] == qvar
        atoms = list(atoms_of(result.program))
        copy_at = atoms.index(Assign(qvar, "a_c0"))
        assert atoms[copy_at + 1] == Observe(pc)
        assert isinstance(atoms[copy_at + 2], LoadField)

    def test_library_accesses_generate_no_queries(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[
                            SNew("a", "Lib"),
                            SCall(lhs=None, base="a", method="go"),
                        ],
                    )
                },
            )
        )
        program.add_class(
            ClassDef(
                name="Lib",
                fields=("f",),
                is_library=True,
                methods={
                    "go": MethodDef(
                        name="go", body=[SStoreField("this", "f", "this")]
                    )
                },
            )
        )
        result = inline_program(program)
        assert not result.access_points
        # The call in app code is still a type-state query candidate.
        assert "Main.main/1" in result.call_points

    def test_api_call_is_event_only(self):
        program = FrontProgram()
        program.add_class(ClassDef(name="File", is_library=True))
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[SNew("f", "File"), SApiCall("f", "open")],
                    )
                },
            )
        )
        result = inline_program(program)
        invokes = [a for a in atoms_of(result.program) if isinstance(a, Invoke)]
        assert invokes == [Invoke("f_c0", "open", "Main.main/1")]


class TestThreadStartLowering:
    def test_thread_start_then_run_body(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[SNew("w", "Worker"), SThreadStart("w")],
                    )
                },
            )
        )
        program.add_class(
            ClassDef(
                name="Worker",
                methods={"run": MethodDef(name="run", body=[SNew("l", "Worker")])},
            )
        )
        result = inline_program(program)
        atoms = list(atoms_of(result.program))
        start_at = atoms.index(ThreadStart("w_c0"))
        rest = atoms[start_at + 1 :]
        assert any(isinstance(a, Assign) and a.lhs.startswith("this_") for a in rest)
        assert any(isinstance(a, New) and a.lhs.startswith("l_") for a in rest)


class TestControlFlow:
    def test_if_and_while_lowered(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[
                            SNew("a", "Main"),
                            SIf(then=[SAssign("b", "a")], els=[SAssign("b", "b")]),
                            SWhile(body=[SAssign("c", "a")]),
                        ],
                    )
                },
            )
        )
        result = inline_program(program)
        from repro.lang import Choice, Star, Seq

        def find(node, kind):
            if isinstance(node, kind):
                return True
            if isinstance(node, Seq):
                return find(node.first, kind) or find(node.second, kind)
            if isinstance(node, Choice):
                return find(node.left, kind) or find(node.right, kind)
            if isinstance(node, Star):
                return find(node.body, kind)
            return False

        assert find(result.program, Choice)
        assert find(result.program, Star)

    def test_command_count_matches_atoms(self):
        result = inline_program(_simple_call_program())
        assert result.command_count == len(list(atoms_of(result.program)))
