"""Tests for procedure-level lowering and the interprocedural mode.

The headline property: for the (non-recursive) benchmark suite, the
thread-escape TRACER results under the tabulation engine match the
results under context-cloning inlining — same statuses, same cheapest
costs.  Recursive programs, which the inliner cuts, are additionally
resolved soundly.
"""

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.escape import EscSchema, EscapeClient, EscapeQuery
from repro.frontend import (
    ClassDef,
    FrontProgram,
    MethodDef,
    SAssign,
    SCall,
    SLoadField,
    SNew,
    SReturn,
    SStoreField,
    SStoreGlobal,
    build_callgraph,
)
from repro.frontend.procedures import lower_procedures, proc_name
from repro.lang.ast import CallProc, atoms_of


def _escape_client(proc_result):
    schema = EscSchema(
        sorted(proc_result.variables | proc_result.query_vars),
        sorted(proc_result.fields),
    )
    return EscapeClient(proc_result.graph, schema, proc_result.sites)


class TestLowering:
    def test_benchmark_lowers_and_validates(self):
        from repro.bench.suite import benchmark

        front = benchmark("tsp")
        result = lower_procedures(front)
        assert proc_name("Main", "main") == result.graph.main
        assert result.variables
        assert not result.recursive_procs  # suite call graphs are layered

    def test_calls_stay_calls(self):
        from repro.bench.suite import benchmark

        front = benchmark("elevator")
        result = lower_procedures(front)
        has_call = any(
            isinstance(edge.command, CallProc)
            for cfg in result.graph.procedures.values()
            for edge in cfg.edges
        )
        assert has_call

    def test_query_points_match_inliner(self):
        from repro.bench.suite import benchmark
        from repro.frontend.inline import inline_program

        front = benchmark("hedc")
        callgraph = build_callgraph(front)
        inlined = inline_program(front, callgraph)
        procs = lower_procedures(front, callgraph)
        assert set(procs.access_points) == set(inlined.access_points)
        assert set(procs.call_points) == set(inlined.call_points)


class TestEscapeEquivalence:
    @pytest.mark.parametrize("name", ["tsp", "elevator", "hedc"])
    def test_tracer_results_match_inlined_mode(self, name):
        from repro.bench.harness import escape_setup, prepare

        bench = prepare(name)
        inlined_client, queries = escape_setup(bench)
        procs = lower_procedures(bench.front, bench.callgraph)
        proc_client = _escape_client(procs)
        config = TracerConfig(k=5, max_iterations=40)
        inlined_records = Tracer(inlined_client, config).solve_all(queries)
        proc_queries = [
            EscapeQuery(pc, qvar)
            for pc, (_c, _m, _b, qvar) in sorted(procs.access_points.items())
        ]
        proc_records = Tracer(proc_client, config).solve_all(proc_queries)
        by_pc_inlined = {q.label: inlined_records[q] for q in queries}
        by_pc_proc = {q.label: proc_records[q] for q in proc_queries}
        assert set(by_pc_inlined) == set(by_pc_proc)
        for pc in by_pc_inlined:
            a, b = by_pc_inlined[pc], by_pc_proc[pc]
            assert a.status == b.status, pc
            assert a.abstraction_cost == b.abstraction_cost, pc


class TestRecursion:
    def _recursive_program(self):
        """build(n) recursively builds a linked chain, then main reads
        a field of the head — inlining would cut this, tabulation
        analyses it."""
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Node",
                fields=("next",),
                methods={
                    "grow": MethodDef(
                        name="grow",
                        body=[
                            SNew("child", "Node"),
                            SStoreField("this", "next", "child"),
                            SCall(lhs=None, base="child", method="grow"),
                            SReturn("child"),
                        ],
                    )
                },
            )
        )
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[
                            SNew("head", "Node"),
                            SCall(lhs=None, base="head", method="grow"),
                            SLoadField("tail", "head", "next"),
                        ],
                    )
                },
            )
        )
        return program.finalize()

    def test_recursive_proc_detected(self):
        result = lower_procedures(self._recursive_program())
        assert proc_name("Node", "grow") in result.recursive_procs

    def test_tabulation_resolves_recursive_query(self):
        result = lower_procedures(self._recursive_program())
        client = _escape_client(result)
        (pc, (_c, _m, _b, qvar)) = sorted(result.access_points.items())[0]
        record = Tracer(client, TracerConfig(k=5, max_iterations=40)).solve(
            EscapeQuery(pc, qvar)
        )
        # The chain never escapes: provable with Node's site local.
        assert record.status is QueryStatus.PROVEN

    def test_recursion_with_publication_is_impossible(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Node",
                fields=("next",),
                methods={
                    "grow": MethodDef(
                        name="grow",
                        body=[
                            SNew("child", "Node"),
                            SStoreGlobal("shared", "child"),
                            SCall(lhs=None, base="child", method="grow"),
                        ],
                    )
                },
            )
        )
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[
                            SNew("head", "Node"),
                            SCall(lhs=None, base="head", method="grow"),
                            SLoadField("t", "head", "next"),
                        ],
                    )
                },
            )
        )
        program.finalize()
        result = lower_procedures(program)
        client = _escape_client(result)
        (pc, (_c, _m, _b, qvar)) = sorted(result.access_points.items())[0]
        record = Tracer(client, TracerConfig(k=5, max_iterations=40)).solve(
            EscapeQuery(pc, qvar)
        )
        # grow publishes every node: head's field access sees E... but
        # head itself is the query var's source and head escapes via
        # the recursive publication of the whole L-summary.
        assert record.status in (QueryStatus.IMPOSSIBLE, QueryStatus.PROVEN)
        # Soundness check: if proven, the claimed abstraction really works.
        if record.status is QueryStatus.PROVEN:
            query = EscapeQuery(pc, qvar)
            assert client.counterexamples([query], record.abstraction)[query] is None
