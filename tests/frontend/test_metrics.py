"""Tests for the Table 1 program metrics."""

from repro.frontend import (
    ClassDef,
    FrontProgram,
    MethodDef,
    SCall,
    SNew,
    compute_metrics,
)


def _program():
    program = FrontProgram()
    program.add_class(
        ClassDef(
            name="Main",
            methods={
                "main": MethodDef(
                    name="main",
                    body=[SNew("a", "Lib"), SCall(None, "a", "go")],
                ),
                "orphan": MethodDef(name="orphan", body=[SNew("z", "Main")]),
            },
        )
    )
    program.add_class(
        ClassDef(
            name="Lib",
            is_library=True,
            methods={"go": MethodDef(name="go", body=[SNew("t", "Lib")])},
        )
    )
    return program


class TestMetrics:
    def test_app_vs_total_counts(self):
        metrics = compute_metrics("m", _program())
        assert metrics.app_classes == 1
        assert metrics.total_classes == 2
        assert metrics.app_methods == 2
        assert metrics.total_methods == 3

    def test_statement_counts(self):
        metrics = compute_metrics("m", _program())
        assert metrics.app_statements == 3
        assert metrics.total_statements == 4

    def test_reachable_excludes_orphan(self):
        metrics = compute_metrics("m", _program())
        assert metrics.reachable_methods == 2  # main + Lib.go

    def test_escape_abstractions_count_reachable_sites_only(self):
        metrics = compute_metrics("m", _program())
        # orphan's allocation is unreachable.
        assert metrics.escape_log2_abstractions == 2

    def test_typestate_abstractions_count_inlined_variables(self):
        metrics = compute_metrics("m", _program())
        assert metrics.typestate_log2_abstractions >= 2
