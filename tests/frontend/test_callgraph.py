"""Tests for the 0-CFA call-graph/points-to analysis."""

from repro.frontend import (
    ClassDef,
    FrontProgram,
    MethodDef,
    SAssign,
    SCall,
    SLoadField,
    SLoadGlobal,
    SNew,
    SReturn,
    SStoreField,
    SStoreGlobal,
    SThreadStart,
    build_callgraph,
)


def _two_class_program():
    """main allocates an A and a B, calls m() on a variable that may be
    either, so both A.m and B.m must be call-graph targets."""
    program = FrontProgram()
    program.add_class(
        ClassDef(
            name="Main",
            methods={
                "main": MethodDef(
                    name="main",
                    body=[
                        SNew("a", "A"),
                        SNew("b", "B"),
                        SAssign("x", "a"),
                        SAssign("x", "b"),
                        SCall(lhs="r", base="x", method="m"),
                    ],
                )
            },
        )
    )
    program.add_class(
        ClassDef(
            name="A",
            methods={
                "m": MethodDef(name="m", body=[SNew("t", "A"), SReturn("t")])
            },
        )
    )
    program.add_class(
        ClassDef(
            name="B",
            methods={"m": MethodDef(name="m", body=[SReturn(None)])},
        )
    )
    return program


class TestVirtualDispatch:
    def test_both_targets_resolved(self):
        program = _two_class_program()
        cg = build_callgraph(program)
        call_pc = "Main.main/4"
        assert cg.call_targets[call_pc] == frozenset({("A", "m"), ("B", "m")})

    def test_targets_become_reachable(self):
        cg = build_callgraph(_two_class_program())
        assert ("A", "m") in cg.reachable
        assert ("B", "m") in cg.reachable

    def test_this_bound_per_target_class(self):
        program = _two_class_program()
        cg = build_callgraph(program)
        a_site = next(s for s, c in program.site_class.items() if c == "A" and program.site_pc[s].startswith("Main"))
        assert cg.pts_var("A", "m", "this") == frozenset({a_site})

    def test_return_flows_to_lhs(self):
        program = _two_class_program()
        cg = build_callgraph(program)
        result = cg.pts_var("Main", "main", "r")
        # A.m returns a fresh A; B.m returns null.
        assert len(result) == 1

    def test_unreachable_method_not_processed(self):
        program = _two_class_program()
        program.classes["A"].methods["dead"] = MethodDef(
            name="dead", body=[SNew("z", "B")]
        )
        cg = build_callgraph(program)
        assert ("A", "dead") not in cg.reachable


class TestHeapFlow:
    def test_field_summary_round_trip(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Main",
                fields=("f",),
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[
                            SNew("box", "Main"),
                            SNew("val", "Main"),
                            SStoreField("box", "f", "val"),
                            SLoadField("out", "box", "f"),
                        ],
                    )
                },
            )
        )
        cg = build_callgraph(program)
        val_sites = cg.pts_var("Main", "main", "val")
        assert cg.pts_var("Main", "main", "out") == val_sites

    def test_global_round_trip(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[
                            SNew("v", "Main"),
                            SStoreGlobal("g", "v"),
                            SLoadGlobal("w", "g"),
                        ],
                    )
                },
            )
        )
        cg = build_callgraph(program)
        assert cg.pts_var("Main", "main", "w") == cg.pts_var("Main", "main", "v")


class TestThreadStart:
    def test_run_method_reachable(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(
                        name="main",
                        body=[SNew("w", "Worker"), SThreadStart("w")],
                    )
                },
            )
        )
        program.add_class(
            ClassDef(
                name="Worker",
                methods={"run": MethodDef(name="run", body=[SNew("l", "Worker")])},
            )
        )
        cg = build_callgraph(program)
        assert ("Worker", "run") in cg.reachable
        assert cg.pts_var("Worker", "run", "this") != frozenset()
