"""Tests for the mini-Java IR and its finalize pass."""

import pytest

from repro.frontend import (
    ClassDef,
    FrontProgram,
    FrontendError,
    MethodDef,
    SAssign,
    SIf,
    SNew,
    SReturn,
    SWhile,
)
from repro.frontend.program import walk_statements


def _program(main_body):
    program = FrontProgram()
    program.add_class(
        ClassDef(
            name="Main",
            methods={"main": MethodDef(name="main", body=main_body)},
        )
    )
    return program


class TestFinalize:
    def test_assigns_unique_sites(self):
        program = _program([SNew("a", "Main"), SNew("b", "Main")])
        program.finalize()
        sites = sorted(program.site_class)
        assert len(sites) == 2
        assert len(set(sites)) == 2

    def test_assigns_pc_labels(self):
        program = _program([SNew("a", "Main"), SAssign("b", "a")])
        program.finalize()
        pcs = [stmt.pc for stmt in walk_statements(program.entry().body)]
        assert pcs == ["Main.main/0", "Main.main/1"]

    def test_pc_labels_cover_nested_statements(self):
        inner = SAssign("x", "y")
        program = _program([SIf(then=[inner], els=[]), SWhile(body=[SAssign("z", "x")])])
        program.finalize()
        assert inner.pc == "Main.main/1"

    def test_rejects_unknown_allocation_class(self):
        program = _program([SNew("a", "Ghost")])
        with pytest.raises(FrontendError):
            program.finalize()

    def test_rejects_missing_entry(self):
        program = FrontProgram()
        program.add_class(ClassDef(name="Main"))
        with pytest.raises(FrontendError):
            program.finalize()

    def test_rejects_mid_body_return(self):
        program = _program([SReturn("a"), SAssign("b", "a")])
        with pytest.raises(FrontendError):
            program.finalize()

    def test_rejects_nested_return(self):
        program = _program([SIf(then=[SReturn("a")], els=[])])
        with pytest.raises(FrontendError):
            program.finalize()

    def test_rejects_duplicate_class(self):
        program = _program([])
        with pytest.raises(FrontendError):
            program.add_class(ClassDef(name="Main"))

    def test_finalize_is_idempotent(self):
        program = _program([SNew("a", "Main")])
        program.finalize()
        first = dict(program.site_class)
        program.finalize()
        assert program.site_class == first


class TestAppSites:
    def test_sites_in_library_code_excluded(self):
        program = FrontProgram()
        program.add_class(
            ClassDef(
                name="Main",
                methods={
                    "main": MethodDef(name="main", body=[SNew("a", "Lib")])
                },
            )
        )
        program.add_class(
            ClassDef(
                name="Lib",
                is_library=True,
                methods={"helper": MethodDef(name="helper", body=[SNew("b", "Lib")])},
            )
        )
        program.finalize()
        assert len(program.app_sites()) == 1
        assert len(program.site_class) == 2
