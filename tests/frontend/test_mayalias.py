"""Tests for the may-alias oracle over renamed variables."""

from repro.frontend import (
    ClassDef,
    FrontProgram,
    MayAliasOracle,
    MethodDef,
    SAssign,
    SNew,
    build_callgraph,
    inline_program,
)


def _setup():
    program = FrontProgram()
    program.add_class(
        ClassDef(
            name="Main",
            methods={
                "main": MethodDef(
                    name="main",
                    body=[
                        SNew("a", "Main"),
                        SNew("b", "Main"),
                        SAssign("c", "a"),
                    ],
                )
            },
        )
    )
    callgraph = build_callgraph(program)
    inlined = inline_program(program, callgraph)
    return program, callgraph, MayAliasOracle(callgraph, inlined.var_origin)


class TestOracle:
    def test_direct_allocation(self):
        program, _cg, oracle = _setup()
        site_a = next(
            s for s, pc in program.site_pc.items() if pc.endswith("/0")
        )
        assert oracle.may_point("a_c0", site_a)
        assert not oracle.may_point("b_c0", site_a)

    def test_copy_inherits_points_to(self):
        program, _cg, oracle = _setup()
        site_a = next(
            s for s, pc in program.site_pc.items() if pc.endswith("/0")
        )
        assert oracle.may_point("c_c0", site_a)

    def test_unknown_variable_points_nowhere(self):
        _program, _cg, oracle = _setup()
        assert oracle.points_to("ghost") == frozenset()

    def test_for_site_predicate(self):
        program, _cg, oracle = _setup()
        site_b = next(
            s for s, pc in program.site_pc.items() if pc.endswith("/1")
        )
        predicate = oracle.for_site(site_b)
        assert predicate("b_c0")
        assert not predicate("a_c0")
