"""Tests for the post-hoc trace summarizer."""

import pytest

from repro.obs.events import header
from repro.obs.summarize import (
    phase_durations,
    render_summary,
    summarize_trace,
    validate_trace,
)


def span_start(span_id, name, parent=None, t=0.0, phase=None, attrs=None):
    record = {
        "type": "span_start",
        "id": span_id,
        "parent": parent,
        "name": name,
        "t": t,
    }
    if phase is not None:
        record["phase"] = phase
    if attrs:
        record["attrs"] = attrs
    return record


def span_end(span_id, t):
    return {"type": "span_end", "id": span_id, "t": t}


class TestPhaseDurations:
    def test_flat_phased_spans(self):
        records = [
            header(),
            span_start(0, "forward_run", t=0.0, phase="forward"),
            span_end(0, t=2.0),
            span_start(1, "choose", t=2.0, phase="synthesis"),
            span_end(1, t=2.5),
        ]
        durations = phase_durations(records)
        assert durations["forward"] == pytest.approx(2.0)
        assert durations["synthesis"] == pytest.approx(0.5)
        assert durations["backward"] == 0.0

    def test_nested_phased_spans_count_once(self):
        # counterexamples [forward] wrapping forward_run [forward]:
        # the instant 0..3 must be attributed exactly once.
        records = [
            header(),
            span_start(0, "counterexamples", t=0.0, phase="forward"),
            span_start(1, "forward_run", parent=0, t=0.5, phase="forward"),
            span_end(1, t=2.5),
            span_end(0, t=3.0),
        ]
        assert phase_durations(records)["forward"] == pytest.approx(3.0)

    def test_unphased_parent_does_not_absorb(self):
        records = [
            header(),
            span_start(0, "iteration", t=0.0),
            span_start(1, "backward", parent=0, t=1.0, phase="backward"),
            span_end(1, t=4.0),
            span_end(0, t=5.0),
        ]
        durations = phase_durations(records)
        assert durations["backward"] == pytest.approx(3.0)
        assert sum(durations.values()) == pytest.approx(3.0)


class TestSummarize:
    def trace(self):
        return [
            header(),
            span_start(0, "query_group", t=0.0),
            span_start(1, "iteration", parent=0, t=0.0),
            span_start(2, "choose", parent=1, t=0.0, phase="synthesis"),
            span_end(2, t=0.1),
            span_start(3, "counterexamples", parent=1, t=0.1, phase="forward"),
            span_end(3, t=0.6),
            span_start(4, "backward", parent=1, t=0.6, phase="backward"),
            span_end(4, t=1.0),
            {
                "type": "event",
                "name": "query_resolved",
                "span": 1,
                "t": 1.0,
                "attrs": {
                    "query": "q",
                    "status": "proven",
                    "time_seconds": 1.0,
                },
            },
            span_end(1, t=1.0),
            span_end(0, t=1.0),
            {"type": "metric", "name": "wp_memo.a", "hits": 1, "misses": 1, "t": 1.0},
            {"type": "metric", "name": "wp_memo.a", "hits": 2, "misses": 0, "t": 1.0},
        ]

    def test_counts_and_phases(self):
        summary = summarize_trace(self.trace())
        assert summary.iterations == 1
        assert summary.span_counts["choose"] == 1
        assert summary.phase_seconds["forward"] == pytest.approx(0.5)
        assert summary.phase_total == pytest.approx(1.0)
        assert summary.query_time_total == pytest.approx(1.0)
        assert summary.coverage == pytest.approx(1.0)

    def test_metric_records_aggregate_by_name(self):
        summary = summarize_trace(self.trace())
        assert summary.metrics == [
            {"name": "wp_memo.a", "hits": 3, "misses": 1}
        ]

    def test_render_mentions_all_sections(self):
        text = render_summary(summarize_trace(self.trace()))
        assert "Per-phase wall-clock breakdown" in text
        assert "forward" in text and "backward" in text and "synthesis" in text
        assert "iterations: 1" in text
        assert "1 resolved (1 proven)" in text
        assert "phase coverage: 100.0%" in text
        assert "wp_memo.a" in text

    def test_validate_trace_accepts_it(self):
        assert validate_trace(self.trace()) == []

    def test_empty_trace_summary(self):
        summary = summarize_trace([header()])
        assert summary.coverage is None
        text = render_summary(summary)
        assert "iterations: 0" in text
