"""Tests for the bundled trace sinks."""

import io
import json

from repro.obs import trace as obs
from repro.obs.sinks import JsonlSink, MemorySink, MultiSink, NullSink, TtySink
from repro.obs.summarize import load_trace


class TestJsonl:
    def test_round_trips_through_load_trace(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with obs.tracing(JsonlSink(path)):
            with obs.span("outer", n=1):
                obs.event("ping")
        records = load_trace(path)
        assert records[0]["type"] == "trace_header"
        assert [r["type"] for r in records[1:]] == [
            "span_start",
            "event",
            "span_end",
        ]

    def test_writes_compact_lines(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        sink.emit({"type": "event", "name": "x", "t": 0.0})
        sink.close()
        with open(path) as handle:
            line = handle.readline().rstrip("\n")
        assert json.loads(line)["name"] == "x"
        assert ": " not in line  # compact separators

    def test_borrowed_handle_not_closed(self):
        handle = io.StringIO()
        sink = JsonlSink("<memory>", handle=handle)
        sink.emit({"type": "event", "name": "x", "t": 0.0})
        sink.close()
        assert not handle.closed  # caller owns it
        assert "x" in handle.getvalue()


class TestMulti:
    def test_fans_out_and_closes_all(self, tmp_path):
        memory = MemorySink()
        handle = io.StringIO()
        multi = MultiSink([memory, JsonlSink("<memory>", handle=handle)])
        multi.emit({"type": "event", "name": "x", "t": 0.0})
        multi.close()
        assert len(memory.events) == 1
        assert "x" in handle.getvalue()

    def test_null_sink_swallows(self):
        NullSink().emit({"type": "event"})
        NullSink().close()


class TestTty:
    def run_feed(self):
        stream = io.StringIO()
        with obs.tracing(TtySink(stream)):
            with obs.span("iteration", round=1, group_size=2) as span:
                span.set(abstraction_cost=1, proven=1, cached=True)
            obs.event(
                "query_resolved",
                query="q1",
                status="proven",
                iterations=3,
                time_seconds=0.25,
            )
        return stream.getvalue()

    def test_one_line_per_iteration_and_query(self):
        out = self.run_feed()
        lines = out.strip().splitlines()
        assert len(lines) == 2
        assert "iteration 1" in lines[0]
        assert "group=2" in lines[0]
        assert "cost=1" in lines[0]
        assert "cached" in lines[0]
        assert "query q1: PROVEN after 3 iterations" in lines[1]

    def test_ignores_unrelated_records(self):
        stream = io.StringIO()
        sink = TtySink(stream)
        sink.emit({"type": "metric", "name": "c", "hits": 0, "misses": 0, "t": 0.0})
        sink.emit({"type": "span_start", "id": 0, "name": "other", "t": 0.0})
        sink.emit({"type": "span_end", "id": 0, "t": 1.0})
        assert stream.getvalue() == ""
