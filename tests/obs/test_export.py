"""The Prometheus exporter round-trips (`repro.obs.export`)."""

from repro.obs.export import (
    histogram_from_samples,
    parse_prometheus,
    quantile_from_parsed,
    render_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    scoped_registry,
)


def build_registry():
    registry = MetricsRegistry()
    instruments = [
        Counter("repro_requests_total", "requests", labelnames=("op", "ok")),
        Gauge("repro_in_flight_requests", "in flight"),
        Histogram(
            "repro_request_seconds", "latency",
            buckets=(0.1, 1.0), labelnames=("op",),
        ),
    ]
    for instrument in instruments:
        registry.register_instrument(instrument)
    return registry, instruments


class TestRender:
    def test_counter_family(self):
        registry, (counter, _gauge, _hist) = build_registry()
        counter.inc(2, op="solve", ok="true")
        text = render_prometheus(registry)
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{ok="true",op="solve"} 2' in text

    def test_integer_values_render_without_decimal_point(self):
        registry, (counter, gauge, _hist) = build_registry()
        counter.inc(op="a", ok="true")
        gauge.set(2.0)
        text = render_prometheus(registry)
        assert 'repro_requests_total{ok="true",op="a"} 1\n' in text
        assert "repro_in_flight_requests 2\n" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry, (_c, _g, histogram) = build_registry()
        histogram.observe(0.05, op="solve")
        histogram.observe(0.5, op="solve")
        histogram.observe(5.0, op="solve")
        text = render_prometheus(registry)
        assert 'repro_request_seconds_bucket{le="0.1",op="solve"} 1' in text
        # integer-valued bounds render canonically without the ".0"
        assert 'repro_request_seconds_bucket{le="1",op="solve"} 2' in text
        assert 'repro_request_seconds_bucket{le="+Inf",op="solve"} 3' in text
        assert 'repro_request_seconds_count{op="solve"} 3' in text
        assert 'repro_request_seconds_sum{op="solve"} 5.55' in text

    def test_empty_instruments_render_zero_samples(self):
        registry, _instruments = build_registry()
        text = render_prometheus(registry)
        assert "repro_requests_total 0" in text
        assert 'repro_request_seconds_bucket{le="+Inf"} 0' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = Counter("c_total", labelnames=("path",))
        registry.register_instrument(counter)
        counter.inc(path='a"b\\c\nd')
        text = render_prometheus(registry)
        assert '{path="a\\"b\\\\c\\nd"}' in text
        # ... and the parser undoes the escaping exactly.
        ((labels, value),) = parse_prometheus(text)["c_total"]
        assert labels == {"path": 'a"b\\c\nd'}
        assert value == 1

    def test_cache_counters_exported_as_labeled_families(self):
        class FakeCache:
            hits = 7
            misses = 3

        cache = FakeCache()
        with scoped_registry() as registry:
            registry.register("forward_run", cache)
            text = render_prometheus(registry)
        assert 'repro_cache_hits_total{cache="forward_run"} 7' in text
        assert 'repro_cache_misses_total{cache="forward_run"} 3' in text

    def test_uses_ambient_registry_by_default(self):
        with scoped_registry() as registry:
            counter = Counter("ambient_total")
            registry.register_instrument(counter)
            counter.inc()
            assert "ambient_total 1" in render_prometheus()


class TestParse:
    def test_round_trip(self):
        registry, (counter, gauge, histogram) = build_registry()
        counter.inc(4, op="solve", ok="true")
        gauge.set(2)
        histogram.observe(0.5, op="solve")
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["repro_requests_total"] == [
            ({"ok": "true", "op": "solve"}, 4)
        ]
        assert parsed["repro_in_flight_requests"] == [({}, 2)]
        assert ({"op": "solve"}, 1) in parsed["repro_request_seconds_count"]

    def test_inf_bucket_parses(self):
        parsed = parse_prometheus('h_bucket{le="+Inf"} 3\n')
        ((labels, value),) = parsed["h_bucket"]
        assert labels["le"] == "+Inf"
        assert value == 3

    def test_histogram_from_samples_decumulates(self):
        registry, (_c, _g, histogram) = build_registry()
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value, op="solve")
        parsed = parse_prometheus(render_prometheus(registry))
        bounds, counts, count, total = histogram_from_samples(
            parsed, "repro_request_seconds", op="solve"
        )
        assert bounds == [0.1, 1.0]
        assert counts == [1, 2, 1]  # per-bucket again, not cumulative
        assert count == 4
        assert abs(total - 6.05) < 1e-9

    def test_quantile_from_parsed_matches_instrument(self):
        registry, (_c, _g, histogram) = build_registry()
        for _ in range(100):
            histogram.observe(0.5, op="solve")
        parsed = parse_prometheus(render_prometheus(registry))
        from_text = quantile_from_parsed(
            parsed, "repro_request_seconds", 0.5, op="solve"
        )
        assert from_text == histogram.quantile(0.5, op="solve")

    def test_quantile_from_parsed_missing_family_is_none(self):
        assert quantile_from_parsed({}, "nope", 0.5) is None
