"""Tests for the span/event tracing runtime (`repro.obs.trace`)."""

import pytest

from repro.obs import trace as obs
from repro.obs.events import SCHEMA_VERSION
from repro.obs.sinks import MemorySink


class TestInactive:
    def test_not_active_by_default(self):
        assert obs.active() is False
        assert obs.current() is None
        assert obs.detail_enabled() is False

    def test_span_returns_shared_noop_singleton(self):
        first = obs.span("a", phase="forward", anything=1)
        second = obs.span("b")
        assert first is second  # no per-call allocation on the hot path
        with first as handle:
            handle.set(ignored=True)  # must not raise

    def test_event_and_metric_are_noops(self):
        obs.event("nothing", x=1)
        obs.metric("cache", 1, 2)


class TestSpans:
    def test_header_then_well_nested_spans(self):
        sink = MemorySink()
        with obs.tracing(sink):
            with obs.span("outer", queries=2):
                with obs.span("inner", phase="forward"):
                    pass
        types = [r["type"] for r in sink.events]
        assert types == [
            "trace_header",
            "span_start",
            "span_start",
            "span_end",
            "span_end",
        ]
        assert sink.events[0]["schema"] == SCHEMA_VERSION
        outer, inner = sink.events[1], sink.events[2]
        assert outer["name"] == "outer" and outer["parent"] is None
        assert outer["attrs"] == {"queries": 2}
        assert inner["parent"] == outer["id"]
        assert inner["phase"] == "forward"
        # Ends come innermost-first.
        assert sink.events[3]["id"] == inner["id"]
        assert sink.events[4]["id"] == outer["id"]

    def test_set_attaches_attrs_to_span_end(self):
        sink = MemorySink()
        with obs.tracing(sink):
            with obs.span("work") as span:
                span.set(outcome="done", count=3)
        end = sink.events[-1]
        assert end["type"] == "span_end"
        assert end["attrs"] == {"outcome": "done", "count": 3}

    def test_event_attaches_to_enclosing_span(self):
        sink = MemorySink()
        with obs.tracing(sink):
            obs.event("orphan")
            with obs.span("outer"):
                obs.event("inside", value=7)
        orphan = sink.events[1]
        assert orphan["span"] is None
        inside = sink.events[3]
        assert inside["span"] == sink.events[2]["id"]
        assert inside["attrs"] == {"value": 7}

    def test_exception_still_closes_span(self):
        sink = MemorySink()
        with obs.tracing(sink):
            with pytest.raises(RuntimeError):
                with obs.span("doomed"):
                    raise RuntimeError("boom")
        assert sink.events[-1]["type"] == "span_end"
        assert obs.active() is False

    def test_abandoned_child_is_closed_by_parent_exit(self):
        sink = MemorySink()
        with obs.tracing(sink) as ctx:
            parent = ctx.start_span("parent", None, {})
            ctx.start_span("child", None, {})  # never explicitly ended
            parent.__exit__(None, None, None)
        ends = [r["id"] for r in sink.events if r["type"] == "span_end"]
        starts = {r["name"]: r["id"] for r in sink.events if r["type"] == "span_start"}
        # The dangling child was ended before (and in addition to) the parent.
        assert ends == [starts["child"], starts["parent"]]


class TestStacking:
    def test_inner_context_replaces_and_restores_outer(self):
        outer_sink, inner_sink = MemorySink(), MemorySink()
        with obs.tracing(outer_sink):
            obs.event("before")
            with obs.tracing(inner_sink, detail=True):
                assert obs.detail_enabled() is True
                obs.event("nested")
            assert obs.detail_enabled() is False
            obs.event("after")
        outer_names = [r.get("name") for r in outer_sink.events if r["type"] == "event"]
        inner_names = [r.get("name") for r in inner_sink.events if r["type"] == "event"]
        assert outer_names == ["before", "after"]
        assert inner_names == ["nested"]


class TestIngest:
    def test_ingest_reallocates_span_ids(self):
        worker = MemorySink()
        with obs.tracing(worker):
            with obs.span("worker_span"):
                obs.event("worker_event")

        parent = MemorySink()
        with obs.tracing(parent) as ctx:
            with obs.span("parent_span"):
                ctx.ingest(worker.events)
        records = parent.events
        # Worker header dropped; parent stream has exactly one.
        assert sum(1 for r in records if r["type"] == "trace_header") == 1
        ids = [r["id"] for r in records if r["type"] == "span_start"]
        assert len(ids) == len(set(ids))  # no collisions after remap
        ingested = [r for r in records if r.get("name") == "worker_event"]
        worker_start = next(r for r in records if r.get("name") == "worker_span")
        assert ingested[0]["span"] == worker_start["id"]


class TestTraceIds:
    def test_trace_scope_stamps_every_record(self):
        sink = MemorySink()
        with obs.tracing(sink):
            with obs.trace_scope("req-1"):
                with obs.span("outer"):
                    obs.event("ping")
                    obs.metric("cache", 1, 2)
            with obs.span("after"):
                pass
        stamped = [r for r in sink.events if r.get("trace") == "req-1"]
        # outer start/end + event + metric, nothing after the scope.
        assert len(stamped) == 4
        after = [r for r in sink.events
                 if r.get("type") == "span_start" and r["name"] == "after"]
        assert "trace" not in after[0]

    def test_trace_scope_restores_previous_id(self):
        sink = MemorySink()
        with obs.tracing(sink, trace_id="outer-id"):
            with obs.trace_scope("inner-id"):
                obs.event("inner")
            obs.event("outer")
        by_name = {r.get("name"): r for r in sink.events
                   if r.get("type") == "event"}
        assert by_name["inner"]["trace"] == "inner-id"
        assert by_name["outer"]["trace"] == "outer-id"

    def test_trace_scope_without_context_is_a_noop(self):
        with obs.trace_scope("nobody-listening"):
            obs.event("dropped")  # must not raise

    def test_tracing_trace_id_parameter(self):
        sink = MemorySink()
        with obs.tracing(sink, trace_id="run-7"):
            with obs.span("work"):
                pass
        starts = [r for r in sink.events if r.get("type") == "span_start"]
        assert starts[0]["trace"] == "run-7"
        # The header itself is never stamped (it is stream metadata).
        assert "trace" not in sink.events[0]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestPhaseTiming:
    def test_exclusive_attribution(self):
        clock = FakeClock()
        with obs.phase_timing(clock=clock) as timer:
            with obs.span("outer", phase="forward"):
                clock.now = 1.0
                with obs.span("inner", phase="backward"):
                    clock.now = 4.0
                clock.now = 6.0
        # outer ran 0..6 with 3s of phased child: 3s exclusive.
        assert timer.totals == {"forward": 3.0, "backward": 3.0}

    def test_same_phase_nesting_does_not_double_count(self):
        clock = FakeClock()
        with obs.phase_timing(clock=clock) as timer:
            with obs.span("outer", phase="forward"):
                with obs.span("inner", phase="forward"):
                    clock.now = 2.0
        assert timer.totals == {"forward": 2.0}

    def test_unphased_spans_are_invisible_to_the_timer(self):
        clock = FakeClock()
        with obs.phase_timing(clock=clock) as timer:
            with obs.span("plain"):
                clock.now = 5.0
        assert timer.totals == {}

    def test_timer_works_without_a_sink(self):
        assert obs.active() is False
        with obs.phase_timing() as timer:
            with obs.span("work", phase="synthesis"):
                pass
        assert "synthesis" in timer.totals

    def test_dual_span_feeds_both_sink_and_timer(self):
        sink = MemorySink()
        clock = FakeClock()
        with obs.tracing(sink):
            with obs.phase_timing(clock=clock) as timer:
                with obs.span("work", phase="forward") as handle:
                    handle.set(steps=3)
                    clock.now = 2.0
        assert timer.totals == {"forward": 2.0}
        ends = [r for r in sink.events if r.get("type") == "span_end"]
        assert ends[0]["attrs"] == {"steps": 3}

    def test_nested_phase_timers_stack(self):
        clock = FakeClock()
        with obs.phase_timing(clock=clock) as outer:
            with obs.phase_timing(clock=clock) as inner:
                with obs.span("work", phase="forward"):
                    clock.now = 1.0
                assert obs.current_phase_timer() is inner
            assert obs.current_phase_timer() is outer
        assert inner.totals == {"forward": 1.0}
        assert outer.totals == {}  # only the innermost timer observes
