"""Tests for the trace schema, validation, and stream merging."""

from repro.obs.events import (
    SCHEMA_VERSION,
    header,
    merge_streams,
    validate_events,
)


def stream(*records):
    return [header(), *records]


def span_start(span_id, name="s", parent=None, t=0.0, **extra):
    return {
        "type": "span_start",
        "id": span_id,
        "parent": parent,
        "name": name,
        "t": t,
        **extra,
    }


def span_end(span_id, t=1.0):
    return {"type": "span_end", "id": span_id, "t": t}


class TestValidate:
    def test_valid_stream(self):
        records = stream(
            span_start(0, "outer"),
            span_start(1, "inner", parent=0, phase="forward"),
            {"type": "event", "name": "e", "span": 1, "t": 0.5},
            span_end(1),
            span_end(0),
            {"type": "metric", "name": "c", "hits": 1, "misses": 2, "t": 1.0},
        )
        assert validate_events(records) == []

    def test_missing_header(self):
        errors = validate_events([span_start(0), span_end(0)])
        assert any("trace_header" in e for e in errors)

    def test_wrong_schema_version(self):
        bad = {"type": "trace_header", "schema": SCHEMA_VERSION + 1}
        errors = validate_events([bad])
        assert any("unsupported schema" in e for e in errors)

    def test_duplicate_header(self):
        errors = validate_events(stream(header()))
        assert any("duplicate trace_header" in e for e in errors)

    def test_unknown_record_type(self):
        errors = validate_events(stream({"type": "mystery", "t": 0.0}))
        assert any("unknown record type" in e for e in errors)

    def test_duplicate_span_id(self):
        errors = validate_events(
            stream(span_start(0), span_start(0), span_end(0))
        )
        assert any("duplicate span id" in e for e in errors)

    def test_unknown_parent(self):
        errors = validate_events(
            stream(span_start(1, parent=99), span_end(1))
        )
        assert any("unknown parent" in e for e in errors)

    def test_unknown_phase(self):
        errors = validate_events(
            stream(span_start(0, phase="sideways"), span_end(0))
        )
        assert any("unknown phase" in e for e in errors)

    def test_unfinished_span(self):
        errors = validate_events(stream(span_start(0, "open_ended")))
        assert any("unfinished spans" in e for e in errors)

    def test_span_end_without_start(self):
        errors = validate_events(stream(span_end(7)))
        assert any("unknown id" in e for e in errors)

    def test_metric_requires_integer_counts(self):
        errors = validate_events(
            stream({"type": "metric", "name": "c", "hits": "many", "misses": 0, "t": 0.0})
        )
        assert any("integer 'hits'" in e for e in errors)

    def test_event_on_unknown_span(self):
        errors = validate_events(
            stream({"type": "event", "name": "e", "span": 3, "t": 0.0})
        )
        assert any("unknown span" in e for e in errors)


class TestMerge:
    def test_merge_remaps_ids_and_tags_streams(self):
        a = stream(span_start(0, "a0"), span_end(0))
        b = stream(
            span_start(0, "b0"),
            span_start(1, "b1", parent=0),
            {"type": "event", "name": "e", "span": 1, "t": 0.2},
            span_end(1),
            span_end(0),
        )
        merged = merge_streams([a, b])
        assert validate_events(merged) == []
        assert sum(1 for r in merged if r["type"] == "trace_header") == 1
        ids = [r["id"] for r in merged if r["type"] == "span_start"]
        assert len(ids) == len(set(ids))
        by_name = {r["name"]: r for r in merged if r["type"] == "span_start"}
        assert by_name["a0"]["stream"] == 0
        assert by_name["b0"]["stream"] == 1
        assert by_name["b1"]["parent"] == by_name["b0"]["id"]
        event = next(r for r in merged if r["type"] == "event")
        assert event["span"] == by_name["b1"]["id"]

    def test_merge_is_deterministic_in_stream_order(self):
        a = stream(span_start(0, "a0"), span_end(0))
        b = stream(span_start(0, "b0"), span_end(0))
        assert merge_streams([a, b]) == merge_streams([a, b])
        assert merge_streams([a, b]) != merge_streams([b, a])

    def test_merge_of_empty_streams(self):
        merged = merge_streams([])
        assert validate_events(merged) == []


class TestKnownEventNames:
    def test_every_emit_site_is_registered(self):
        """Scan the source tree for ``obs.event("name", ...)`` call
        sites and check each name against the registry — a typo'd or
        unregistered name fails here, not in a consumer."""
        import pathlib
        import re

        from repro.obs.events import KNOWN_EVENT_NAMES

        import repro

        root = pathlib.Path(repro.__file__).parent
        pattern = re.compile(r'\bevent\(\s*\n?\s*"([a-z_]+)"')
        emitted = set()
        for path in root.rglob("*.py"):
            emitted.update(pattern.findall(path.read_text()))
        assert emitted, "no emit sites found — the scan regex broke"
        unregistered = emitted - KNOWN_EVENT_NAMES
        assert not unregistered, (
            f"event names emitted but not in KNOWN_EVENT_NAMES: "
            f"{sorted(unregistered)}"
        )

    def test_serving_events_are_registered(self):
        from repro.obs.events import KNOWN_EVENT_NAMES

        assert {
            "session_opened",
            "warm_start",
            "store_hit",
            "request_served",
        } <= KNOWN_EVENT_NAMES

    def test_telemetry_events_are_registered(self):
        from repro.obs.events import KNOWN_EVENT_NAMES

        assert {
            "request_received",
            "request_finished",
            "metrics_scraped",
        } <= KNOWN_EVENT_NAMES

    def test_scan_reaches_the_serving_emit_sites(self):
        """The emit-site scan must keep covering the daemon and the
        obs helper modules, where the telemetry events are emitted."""
        import pathlib
        import re

        import repro

        root = pathlib.Path(repro.__file__).parent
        pattern = re.compile(r'\bevent\(\s*\n?\s*"([a-z_]+)"')
        serve_names = set()
        for path in (root / "serve").rglob("*.py"):
            serve_names.update(pattern.findall(path.read_text()))
        assert "metrics_scraped" in serve_names
        assert "request_finished" in serve_names


class TestSchemaVersions:
    def test_current_version_is_2(self):
        from repro.obs.events import SUPPORTED_SCHEMA_VERSIONS

        assert SCHEMA_VERSION == 2
        assert SCHEMA_VERSION in SUPPORTED_SCHEMA_VERSIONS

    def test_v1_streams_still_validate(self):
        v1_header = {"type": "trace_header", "schema": 1, "producer": "old"}
        records = [v1_header, span_start(0), span_end(0)]
        assert validate_events(records) == []

    def test_trace_id_key_is_valid_on_every_record_type(self):
        records = stream(
            {**span_start(0), "trace": "req-1"},
            {"type": "event", "name": "e", "span": 0, "t": 0.5,
             "trace": "req-1"},
            {"type": "metric", "name": "c", "hits": 0, "misses": 0,
             "t": 0.6, "trace": "req-1"},
            {**span_end(0), "trace": "req-1"},
        )
        assert validate_events(records) == []

    def test_non_string_trace_id_is_an_error(self):
        records = stream({**span_start(0), "trace": 17}, span_end(0))
        errors = validate_events(records)
        assert any("trace id" in e for e in errors)
