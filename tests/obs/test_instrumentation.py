"""End-to-end tests of the instrumented TRACER loop.

These pin the acceptance criteria of the observability layer: a real
search produces a schema-valid stream, the per-phase breakdown covers
the charged per-query time, transcripts can be rebuilt post-hoc, and
all counter reports agree with the metrics registry.
"""

import pytest

from repro.core.narrate import narrate, transcript_from_events
from repro.core.stats import QueryStatus
from repro.core.tracer import ForwardRunCache, Tracer, TracerConfig
from repro.escape import EscSchema, EscapeClient, EscapeQuery
from repro.lang import parse_program
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.obs.events import validate_events
from repro.obs.sinks import MemorySink
from repro.obs.summarize import summarize_trace
from repro.typestate import TypestateClient, TypestateQuery, file_automaton

ESCAPE_PROGRAM = """
observe qa
u = new h1
choice {
  $g = u
} or {
  skip
}
w = u
observe qb
"""

FILE_PROGRAM = """
x = new File
y = x
x.open()
y.close()
observe check1
"""


def escape_client():
    program = parse_program(ESCAPE_PROGRAM)
    client = EscapeClient(program, EscSchema(["u", "w"], []), frozenset({"h1"}))
    return client, [EscapeQuery("qa", "u"), EscapeQuery("qb", "w")]


def typestate_client():
    program = parse_program(FILE_PROGRAM)
    client = TypestateClient(
        program, file_automaton(), "File", frozenset({"x", "y"})
    )
    return client, TypestateQuery("check1", frozenset({"closed"}))


class TestTracedSearch:
    @pytest.fixture(scope="class")
    def run(self):
        sink = MemorySink()
        with obs_metrics.scoped_registry() as registry:
            # Construct inside the scope so the client's dispatch table
            # and wp memo register with this registry.
            client, queries = escape_client()
            cache = ForwardRunCache(max_entries=16)
            with obs.tracing(sink):
                records = Tracer(
                    client, TracerConfig(), forward_cache=cache
                ).solve_all(queries)
            snapshot = registry.snapshot()
        return sink.events, records, queries, snapshot

    def test_stream_is_schema_valid(self, run):
        events, _records, _queries, _snapshot = run
        assert validate_events(events) == []

    def test_expected_span_taxonomy(self, run):
        events, records, _queries, _snapshot = run
        names = {r["name"] for r in events if r["type"] == "span_start"}
        assert {
            "query_group",
            "iteration",
            "choose",
            "counterexamples",
            "forward_run",
            "extract",
            "backward",
        } <= names
        iterations = [
            r
            for r in events
            if r["type"] == "span_start" and r["name"] == "iteration"
        ]
        # One span per (group, round) pair: at least as many as the
        # deepest query's iteration count (groups may split).
        assert len(iterations) >= max(r.iterations for r in records.values())
        rounds = [r["attrs"]["round"] for r in iterations]
        assert rounds == sorted(rounds)

    def test_query_resolved_events_match_records(self, run):
        events, records, queries, _snapshot = run
        resolved = {
            r["attrs"]["query"]: r["attrs"]
            for r in events
            if r["type"] == "event" and r["name"] == "query_resolved"
        }
        assert set(resolved) == {str(q) for q in queries}
        for query in queries:
            record = records[query]
            attrs = resolved[str(query)]
            assert attrs["status"] == record.status.value
            assert attrs["iterations"] == record.iterations
            assert attrs["time_seconds"] == pytest.approx(record.time_seconds)

    def test_phase_breakdown_covers_charged_time(self, run):
        """Acceptance: forward+backward+synthesis within 10% of the
        summed per-query time_seconds."""
        events, records, _queries, _snapshot = run
        summary = summarize_trace(events)
        charged = sum(r.time_seconds for r in records.values())
        assert summary.phase_total == pytest.approx(charged, rel=0.10)

    def test_backward_spans_carry_meta_counters(self, run):
        events, _records, _queries, _snapshot = run
        starts = {
            r["id"]: r for r in events if r["type"] == "span_start"
        }
        backward_ends = [
            r
            for r in events
            if r["type"] == "span_end"
            and starts[r["id"]]["name"] == "backward"
            and "attrs" in r
        ]
        assert backward_ends
        for end in backward_ends:
            attrs = end["attrs"]
            # One formula per trace point plus the failure condition.
            assert len(attrs["step_disjuncts"]) == attrs["steps"] + 1
            assert attrs["max_disjuncts"] >= 1
            assert attrs["subsumption_drops"] >= 0
            assert attrs["beam_prunes"] >= 0

    def test_registry_snapshot_names(self, run):
        _events, _records, _queries, snapshot = run
        assert "forward_run" in snapshot
        assert "wp_memo.escape" in snapshot
        assert "dispatch.escape" in snapshot


class TestPostHocTranscript:
    def test_transcript_from_trace_equals_narrate(self):
        client, query = typestate_client()
        config = TracerConfig(k=1)
        sink = MemorySink()
        direct = narrate(client, query, config, sink=sink)
        rebuilt = transcript_from_events(sink.events, query=str(query))
        assert rebuilt.render() == direct.render()
        assert rebuilt.status is QueryStatus.PROVEN
        assert rebuilt.abstraction == frozenset({"x", "y"})

    def test_multi_query_trace_requires_selector(self):
        client, queries = escape_client()
        sink = MemorySink()
        with obs.tracing(sink, detail=True):
            Tracer(client, TracerConfig()).solve_all(queries)
        with pytest.raises(ValueError):
            transcript_from_events(sink.events)
        picked = transcript_from_events(sink.events, query=str(queries[0]))
        assert picked.query == str(queries[0])

    def test_trace_without_detail_rejected(self):
        client, query = typestate_client()
        sink = MemorySink()
        with obs.tracing(sink):  # no detail mode
            Tracer(client, TracerConfig()).solve(query)
        transcript = transcript_from_events(sink.events, query=str(query))
        # Without iteration_detail events there is nothing to narrate.
        assert transcript.iterations == []
