"""Regression tests: every counter report derives from one registry.

The pre-obs harness threaded `CacheCounters` copies by hand, which let
`BENCH_smoke.json`'s hits/misses drift from the caches' own counters
(the `ForwardRunCache.hit_rate` double-count).  Now `EvalResult`'s
legacy fields are computed *from* the registry snapshot, so the JSON
export, the tables, and the trace metric records cannot disagree with
the registry — these tests pin that.
"""

import pytest

from repro.bench.harness import (
    analysis_setups,
    client_cache_counters,
    counters_from_metrics,
    evaluate_benchmark,
    prepare,
)
from repro.core.tracer import ForwardRunCache, Tracer, TracerConfig
from repro.obs import metrics as obs_metrics


@pytest.fixture(scope="module")
def tsp_result():
    return evaluate_benchmark(
        prepare("tsp"), "escape", TracerConfig(k=5, max_iterations=30)
    )


class TestSingleSourceOfTruth:
    def test_legacy_fields_equal_registry_snapshot(self, tsp_result):
        """The fields exported into BENCH_smoke.json / the JSON report
        (forward_hits, forward_misses, wp_cache, dispatch_cache) must
        equal the totals of the run's registry snapshot."""
        result = tsp_result
        assert result.metrics, "evaluation must capture a registry snapshot"
        forward, wp_cache, dispatch_cache = counters_from_metrics(result.metrics)
        assert result.forward_hits == forward.hits
        assert result.forward_misses == forward.misses
        assert (result.wp_cache.hits, result.wp_cache.misses) == (
            wp_cache.hits,
            wp_cache.misses,
        )
        assert (result.dispatch_cache.hits, result.dispatch_cache.misses) == (
            dispatch_cache.hits,
            dispatch_cache.misses,
        )

    def test_snapshot_has_hierarchical_names(self, tsp_result):
        names = set(tsp_result.metrics)
        assert "forward_run" in names
        assert any(n.startswith("wp_memo.") for n in names)
        assert any(n.startswith("dispatch.") for n in names)

    def test_hit_rate_consistent_with_registry(self):
        """`ForwardRunCache.hit_rate` and the registry's counters are
        two views of the same owned integers — never separate copies."""
        with obs_metrics.scoped_registry() as registry:
            cache = ForwardRunCache(max_entries=4)
            cache.hits, cache.misses = 3, 1
            counters = registry.counters("forward_run")
            assert (counters.hits, counters.misses) == (cache.hits, cache.misses)
            assert cache.hit_rate == pytest.approx(
                counters.hits / (counters.hits + counters.misses)
            )

    def test_multi_client_snapshot_covers_every_workload(self):
        """Regression: with several clients per analysis (one typestate
        client per tracked site), a client collected before the final
        snapshot must not drop its counters from the totals — the
        registry holds weak references, so the harness has to keep the
        setups alive until it reads the snapshot."""
        bench = prepare("weblech")
        config = TracerConfig(k=5, max_iterations=30)
        setups = analysis_setups(bench, "typestate")
        assert len(setups) > 1, "needs a multi-client workload"
        # Ground truth: run every workload while explicitly holding all
        # clients, then sum the counters each client accumulated.
        cache = ForwardRunCache(config.forward_cache_size)
        for client, queries in setups:
            Tracer(client, config, forward_cache=cache).solve_all(queries)
        wp_hits = wp_misses = 0
        for client, _queries in setups:
            wp, _dispatch = client_cache_counters(client)
            wp_hits += wp.hits
            wp_misses += wp.misses
        result = evaluate_benchmark(bench, "typestate", config)
        assert (result.wp_cache.hits, result.wp_cache.misses) == (
            wp_hits,
            wp_misses,
        )

    def test_per_record_hits_sum_to_registry_total(self, tsp_result):
        """The per-query `forward_cache_hits` accounting must agree
        with the registry's forward_run total: a cached round is
        charged to every group member, so the record-level sum is at
        least the cache-level count and both move together."""
        result = tsp_result
        record_hits = sum(r.forward_cache_hits for r in result.records)
        assert record_hits >= result.forward_hits
        if result.forward_hits == 0:
            assert record_hits == 0
