"""The per-site trace profiler (`repro.obs.aggregate`)."""

from repro.obs.aggregate import profile_trace, render_profile
from repro.obs.events import SCHEMA_VERSION


def header():
    return {"type": "trace_header", "schema": SCHEMA_VERSION, "producer": "t"}


def span(span_id, name, start, end, parent=None, trace=None):
    start_record = {
        "type": "span_start", "id": span_id, "parent": parent,
        "name": name, "t": start,
    }
    end_record = {"type": "span_end", "id": span_id, "t": end}
    if trace is not None:
        start_record["trace"] = trace
        end_record["trace"] = trace
    return [start_record, end_record]


class TestProfile:
    def test_self_excludes_direct_children(self):
        records = [header()]
        records += span(1, "outer", 0.0, 10.0)
        records += span(2, "inner", 1.0, 4.0, parent=1)
        profile = profile_trace([records])
        by_name = {site.name: site for site in profile.sites}
        assert by_name["outer"].total_seconds == 10.0
        assert by_name["outer"].self_seconds == 7.0
        assert by_name["inner"].self_seconds == 3.0
        assert profile.span_count == 2
        assert profile.self_total == 10.0

    def test_sites_aggregate_and_sort_by_self_time(self):
        records = [header()]
        records += span(1, "cheap", 0.0, 1.0)
        records += span(2, "hot", 1.0, 6.0)
        records += span(3, "hot", 6.0, 11.0)
        profile = profile_trace([records])
        assert [site.name for site in profile.sites] == ["hot", "cheap"]
        assert profile.sites[0].count == 2
        assert profile.sites[0].self_seconds == 10.0

    def test_unfinished_spans_are_dropped(self):
        records = [header()]
        records += span(1, "done", 0.0, 2.0)
        records.append(
            {"type": "span_start", "id": 2, "parent": None,
             "name": "dangling", "t": 1.0}
        )
        profile = profile_trace([records])
        assert [site.name for site in profile.sites] == ["done"]

    def test_traces_roll_up_by_id(self):
        records = [header()]
        records += span(1, "solve", 0.0, 3.0, trace="req-a")
        records += span(2, "solve", 3.0, 5.0, trace="req-b")
        records += span(3, "solve", 5.0, 6.0, trace="req-a")
        profile = profile_trace([records])
        assert profile.traces["req-a"] == {"spans": 2, "self_seconds": 4.0}
        assert profile.traces["req-b"] == {"spans": 1, "self_seconds": 2.0}

    def test_multiple_streams_merge_and_keep_trace_ids(self):
        first = [header()] + span(1, "unit", 0.0, 2.0, trace="unit:0")
        second = [header()] + span(1, "unit", 0.0, 3.0, trace="unit:1")
        profile = profile_trace([first, second])
        # Identically-numbered span ids from different workers must not
        # collide after the merge.
        assert profile.span_count == 2
        assert profile.sites[0].count == 2
        assert set(profile.traces) == {"unit:0", "unit:1"}


class TestRender:
    def test_table_columns_and_totals(self):
        records = [header()] + span(1, "forward_run", 0.0, 2.0)
        text = render_profile(profile_trace([records]))
        assert "site" in text and "self %" in text
        assert "forward_run" in text
        assert "100.0%" in text
        assert "all sites" in text

    def test_top_truncates_with_a_hint(self):
        records = [header()]
        for index in range(5):
            records += span(index + 1, f"site{index}", index, index + 1.0)
        text = render_profile(profile_trace([records]), top=2)
        assert "... 3 more site(s); use --top to widen" in text

    def test_by_trace_section(self):
        records = [header()] + span(1, "solve", 0.0, 2.0, trace="req-a")
        text = render_profile(profile_trace([records]), by_trace=True)
        assert "req-a" in text and "spans" in text

    def test_by_trace_without_ids_explains(self):
        records = [header()] + span(1, "solve", 0.0, 2.0)
        text = render_profile(profile_trace([records]), by_trace=True)
        assert "no trace ids" in text
