"""Tests for the pull-model cache-counter registry (`repro.obs.metrics`)."""

import gc

from repro.core.stats import CacheCounters
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry, scoped_registry


class FakeCache:
    def __init__(self, hits=0, misses=0):
        self.hits = hits
        self.misses = misses


class TestRegistry:
    def test_snapshot_reads_live_sources(self):
        registry = MetricsRegistry()
        cache = FakeCache(hits=3, misses=1)
        registry.register("forward_run", cache)
        assert registry.snapshot() == {
            "forward_run": CacheCounters(hits=3, misses=1)
        }
        cache.hits = 10  # the registry pulls, it never copies
        assert registry.snapshot()["forward_run"].hits == 10

    def test_counters_sums_dotted_descendants(self):
        registry = MetricsRegistry()
        registry.register("wp_memo.typestate", FakeCache_keepalive[0])
        registry.register("wp_memo.escape", FakeCache_keepalive[1])
        registry.register("wp_memo_other", FakeCache_keepalive[2])
        total = registry.counters("wp_memo")
        assert (total.hits, total.misses) == (3, 30)  # excludes wp_memo_other
        assert registry.source_count("wp_memo") == 2

    def test_same_name_sources_sum(self):
        registry = MetricsRegistry()
        a, b = FakeCache(1, 0), FakeCache(2, 5)
        registry.register("forward_run", a)
        registry.register("forward_run", b)
        assert registry.snapshot()["forward_run"] == CacheCounters(3, 5)

    def test_dead_sources_are_pruned(self):
        registry = MetricsRegistry()
        cache = FakeCache(hits=9)
        registry.register("forward_run", cache)
        del cache
        gc.collect()
        assert registry.snapshot() == {}
        assert registry.source_count("forward_run") == 0

    def test_custom_reader(self):
        registry = MetricsRegistry()

        class Odd:
            good = 4
            bad = 2

        source = Odd()
        registry.register(
            "odd", source, reader=lambda s: CacheCounters(s.good, s.bad)
        )
        assert registry.snapshot()["odd"] == CacheCounters(4, 2)


FakeCache_keepalive = [FakeCache(1, 10), FakeCache(2, 20), FakeCache(4, 40)]


class TestScoping:
    def test_scoped_registry_isolates_and_restores(self):
        before = obs_metrics.current_registry()
        cache = FakeCache(hits=1)
        with scoped_registry() as registry:
            assert obs_metrics.current_registry() is registry
            obs_metrics.register_cache("forward_run", cache)
            assert registry.source_count("forward_run") == 1
        assert obs_metrics.current_registry() is before
        # The scoped registration never reached the outer registry.
        with scoped_registry() as fresh:
            assert fresh.source_count("forward_run") == 0

    def test_nested_scopes(self):
        with scoped_registry() as outer:
            with scoped_registry() as inner:
                assert obs_metrics.current_registry() is inner
            assert obs_metrics.current_registry() is outer

    def test_explicit_registry_reuse(self):
        registry = MetricsRegistry()
        cache = FakeCache(hits=2, misses=2)
        with scoped_registry(registry):
            obs_metrics.register_cache("forward_run", cache)
        with scoped_registry(registry):
            obs_metrics.register_cache("forward_run", cache)
        assert registry.snapshot()["forward_run"] == CacheCounters(4, 4)


class TestRealCachesRegister:
    def test_forward_run_cache_registers_itself(self):
        from repro.core.tracer import ForwardRunCache

        with scoped_registry() as registry:
            cache = ForwardRunCache(max_entries=4)
            assert registry.source_count("forward_run") == 1
            cache.misses += 1  # simulate one cold fetch
            assert registry.counters("forward_run").misses == 1


class TestCounter:
    def test_unlabeled(self):
        from repro.obs.metrics import Counter

        counter = Counter("requests", "served requests")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3
        assert counter.samples() == [({}, 3)]

    def test_labeled_series_are_independent(self):
        from repro.obs.metrics import Counter

        counter = Counter("tiers", labelnames=("tier",))
        counter.inc(tier="cold")
        counter.inc(3, tier="replay")
        assert counter.value(tier="cold") == 1
        assert counter.value(tier="replay") == 3
        assert counter.value(tier="clauses") == 0
        assert dict(
            (labels["tier"], value) for labels, value in counter.samples()
        ) == {"cold": 1, "replay": 3}

    def test_rejects_negative_and_wrong_labels(self):
        import pytest

        from repro.obs.metrics import Counter

        counter = Counter("c", labelnames=("op",))
        with pytest.raises(ValueError):
            counter.inc(-1, op="x")
        with pytest.raises(ValueError):
            counter.inc(wrong="x")
        with pytest.raises(ValueError):
            counter.inc()  # missing the declared label


class TestGauge:
    def test_set_inc_dec(self):
        from repro.obs.metrics import Gauge

        gauge = Gauge("in_flight")
        gauge.set(5)
        gauge.dec()
        gauge.inc(3)
        assert gauge.value() == 7

    def test_callback_gauge_reads_at_sample_time(self):
        from repro.obs.metrics import Gauge

        state = {"rate": 0.25}
        gauge = Gauge("hit_rate")
        gauge.set_function(lambda: state["rate"])
        assert gauge.value() == 0.25
        state["rate"] = 0.75  # pulled, never copied
        assert gauge.samples() == [({}, 0.75)]


class TestHistogram:
    def test_buckets_and_sum(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        ((labels, series),) = histogram.samples()
        assert labels == {}
        assert series.counts == [1, 2, 1]  # <=0.1, <=1.0, overflow
        assert series.count == 4
        assert series.sum == 6.05

    def test_quantile_interpolates_within_bucket(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            histogram.observe(1.5)
        # All mass is in (1, 2]; the median interpolates to mid-bucket.
        assert 1.0 < histogram.quantile(0.5) <= 2.0

    def test_quantile_overflow_clamps_to_top_bound(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("lat", buckets=(1.0,))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 1.0

    def test_quantile_empty_is_none(self):
        from repro.obs.metrics import Histogram

        assert Histogram("lat", buckets=(1.0,)).quantile(0.5) is None

    def test_merged_sums_label_series(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("lat", buckets=(1.0,), labelnames=("op",))
        histogram.observe(0.5, op="solve")
        histogram.observe(2.0, op="ping")
        merged = histogram.merged()
        assert merged.count == 2
        assert merged.counts == [1, 1]


class TestQuantileFromBuckets:
    def test_linear_interpolation(self):
        from repro.obs.metrics import quantile_from_buckets

        # 10 observations uniformly in (0, 10]: one bucket.
        assert quantile_from_buckets((10.0,), [10, 0], 0.5) == 5.0

    def test_empty_returns_none(self):
        from repro.obs.metrics import quantile_from_buckets

        assert quantile_from_buckets((1.0,), [0, 0], 0.5) is None


class TestInstrumentRegistration:
    def test_registration_is_weak(self):
        from repro.obs.metrics import Counter, MetricsRegistry

        registry = MetricsRegistry()
        counter = Counter("c")
        registry.register_instrument(counter)
        assert registry.instruments() == [counter]
        del counter
        gc.collect()
        assert registry.instruments() == []

    def test_registration_order_is_preserved(self):
        from repro.obs.metrics import Counter, Gauge, MetricsRegistry

        registry = MetricsRegistry()
        a, b = Counter("a"), Gauge("b")
        registry.register_instrument(a)
        registry.register_instrument(b)
        assert [i.name for i in registry.instruments()] == ["a", "b"]


class TestSessionLifecycle:
    """The satellite contract: a resident session's metrics persist
    across solves; a collected session's drop out of later scrapes."""

    TEXT = "x = new File\nx.open()\nx.close()\nobserve check1\n"

    def _solve(self, session):
        from repro.core.tracer import TracerConfig
        from repro.typestate.client import TypestateQuery

        client, *_rest = session.typestate_client(self.TEXT)
        return session.solve(
            client,
            [TypestateQuery("check1", frozenset({"closed"}))],
            TracerConfig(k=5, max_iterations=30),
        )

    def test_resident_session_metrics_persist_then_drop(self):
        from repro.serve.session import AnalysisSession

        with scoped_registry() as registry:
            session = AnalysisSession()
            self._solve(session)
            first = registry.source_count("forward_run")
            assert first == 1  # the session's resident forward cache
            hits_before = registry.counters("wp_memo").hits
            self._solve(session)
            # Reuse, not re-registration: still one source, counters
            # monotone across the second solve.
            assert registry.source_count("forward_run") == 1
            assert registry.counters("wp_memo").hits >= hits_before
            del session
            gc.collect()
            # The collected session's caches vanish from the scrape.
            assert registry.source_count("forward_run") == 0
