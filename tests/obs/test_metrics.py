"""Tests for the pull-model cache-counter registry (`repro.obs.metrics`)."""

import gc

from repro.core.stats import CacheCounters
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry, scoped_registry


class FakeCache:
    def __init__(self, hits=0, misses=0):
        self.hits = hits
        self.misses = misses


class TestRegistry:
    def test_snapshot_reads_live_sources(self):
        registry = MetricsRegistry()
        cache = FakeCache(hits=3, misses=1)
        registry.register("forward_run", cache)
        assert registry.snapshot() == {
            "forward_run": CacheCounters(hits=3, misses=1)
        }
        cache.hits = 10  # the registry pulls, it never copies
        assert registry.snapshot()["forward_run"].hits == 10

    def test_counters_sums_dotted_descendants(self):
        registry = MetricsRegistry()
        registry.register("wp_memo.typestate", FakeCache_keepalive[0])
        registry.register("wp_memo.escape", FakeCache_keepalive[1])
        registry.register("wp_memo_other", FakeCache_keepalive[2])
        total = registry.counters("wp_memo")
        assert (total.hits, total.misses) == (3, 30)  # excludes wp_memo_other
        assert registry.source_count("wp_memo") == 2

    def test_same_name_sources_sum(self):
        registry = MetricsRegistry()
        a, b = FakeCache(1, 0), FakeCache(2, 5)
        registry.register("forward_run", a)
        registry.register("forward_run", b)
        assert registry.snapshot()["forward_run"] == CacheCounters(3, 5)

    def test_dead_sources_are_pruned(self):
        registry = MetricsRegistry()
        cache = FakeCache(hits=9)
        registry.register("forward_run", cache)
        del cache
        gc.collect()
        assert registry.snapshot() == {}
        assert registry.source_count("forward_run") == 0

    def test_custom_reader(self):
        registry = MetricsRegistry()

        class Odd:
            good = 4
            bad = 2

        source = Odd()
        registry.register(
            "odd", source, reader=lambda s: CacheCounters(s.good, s.bad)
        )
        assert registry.snapshot()["odd"] == CacheCounters(4, 2)


FakeCache_keepalive = [FakeCache(1, 10), FakeCache(2, 20), FakeCache(4, 40)]


class TestScoping:
    def test_scoped_registry_isolates_and_restores(self):
        before = obs_metrics.current_registry()
        cache = FakeCache(hits=1)
        with scoped_registry() as registry:
            assert obs_metrics.current_registry() is registry
            obs_metrics.register_cache("forward_run", cache)
            assert registry.source_count("forward_run") == 1
        assert obs_metrics.current_registry() is before
        # The scoped registration never reached the outer registry.
        with scoped_registry() as fresh:
            assert fresh.source_count("forward_run") == 0

    def test_nested_scopes(self):
        with scoped_registry() as outer:
            with scoped_registry() as inner:
                assert obs_metrics.current_registry() is inner
            assert obs_metrics.current_registry() is outer

    def test_explicit_registry_reuse(self):
        registry = MetricsRegistry()
        cache = FakeCache(hits=2, misses=2)
        with scoped_registry(registry):
            obs_metrics.register_cache("forward_run", cache)
        with scoped_registry(registry):
            obs_metrics.register_cache("forward_run", cache)
        assert registry.snapshot()["forward_run"] == CacheCounters(4, 4)


class TestRealCachesRegister:
    def test_forward_run_cache_registers_itself(self):
        from repro.core.tracer import ForwardRunCache

        with scoped_registry() as registry:
            cache = ForwardRunCache(max_entries=4)
            assert registry.source_count("forward_run") == 1
            cache.misses += 1  # simulate one cold fetch
            assert registry.counters("forward_run").misses == 1
