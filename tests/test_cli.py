"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import EXIT_EXHAUSTED, EXIT_IMPOSSIBLE, main

FILE_PROGRAM = """
x = new File
y = x
x.open()
y.close()
observe check1
observe check2
"""

ESCAPE_PROGRAM = """
u = new h1
v = new h2
v.f = u
observe pc
"""


@pytest.fixture
def file_prog(tmp_path):
    path = tmp_path / "prog.rp"
    path.write_text(FILE_PROGRAM)
    return str(path)


@pytest.fixture
def escape_prog(tmp_path):
    path = tmp_path / "esc.rp"
    path.write_text(ESCAPE_PROGRAM)
    return str(path)


class TestSolveTypestate:
    def test_proven_query(self, file_prog, capsys):
        code = main(
            ["solve-typestate", file_prog, "--query", "check1", "--k", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PROVEN" in out
        assert "{x, y}" in out

    def test_impossible_query(self, file_prog, capsys):
        code = main(
            [
                "solve-typestate",
                file_prog,
                "--query",
                "check2",
                "--allowed",
                "opened",
            ]
        )
        assert code == EXIT_IMPOSSIBLE
        assert "IMPOSSIBLE" in capsys.readouterr().out

    def test_narrate_transcript(self, file_prog, capsys):
        main(
            [
                "solve-typestate",
                file_prog,
                "--query",
                "check1",
                "--k",
                "1",
                "--narrate",
            ]
        )
        out = capsys.readouterr().out
        assert "iteration 1: p = {}" in out
        assert "x = new File" in out

    def test_beam_none_accepted(self, file_prog, capsys):
        code = main(
            ["solve-typestate", file_prog, "--query", "check1", "--k", "none"]
        )
        assert code == 0

    def test_unknown_label_rejected(self, file_prog):
        with pytest.raises(SystemExit):
            main(["solve-typestate", file_prog, "--query", "ghost"])

    def test_unknown_state_rejected(self, file_prog):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve-typestate",
                    file_prog,
                    "--query",
                    "check1",
                    "--allowed",
                    "ajar",
                ]
            )

    def test_stress_automaton(self, file_prog, capsys):
        code = main(
            [
                "solve-typestate",
                file_prog,
                "--query",
                "check1",
                "--automaton",
                "stress",
                "--allowed",
                "init",
            ]
        )
        assert code == 0


class TestSolveEscape:
    def test_proven_query(self, escape_prog, capsys):
        code = main(["solve-escape", escape_prog, "--query", "pc", "--var", "u"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PROVEN" in out
        assert "{h1, h2}" in out

    def test_unknown_variable_rejected(self, escape_prog):
        with pytest.raises(SystemExit):
            main(["solve-escape", escape_prog, "--query", "pc", "--var", "zz"])

    def test_exhausted_returns_nonzero(self, escape_prog, capsys):
        code = main(
            [
                "solve-escape",
                escape_prog,
                "--query",
                "pc",
                "--var",
                "u",
                "--max-iterations",
                "1",
            ]
        )
        assert code == EXIT_EXHAUSTED
        assert "UNRESOLVED" in capsys.readouterr().out


class TestSolveProvenance:
    @pytest.fixture
    def prov_prog(self, tmp_path):
        path = tmp_path / "prov.rp"
        path.write_text(
            "choice {\n  h = new A\n} or {\n  h = new B\n}\nobserve pc\n"
        )
        return str(path)

    def test_proven_with_all_sites(self, prov_prog, capsys):
        code = main(["solve-provenance", prov_prog, "--query", "pc", "--var", "h"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PROVEN" in out and "{A, B}" in out

    def test_impossible_with_restricted_sites(self, prov_prog, capsys):
        code = main(
            [
                "solve-provenance",
                prov_prog,
                "--query",
                "pc",
                "--var",
                "h",
                "--allowed",
                "A",
            ]
        )
        assert code == EXIT_IMPOSSIBLE
        assert "IMPOSSIBLE" in capsys.readouterr().out

    def test_unknown_site_rejected(self, prov_prog):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve-provenance",
                    prov_prog,
                    "--query",
                    "pc",
                    "--var",
                    "h",
                    "--allowed",
                    "Ghost",
                ]
            )


class TestTracing:
    def solve_with_trace(self, file_prog, tmp_path, *extra):
        trace_path = str(tmp_path / "trace.jsonl")
        code = main(
            [
                "solve-typestate",
                file_prog,
                "--query",
                "check1",
                "--k",
                "1",
                "--trace-out",
                trace_path,
                *extra,
            ]
        )
        assert code == 0
        return trace_path

    def test_trace_out_produces_valid_jsonl(self, file_prog, tmp_path, capsys):
        trace_path = self.solve_with_trace(file_prog, tmp_path)
        code = main(["trace", "validate", trace_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK:" in out

    def test_trace_summarize_breakdown(self, file_prog, tmp_path, capsys):
        trace_path = self.solve_with_trace(file_prog, tmp_path)
        code = main(["trace", "summarize", trace_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "Per-phase wall-clock breakdown" in out
        assert "forward" in out and "backward" in out and "synthesis" in out
        assert "phase coverage" in out

    def test_trace_transcript_post_hoc(self, file_prog, tmp_path, capsys):
        trace_path = self.solve_with_trace(file_prog, tmp_path)
        code = main(["trace", "transcript", trace_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "== iteration 1: p = {} ==" in out
        assert "x = new File" in out

    def test_narrate_with_trace_out_matches_transcript(
        self, file_prog, tmp_path, capsys
    ):
        trace_path = self.solve_with_trace(file_prog, tmp_path, "--narrate")
        narrated = capsys.readouterr().out
        main(["trace", "transcript", trace_path])
        replayed = capsys.readouterr().out
        assert "== iteration 1: p = {} ==" in replayed
        # The post-hoc transcript is embedded in the original output.
        assert replayed.strip() in narrated

    def test_progress_writes_to_stderr(self, file_prog, capsys):
        code = main(
            ["solve-typestate", file_prog, "--query", "check1", "--progress"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "iteration 1" in captured.err
        assert "PROVEN" in captured.err

    def test_validate_rejects_corrupt_trace(
        self, file_prog, tmp_path, capsys
    ):
        trace_path = self.solve_with_trace(file_prog, tmp_path)
        with open(trace_path) as handle:
            lines = [
                line
                for line in handle
                if '"type":"span_end"' not in line  # orphan every span
            ]
        with open(trace_path, "w") as handle:
            handle.writelines(lines)
        code = main(["trace", "validate", trace_path])
        captured = capsys.readouterr()
        assert code == 1
        assert "invalid:" in captured.err

    def test_validate_missing_file_dies(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "validate", str(tmp_path / "nope.jsonl")])

    def test_eval_quick_trace(self, tmp_path, capsys):
        trace_path = str(tmp_path / "eval.jsonl")
        code = main(["eval", "--quick", "--trace-out", trace_path])
        assert code == 0
        capsys.readouterr()
        assert main(["trace", "validate", trace_path]) == 0

    def test_trace_summarize_merges_multiple_files(
        self, file_prog, tmp_path, capsys
    ):
        first = self.solve_with_trace(file_prog, tmp_path)
        second = str(tmp_path / "second.jsonl")
        import shutil

        shutil.copy(first, second)
        capsys.readouterr()
        code = main(["trace", "summarize", first, second])
        out = capsys.readouterr().out
        assert code == 0
        assert "Per-phase wall-clock breakdown" in out
        assert "(streams: 2)" in out
        # Two merged copies report twice the iterations of one file.
        main(["trace", "summarize", first])
        single = capsys.readouterr().out

        def iteration_count(text):
            for line in text.splitlines():
                if line.startswith("iterations:"):
                    return int(line.split()[1])
            raise AssertionError(f"no iteration count in {text!r}")

        assert iteration_count(out) == 2 * iteration_count(single)

    def test_trace_profile_reports_sites(self, file_prog, tmp_path, capsys):
        trace_path = self.solve_with_trace(file_prog, tmp_path)
        capsys.readouterr()
        code = main(["trace", "profile", trace_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "site" in out and "self %" in out
        assert "forward_run" in out
        assert "all sites" in out

    def test_trace_profile_top_and_by_trace(
        self, file_prog, tmp_path, capsys
    ):
        trace_path = self.solve_with_trace(file_prog, tmp_path)
        capsys.readouterr()
        code = main(
            ["trace", "profile", trace_path, "--top", "1", "--by-trace"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "more site(s); use --top" in out
        # A solo solve sets no trace ids; the report says so.
        assert "no trace ids" in out

    def test_trace_profile_by_trace_on_parallel_eval(self, tmp_path, capsys):
        trace_path = str(tmp_path / "eval.jsonl")
        assert main(
            ["eval", "--quick", "--jobs", "2", "--trace-out", trace_path]
        ) == 0
        capsys.readouterr()
        code = main(["trace", "profile", trace_path, "--by-trace"])
        out = capsys.readouterr().out
        assert code == 0
        # Each parallel work unit rolled up under its own trace id.
        assert "unit:" in out


class TestInfo:
    def test_benchmark_info(self, capsys):
        code = main(["info", "tsp"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tsp" in out
        assert "queries:" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRobustFlags:
    def test_max_steps_exhausts(self, file_prog, capsys):
        code = main(
            [
                "solve-typestate",
                file_prog,
                "--query",
                "check1",
                "--max-steps",
                "3",
            ]
        )
        assert code == EXIT_EXHAUSTED
        assert "UNRESOLVED" in capsys.readouterr().out

    def test_inject_is_fatal_under_strict_default(self, file_prog):
        with pytest.raises(RuntimeError):
            main(
                [
                    "solve-typestate",
                    file_prog,
                    "--query",
                    "check1",
                    "--inject",
                    "choose:raise",
                ]
            )

    def test_inject_contained_under_lenient(self, file_prog, capsys):
        code = main(
            [
                "solve-typestate",
                file_prog,
                "--query",
                "check1",
                "--inject",
                "choose:raise:times=none",
                "--lenient",
            ]
        )
        assert code == EXIT_EXHAUSTED
        assert "UNRESOLVED" in capsys.readouterr().out

    def test_bad_inject_spec_dies(self, file_prog):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve-typestate",
                    file_prog,
                    "--query",
                    "check1",
                    "--inject",
                    "nonsense",
                ]
            )

    def test_eval_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["eval", "--quick", "--resume"])

    def test_journal_and_resume_journal_conflict(self, file_prog, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve-typestate",
                    file_prog,
                    "--query",
                    "check1",
                    "--journal",
                    str(tmp_path / "a.jsonl"),
                    "--resume-journal",
                    str(tmp_path / "b.jsonl"),
                ]
            )

    def test_narrate_rejects_journal(self, file_prog, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "solve-typestate",
                    file_prog,
                    "--query",
                    "check1",
                    "--narrate",
                    "--journal",
                    str(tmp_path / "j.jsonl"),
                ]
            )

    def test_eval_quick_with_checkpoint(self, tmp_path, capsys):
        path = str(tmp_path / "ckpt.jsonl")
        code = main(
            ["eval", "--quick", "--jobs", "2", "--checkpoint", path]
        )
        assert code == 0
        from repro.robust.checkpoint import load_checkpoint

        assert load_checkpoint(path)
        capsys.readouterr()
        code = main(
            ["eval", "--quick", "--jobs", "2", "--checkpoint", path, "--resume"]
        )
        assert code == 0


class TestCertify:
    def solve_certified(self, file_prog, tmp_path, *extra):
        cert_path = str(tmp_path / "certs.jsonl")
        main(
            [
                "solve-typestate",
                file_prog,
                "--query",
                "check1",
                "--certify-out",
                cert_path,
                *extra,
            ]
        )
        return cert_path

    def test_solver_certificate_checks_out(self, file_prog, tmp_path, capsys):
        cert_path = self.solve_certified(file_prog, tmp_path)
        code = main(["certify", cert_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "1/1 certificates check out" in out

    def test_impossible_certificate_checks_out(
        self, file_prog, tmp_path, capsys
    ):
        cert_path = str(tmp_path / "certs.jsonl")
        code = main(
            [
                "solve-typestate",
                file_prog,
                "--query",
                "check2",
                "--allowed",
                "opened",
                "--certify-out",
                cert_path,
            ]
        )
        assert code == EXIT_IMPOSSIBLE
        capsys.readouterr()
        assert main(["certify", cert_path]) == 0
        assert "impossible" in capsys.readouterr().out

    def test_escape_certificate_checks_out(
        self, escape_prog, tmp_path, capsys
    ):
        cert_path = str(tmp_path / "certs.jsonl")
        main(
            [
                "solve-escape",
                escape_prog,
                "--query",
                "pc",
                "--var",
                "u",
                "--certify-out",
                cert_path,
            ]
        )
        capsys.readouterr()
        assert main(["certify", cert_path]) == 0

    def test_tampered_certificate_rejected(self, file_prog, tmp_path, capsys):
        cert_path = self.solve_certified(file_prog, tmp_path)
        lines = open(cert_path).read().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "certificate":
                record["abstraction"] = []  # claim a cheaper abstraction
            doctored.append(json.dumps(record, sort_keys=True))
        with open(cert_path, "w") as handle:
            handle.write("\n".join(doctored) + "\n")
        code = main(["certify", cert_path])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_corrupt_certificate_file_dies(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "certificate_header", "version": 1}\nnot json\n')
        with pytest.raises(SystemExit):
            main(["certify", str(path)])

    def test_eval_certificates_check_out(self, tmp_path, capsys):
        cert_path = str(tmp_path / "eval-certs.jsonl")
        code = main(["eval", "--quick", "--certify-out", cert_path])
        assert code == 0
        capsys.readouterr()
        code = main(["certify", cert_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "certificates check out" in out
        assert "FAIL" not in out


class TestJournalFlags:
    def test_resume_replays_to_identical_verdict(
        self, file_prog, tmp_path, capsys
    ):
        journal = str(tmp_path / "journal.jsonl")
        first_cert = str(tmp_path / "first.jsonl")
        second_cert = str(tmp_path / "second.jsonl")
        code = main(
            [
                "solve-typestate",
                file_prog,
                "--query",
                "check1",
                "--journal",
                journal,
                "--certify-out",
                first_cert,
            ]
        )
        assert code == 0
        first_out = capsys.readouterr().out
        code = main(
            [
                "solve-typestate",
                file_prog,
                "--query",
                "check1",
                "--resume-journal",
                journal,
                "--certify-out",
                second_cert,
            ]
        )
        assert code == 0
        second_out = capsys.readouterr().out
        assert "PROVEN" in first_out and "PROVEN" in second_out
        assert open(first_cert).read() == open(second_cert).read()


class TestSelfcheck:
    def test_typestate_passes(self, file_prog, capsys):
        code = main(["selfcheck", "typestate", file_prog])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK:" in out

    def test_escape_passes(self, escape_prog, capsys):
        code = main(["selfcheck", "escape", escape_prog])
        assert code == 0

    def test_provenance_passes(self, escape_prog, capsys):
        code = main(["selfcheck", "provenance", escape_prog])
        assert code == 0

    def test_unknown_analysis_rejected(self, file_prog):
        with pytest.raises(SystemExit):
            main(["selfcheck", "nonsense", file_prog])
