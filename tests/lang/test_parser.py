"""Tests for the text syntax parser, including round-trips with the
pretty printer."""

import pytest

from repro.lang import (
    Assign,
    AssignNull,
    Atom,
    Choice,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    ParseError,
    Skip,
    Star,
    StoreField,
    StoreGlobal,
    ThreadStart,
    atoms_of,
    parse_program,
    pretty_program,
)


class TestAtomicStatements:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("x = new h1", New("x", "h1")),
            ("x = null", AssignNull("x")),
            ("x = y", Assign("x", "y")),
            ("x = $g", LoadGlobal("x", "g")),
            ("$g = x", StoreGlobal("g", "x")),
            ("x = y.f", LoadField("x", "y", "f")),
            ("y.f = x", StoreField("y", "f", "x")),
            ("x.open()", Invoke("x", "open", "")),
            ("x.open() [pc3]", Invoke("x", "open", "pc3")),
            ("start(v)", ThreadStart("v")),
            ("observe q1", Observe("q1")),
        ],
    )
    def test_parses_each_form(self, text, expected):
        assert parse_program(text) == Atom(expected)

    def test_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_program("x += y")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as info:
            parse_program("x = y\nzzz ???")
        assert info.value.line_no == 2


class TestCompound:
    def test_empty_program_is_skip(self):
        assert parse_program("") == Skip()

    def test_comments_and_blanks_ignored(self):
        program = parse_program("# header\n\nx = y  # trailing\n")
        assert program == Atom(Assign("x", "y"))

    def test_choice(self):
        program = parse_program(
            """
            choice {
              x = y
            } or {
              x = null
            }
            """
        )
        assert isinstance(program, Choice)

    def test_loop(self):
        program = parse_program(
            """
            loop {
              x.next()
            }
            """
        )
        assert isinstance(program, Star)

    def test_nested_blocks(self):
        program = parse_program(
            """
            loop {
              choice {
                x = y
              } or {
                skip
              }
            }
            """
        )
        assert isinstance(program, Star)
        assert isinstance(program.body, Choice)

    def test_missing_close_brace(self):
        with pytest.raises(ParseError):
            parse_program("loop {\n x = y\n")

    def test_paper_figure1_program(self):
        program = parse_program(
            """
            x = new File
            y = x
            choice {
              z = x
            } or {
              skip
            }
            x.open()
            y.close()
            observe check1
            """
        )
        atoms = list(atoms_of(program))
        assert atoms[0] == New("x", "File")
        assert Invoke("x", "open", "") in atoms
        assert Observe("check1") in atoms


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "x = new h1\ny = x\nx.open()",
            "choice {\n x = y\n} or {\n x = null\n}",
            "loop {\n $g = x\n}",
            "observe q0\nstart(t)\nu = v.f",
        ],
    )
    def test_pretty_then_parse_is_identity(self, text):
        program = parse_program(text)
        reparsed = parse_program(pretty_program(program))
        assert reparsed == program
