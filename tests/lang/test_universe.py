"""Tests for syntactic universe collection."""

from repro.lang import collect_universe, parse_program


class TestCollectUniverse:
    def test_full_program(self):
        universe = collect_universe(
            parse_program(
                """
                x = new h1
                y = x
                z = null
                a = $g1
                $g2 = y
                b = x.f
                x.f2 = y
                x.open() [pc1]
                start(t)
                observe q1
                """
            )
        )
        assert universe.variables == frozenset(
            {"x", "y", "z", "a", "b", "t"}
        )
        assert universe.sites == frozenset({"h1"})
        assert universe.fields == frozenset({"f", "f2"})
        assert universe.globals == frozenset({"g1", "g2"})
        assert universe.methods == frozenset({"open"})
        assert universe.observe_labels == frozenset({"q1"})

    def test_empty_program(self):
        universe = collect_universe(parse_program(""))
        assert universe.variables == frozenset()
        assert universe.sites == frozenset()

    def test_nested_control_flow_collected(self):
        universe = collect_universe(
            parse_program(
                """
                loop {
                  choice {
                    u = new h9
                  } or {
                    v = u
                  }
                }
                """
            )
        )
        assert universe.variables == frozenset({"u", "v"})
        assert universe.sites == frozenset({"h9"})
