"""Unit tests for program AST construction helpers."""

import pytest

from repro.lang import (
    Assign,
    AssignNull,
    Atom,
    Choice,
    Invoke,
    New,
    Seq,
    Skip,
    Star,
    atoms_of,
    choice,
    seq,
)


class TestSeq:
    def test_empty_is_skip(self):
        assert seq() == Skip()

    def test_single_atom_coerced(self):
        program = seq(Assign("x", "y"))
        assert program == Atom(Assign("x", "y"))

    def test_right_associated(self):
        program = seq(Assign("a", "b"), Assign("c", "d"), Assign("e", "f"))
        assert isinstance(program, Seq)
        assert program.first == Atom(Assign("a", "b"))
        assert isinstance(program.second, Seq)

    def test_skip_units_removed(self):
        program = seq(Skip(), Assign("x", "y"), Skip())
        assert program == Atom(Assign("x", "y"))

    def test_rejects_non_program(self):
        with pytest.raises(TypeError):
            seq("not a program")


class TestChoice:
    def test_requires_a_branch(self):
        with pytest.raises(ValueError):
            choice()

    def test_two_branches(self):
        program = choice(Assign("x", "y"), AssignNull("x"))
        assert isinstance(program, Choice)

    def test_single_branch_collapses(self):
        assert choice(AssignNull("x")) == Atom(AssignNull("x"))


class TestAtomsOf:
    def test_atoms_in_syntax_order(self):
        program = seq(
            New("x", "h1"),
            choice(Assign("y", "x"), AssignNull("y")),
            Star(Atom(Invoke("x", "m"))),
        )
        atoms = list(atoms_of(program))
        assert atoms == [
            New("x", "h1"),
            Assign("y", "x"),
            AssignNull("y"),
            Invoke("x", "m"),
        ]

    def test_skip_has_no_atoms(self):
        assert list(atoms_of(Skip())) == []


class TestStructuralEquality:
    def test_commands_hashable_and_equal(self):
        assert New("x", "h") == New("x", "h")
        assert hash(Assign("a", "b")) == hash(Assign("a", "b"))
        assert Assign("a", "b") != Assign("b", "a")

    def test_invoke_default_label(self):
        assert Invoke("x", "open") == Invoke("x", "open", "")
