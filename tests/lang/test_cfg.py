"""Tests for CFG construction from structured programs."""

from repro.lang import (
    Assign,
    AssignNull,
    Atom,
    New,
    Observe,
    Skip,
    Star,
    build_cfg,
    choice,
    seq,
)

A = Assign("a", "b")
B = AssignNull("c")


def _paths(cfg, max_len=30):
    """All command sequences from entry to exit (assumes acyclic or bounded)."""
    results = []

    def walk(node, acc, depth):
        if depth > max_len:
            return
        if node == cfg.exit:
            results.append(tuple(acc))
        for edge in cfg.successors(node):
            nxt = acc + ([edge.command] if edge.command else [])
            walk(edge.dst, nxt, depth + 1)

    walk(cfg.entry, [], 0)
    return results


class TestBuildCfg:
    def test_skip_is_epsilon(self):
        cfg = build_cfg(Skip())
        assert _paths(cfg) == [()]

    def test_atom_single_edge(self):
        cfg = build_cfg(Atom(A))
        assert _paths(cfg) == [(A,)]

    def test_seq_path(self):
        cfg = build_cfg(seq(A, B))
        assert _paths(cfg) == [(A, B)]

    def test_choice_two_paths(self):
        cfg = build_cfg(choice(A, B))
        assert sorted(_paths(cfg), key=repr) == sorted([(A,), (B,)], key=repr)

    def test_star_creates_cycle(self):
        cfg = build_cfg(Star(Atom(A)))
        paths = set(_paths(cfg, max_len=6))
        assert () in paths
        assert (A,) in paths
        assert (A, A) in paths

    def test_entry_exit_distinct(self):
        cfg = build_cfg(Atom(A))
        assert cfg.entry != cfg.exit

    def test_predecessors_inverse_of_successors(self):
        cfg = build_cfg(seq(A, choice(B, New("x", "h"))))
        for edge in cfg.edges:
            assert edge in cfg.successors(edge.src)
            assert edge in cfg.predecessors(edge.dst)

    def test_observe_edges_indexed_by_label(self):
        program = seq(A, Observe("q1"), B, Observe("q2"))
        cfg = build_cfg(program)
        table = cfg.observe_edges()
        assert set(table) == {"q1", "q2"}
        assert all(len(edges) == 1 for edges in table.values())
