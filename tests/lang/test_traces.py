"""Tests for the trace semantics (Figure 2)."""

from repro.lang import (
    Assign,
    AssignNull,
    Atom,
    New,
    Skip,
    Star,
    choice,
    enumerate_traces,
    seq,
    trace_count,
)

A = Assign("a", "b")
B = AssignNull("c")
C = New("d", "h")


class TestEnumerateTraces:
    def test_skip_has_empty_trace(self):
        assert list(enumerate_traces(Skip())) == [()]

    def test_atom(self):
        assert list(enumerate_traces(Atom(A))) == [(A,)]

    def test_seq_concatenates(self):
        assert list(enumerate_traces(seq(A, B))) == [(A, B)]

    def test_choice_unions(self):
        traces = set(enumerate_traces(choice(A, B)))
        assert traces == {(A,), (B,)}

    def test_seq_of_choice_distributes(self):
        program = seq(choice(A, B), C)
        assert set(enumerate_traces(program)) == {(A, C), (B, C)}

    def test_star_includes_empty(self):
        program = Star(Atom(A))
        traces = set(enumerate_traces(program, max_unroll=3))
        assert traces == {(), (A,), (A, A), (A, A, A)}

    def test_star_of_choice(self):
        program = Star(choice(A, B))
        traces = set(enumerate_traces(program, max_unroll=2))
        assert () in traces
        assert (A, B) in traces
        assert (B, A) in traces
        assert len(traces) == 1 + 2 + 4

    def test_nested_star(self):
        program = Star(Star(Atom(A)))
        traces = set(enumerate_traces(program, max_unroll=2))
        assert () in traces and (A,) in traces and (A, A) in traces


class TestTraceCount:
    def test_linear_program(self):
        assert trace_count(seq(A, B, C)) == 1

    def test_two_choices(self):
        assert trace_count(seq(choice(A, B), choice(A, C))) == 4

    def test_star_counts_unrollings(self):
        assert trace_count(Star(Atom(A)), max_unroll=4) == 5
