"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "proven" in result.stdout
        assert "['x', 'y']" in result.stdout
        assert "impossible" in result.stdout

    def test_thread_escape_demo(self):
        result = run_example("thread_escape_demo.py")
        assert result.returncode == 0, result.stderr
        assert "h1" in result.stdout and "h2" in result.stdout
        assert "max tracked disjuncts: 1" in result.stdout

    def test_file_protocol_audit(self):
        result = run_example("file_protocol_audit.py")
        assert result.returncode == 0, result.stderr
        assert "PROVEN" in result.stdout
        assert "IMPOSSIBLE" in result.stdout

    def test_devirtualization(self):
        result = run_example("devirtualization.py")
        assert result.returncode == 0, result.stderr
        assert "proven" in result.stdout
        assert "impossible" in result.stdout
        assert "RESULT: proven with cheapest abstraction" in result.stdout

    def test_recursive_structures(self):
        result = run_example("recursive_structures.py")
        assert result.returncode == 0, result.stderr
        assert "recursive: ['Node.grow']" in result.stdout
        assert "PROVEN" in result.stdout
        assert "IMPOSSIBLE" in result.stdout

    def test_full_evaluation_quick(self):
        result = run_example("full_evaluation.py", "--quick")
        assert result.returncode == 0, result.stderr
        assert "Table 2" in result.stdout
        assert "Figure 12" in result.stdout
        assert "Figure 13" in result.stdout
