"""Tests for parameter spaces and the parametric-analysis interface."""

import pytest

from repro.core.parametric import MapParamSpace, SubsetParamSpace
from repro.lang import Assign, Invoke, New
from repro.typestate import TsState, TypestateAnalysis, file_automaton


class TestSubsetParamSpace:
    def test_cost_is_cardinality(self):
        space = SubsetParamSpace(frozenset({"a", "b", "c"}))
        assert space.cost(frozenset()) == 0
        assert space.cost(frozenset({"a", "b"})) == 2

    def test_bottom_is_empty(self):
        space = SubsetParamSpace(frozenset({"a"}))
        assert space.bottom() == frozenset()

    def test_iter_all_enumerates_powerset_by_cost(self):
        space = SubsetParamSpace(frozenset({"a", "b"}))
        all_ps = list(space.iter_all())
        assert len(all_ps) == 4
        costs = [space.cost(p) for p in all_ps]
        assert costs == sorted(costs)

    def test_size_log2(self):
        assert SubsetParamSpace(frozenset({"a", "b", "c"})).size_log2() == 3


class TestMapParamSpace:
    def test_lookup(self):
        space = MapParamSpace(frozenset({"h1", "h2"}), cheap="E", costly="L")
        p = frozenset({"h1"})
        assert space.lookup(p, "h1") == "L"
        assert space.lookup(p, "h2") == "E"

    def test_cost_counts_costly_keys(self):
        space = MapParamSpace(frozenset({"h1", "h2", "h3"}))
        assert space.cost(frozenset({"h1", "h3"})) == 2

    def test_iter_all(self):
        space = MapParamSpace(frozenset({"h1", "h2"}))
        assert len(list(space.iter_all())) == 4


class TestRunTrace:
    def test_trace_states_includes_every_point(self):
        analysis = TypestateAnalysis(
            file_automaton(), "h", frozenset({"x", "y"})
        )
        trace = (New("x", "h"), Assign("y", "x"), Invoke("x", "open"))
        p = frozenset({"x", "y"})
        states = analysis.trace_states(trace, p, analysis.initial_state())
        assert len(states) == 4
        assert states[-1] == TsState.make(["opened"], ["x", "y"])

    def test_run_trace_matches_last_state(self):
        analysis = TypestateAnalysis(file_automaton(), "h", frozenset({"x"}))
        trace = (New("x", "h"), Invoke("x", "open"))
        p = frozenset({"x"})
        d0 = analysis.initial_state()
        assert (
            analysis.run_trace(trace, p, d0)
            == analysis.trace_states(trace, p, d0)[-1]
        )
