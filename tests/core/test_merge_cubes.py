"""Tests for semantics-preserving cube merging (used by wp synthesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.formula import (
    Literal,
    conj,
    disj,
    evaluate,
    lit,
    merge_cubes,
    nlit,
    simplify,
    to_dnf,
)
from repro.escape.domain import ESC, LOC, NIL
from repro.escape.meta import EscapeTheory, SiteIs, VarIs
from tests.toys import TOY, StateFact

ESCAPE = EscapeTheory()


class TestBooleanMerging:
    def test_complementary_pair_collapses(self):
        a, b = StateFact("a"), StateFact("b")
        formula = disj(conj(lit(a), lit(b)), conj(lit(a), nlit(b)))
        merged = merge_cubes(to_dnf(formula, TOY), TOY)
        assert merged.cubes == (frozenset([Literal(a, True)]),)

    def test_no_merge_without_exhaustion(self):
        a, b, c = StateFact("a"), StateFact("b"), StateFact("c")
        formula = disj(conj(lit(a), lit(b)), conj(lit(a), lit(c)))
        merged = merge_cubes(to_dnf(formula, TOY), TOY)
        assert len(merged.cubes) == 2

    def test_cascading_merges(self):
        a, b, c = StateFact("a"), StateFact("b"), StateFact("c")
        formula = disj(
            conj(lit(a), lit(b), lit(c)),
            conj(lit(a), lit(b), nlit(c)),
            conj(lit(a), nlit(b)),
        )
        merged = merge_cubes(to_dnf(formula, TOY), TOY)
        assert merged.cubes == (frozenset([Literal(a, True)]),)


class TestExclusiveValueMerging:
    def test_full_value_sweep_collapses(self):
        u_all = disj(
            *(
                conj(lit(VarIs("u", o)), lit(VarIs("v", LOC)))
                for o in (LOC, ESC, NIL)
            )
        )
        merged = merge_cubes(to_dnf(u_all, ESCAPE), ESCAPE)
        assert merged.cubes == (frozenset([Literal(VarIs("v", LOC), True)]),)

    def test_partial_sweep_not_merged(self):
        partial = disj(
            conj(lit(VarIs("u", LOC)), lit(VarIs("v", LOC))),
            conj(lit(VarIs("u", ESC)), lit(VarIs("v", LOC))),
        )
        merged = merge_cubes(to_dnf(partial, ESCAPE), ESCAPE)
        assert len(merged.cubes) == 2

    def test_site_groups_have_two_values(self):
        sweep = disj(
            conj(lit(SiteIs("h", LOC)), lit(VarIs("v", NIL))),
            conj(lit(SiteIs("h", ESC)), lit(VarIs("v", NIL))),
        )
        merged = merge_cubes(to_dnf(sweep, ESCAPE), ESCAPE)
        assert merged.cubes == (frozenset([Literal(VarIs("v", NIL), True)]),)


formulas = st.recursive(
    st.sampled_from(
        [lit(StateFact(n)) for n in "abc"]
        + [nlit(StateFact(n)) for n in "abc"]
    ),
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3).map(lambda fs: conj(*fs)),
        st.lists(children, min_size=1, max_size=3).map(lambda fs: disj(*fs)),
    ),
    max_leaves=10,
)


@given(formulas)
@settings(max_examples=200, deadline=None)
def test_merge_preserves_semantics(formula):
    dnf = simplify(to_dnf(formula, TOY), TOY)
    merged = merge_cubes(dnf, TOY)
    for bits in range(8):
        d = frozenset(n for i, n in enumerate("abc") if bits >> i & 1)
        assert evaluate(merged, TOY, frozenset(), d) == evaluate(
            dnf, TOY, frozenset(), d
        )


@given(formulas)
@settings(max_examples=100, deadline=None)
def test_merge_never_grows(formula):
    dnf = simplify(to_dnf(formula, TOY), TOY)
    merged = merge_cubes(dnf, TOY)
    assert len(merged.cubes) <= len(dnf.cubes)
