"""Property tests for the client theories' semantic rewrites.

``normalize_cube``, ``lit_entails``, ``cube_entails_literal`` and
``literals_exhaust`` feed every DNF manipulation; each is validated
against brute-force evaluation over small (p, d) universes for all
three client theories.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.formula import Literal, evaluate_cube, evaluate_literal
from repro.escape.domain import ESC, EscSchema, LOC, NIL
from repro.escape.meta import EscapeTheory, FieldIs, SiteIs, VarIs
from repro.provenance.domain import PT_TOP, PtSchema
from repro.provenance.meta import ProvenanceTheory, PtHas, PtParam, PtTop
from repro.typestate import TypestateTheory, file_automaton
from repro.typestate.meta import ERR, TsParam, TsType, TsVar

# -- universes ---------------------------------------------------------------

ESC_SCHEMA = EscSchema(["u", "v"], ["f"])
PT_SCHEMA = PtSchema(["x", "y"])
SITES = ("h1", "h2")


def escape_pairs():
    for p_bits in range(4):
        p = frozenset(s for i, s in enumerate(SITES) if p_bits >> i & 1)
        for d in ESC_SCHEMA.all_states():
            yield p, d


def typestate_pairs():
    from tests.core.test_wp_consistency import TS_VARS, subsets, ts_states

    automaton = file_automaton()
    for p in subsets(TS_VARS):
        for d in ts_states(automaton):
            yield p, d


def provenance_pairs():
    values = [PT_TOP, frozenset(), frozenset({"h1"}), frozenset({"h1", "h2"})]
    for p_bits in range(4):
        p = frozenset(s for i, s in enumerate(SITES) if p_bits >> i & 1)
        for vx in values:
            for vy in values:
                yield p, PT_SCHEMA.state({"x": vx, "y": vy})


ESCAPE_LITS = [
    Literal(prim, positive)
    for positive in (True, False)
    for prim in (
        [VarIs(v, o) for v in ("u", "v") for o in (LOC, ESC, NIL)]
        + [FieldIs("f", o) for o in (LOC, ESC, NIL)]
        + [SiteIs(h, o) for h in SITES for o in (LOC, ESC)]
    )
]

TS_LITS = [
    Literal(prim, positive)
    for positive in (True, False)
    for prim in (
        [ERR]
        + [TsVar(v) for v in ("x", "y")]
        + [TsParam(v) for v in ("x", "y")]
        + [TsType(s) for s in ("closed", "opened")]
    )
]

PT_LITS = [
    Literal(prim, positive)
    for positive in (True, False)
    for prim in (
        [PtTop(v) for v in ("x", "y")]
        + [PtHas(v, h) for v in ("x", "y") for h in SITES]
        + [PtParam(h) for h in SITES]
    )
]

CASES = [
    ("escape", EscapeTheory(), ESCAPE_LITS, list(escape_pairs())),
    ("typestate", TypestateTheory(), TS_LITS, list(typestate_pairs())),
    ("provenance", ProvenanceTheory(), PT_LITS, list(provenance_pairs())),
]


def _cube_strategy(literals):
    return st.frozensets(st.sampled_from(literals), min_size=0, max_size=5)


@pytest.mark.parametrize("name,theory,literals,pairs", CASES, ids=lambda c: c if isinstance(c, str) else "")
def test_normalize_cube_preserves_semantics(name, theory, literals, pairs):
    @given(_cube_strategy(literals))
    @settings(max_examples=150, deadline=None)
    def run(cube):
        normalized = theory.normalize_cube(cube)
        for p, d in pairs:
            before = evaluate_cube(cube, theory, p, d)
            after = (
                False
                if normalized is None
                else evaluate_cube(normalized, theory, p, d)
            )
            assert before == after, (cube, normalized, p, d)

    run()


@pytest.mark.parametrize("name,theory,literals,pairs", CASES, ids=lambda c: c if isinstance(c, str) else "")
def test_normalize_cube_idempotent(name, theory, literals, pairs):
    @given(_cube_strategy(literals))
    @settings(max_examples=150, deadline=None)
    def run(cube):
        normalized = theory.normalize_cube(cube)
        if normalized is not None:
            assert theory.normalize_cube(normalized) == normalized

    run()


@pytest.mark.parametrize("name,theory,literals,pairs", CASES, ids=lambda c: c if isinstance(c, str) else "")
def test_lit_entails_sound(name, theory, literals, pairs):
    for a in literals:
        for b in literals:
            if theory.lit_entails(a, b):
                for p, d in pairs:
                    if evaluate_literal(a, theory, p, d):
                        assert evaluate_literal(b, theory, p, d), (a, b)


@pytest.mark.parametrize("name,theory,literals,pairs", CASES, ids=lambda c: c if isinstance(c, str) else "")
def test_cube_entails_literal_sound(name, theory, literals, pairs):
    @given(_cube_strategy(literals), st.sampled_from(literals))
    @settings(max_examples=150, deadline=None)
    def run(cube, target):
        if theory.cube_entails_literal(cube, target):
            for p, d in pairs:
                if evaluate_cube(cube, theory, p, d):
                    assert evaluate_literal(target, theory, p, d)

    run()


@pytest.mark.parametrize("name,theory,literals,pairs", CASES, ids=lambda c: c if isinstance(c, str) else "")
def test_literals_exhaust_sound(name, theory, literals, pairs):
    @given(st.frozensets(st.sampled_from(literals), min_size=1, max_size=4))
    @settings(max_examples=150, deadline=None)
    def run(lits):
        if theory.literals_exhaust(lits):
            for p, d in pairs:
                assert any(
                    evaluate_literal(l, theory, p, d) for l in lits
                ), lits

    run()
