"""Failure-injection tests for TRACER's robustness guarantees."""

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.formula import TRUE, lit
from repro.core.stats import QueryStatus
from repro.core.tracer import ProgressError
from repro.lang import parse_program
from repro.typestate import (
    TypestateClient,
    TypestateMeta,
    TypestateQuery,
    file_automaton,
)
from repro.typestate.meta import TsParam

PROGRAM = parse_program(
    """
    x = new File
    x.open()
    x.close()
    observe pc
    """
)


def _client():
    return TypestateClient(
        PROGRAM, file_automaton(), "File", frozenset({"x"})
    )


QUERY = TypestateQuery("pc", frozenset({"closed"}))


class TestProgressGuard:
    def test_broken_meta_raises_progress_error(self):
        """A meta whose failure condition never covers the current
        abstraction would loop forever; TRACER detects it instead."""

        class NoProgress(TypestateMeta):
            def wp_primitive(self, command, prim):
                # Constant absurd condition: only abstractions
                # containing a variable that does not exist.
                return lit(TsParam("ghost"))

        client = _client()
        client.meta = NoProgress(client.analysis)
        with pytest.raises(ProgressError):
            Tracer(client, TracerConfig(k=None)).solve(QUERY)


class TestFormulaBudget:
    def test_blowup_marks_query_exhausted(self):
        """An absurdly small cube budget makes the backward pass blow
        up; the query is reported unresolved, not crashed — mirroring
        how the paper's k=None runs exhaust memory on big benchmarks."""
        client = _client()
        record = Tracer(
            client, TracerConfig(k=None, max_cubes=1)
        ).solve(QUERY)
        assert record.status is QueryStatus.EXHAUSTED

    def test_generous_budget_unaffected(self):
        client = _client()
        record = Tracer(
            client, TracerConfig(k=None, max_cubes=100_000)
        ).solve(QUERY)
        assert record.status in (QueryStatus.PROVEN, QueryStatus.IMPOSSIBLE)
