"""Property-based tests (hypothesis) for the MinCostSAT solver."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.minsat import MinCostSat

VARS = ["v0", "v1", "v2", "v3", "v4"]

literals = st.tuples(st.sampled_from(VARS), st.booleans())
clauses = st.lists(
    st.frozensets(literals, min_size=1, max_size=3), min_size=0, max_size=8
)
costs = st.fixed_dictionaries({v: st.integers(1, 5) for v in VARS})


def brute_force(clause_list, cost_map):
    best = None
    for bits in itertools.product([False, True], repeat=len(VARS)):
        assign = dict(zip(VARS, bits))
        if all(any(assign[v] == s for v, s in c) for c in clause_list):
            cost = sum(cost_map[v] for v in VARS if assign[v])
            best = cost if best is None or cost < best else best
    return best


@given(clauses, costs)
@settings(max_examples=300, deadline=None)
def test_solver_finds_minimum_cost(clause_list, cost_map):
    solver = MinCostSat(costs=cost_map)
    for clause in clause_list:
        solver.add_clause(clause)
    expected = brute_force(clause_list, cost_map)
    model = solver.solve()
    if expected is None:
        assert model is None
    else:
        assert model is not None
        # The model satisfies every clause ...
        for clause in clause_list:
            assert any((v in model) == s for v, s in clause)
        # ... at exactly the minimum cost.
        assert sum(cost_map[v] for v in model) == expected


@given(clauses)
@settings(max_examples=200, deadline=None)
def test_solve_is_deterministic(clause_list):
    solver = MinCostSat()
    for clause in clause_list:
        solver.add_clause(clause)
    assert solver.solve() == solver.solve()


@given(clauses)
@settings(max_examples=200, deadline=None)
def test_satisfiable_iff_model_exists(clause_list):
    solver = MinCostSat()
    for clause in clause_list:
        solver.add_clause(clause)
    assert solver.is_satisfiable() == (solver.solve() is not None)
