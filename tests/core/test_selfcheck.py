"""Tests for the client self-checking utilities."""

import itertools

import pytest

from repro.core.formula import FALSE, TRUE, disj, lit
from repro.core.selfcheck import (
    check_soundness_on_trace,
    check_transfer_total,
    check_wp,
)
from repro.lang import Assign, Invoke, New
from repro.typestate import (
    TypestateAnalysis,
    TypestateMeta,
    file_automaton,
)
from repro.typestate.meta import ERR, TsType, TsVar

VARS = ("x", "y")


def _analysis():
    return TypestateAnalysis(file_automaton(), "h", frozenset(VARS))


def _pairs(analysis):
    from tests.core.test_wp_consistency import TS_VARS, subsets, ts_states

    return [
        (p, d)
        for p in subsets(TS_VARS)
        for d in ts_states(analysis.automaton)
    ]


COMMANDS = [New("x", "h"), Assign("y", "x"), Invoke("x", "open")]
PRIMS = [ERR, TsVar("x"), TsVar("y"), TsType("closed"), TsType("opened")]


class TestCheckWp:
    def test_correct_meta_passes(self):
        analysis = _analysis()
        meta = TypestateMeta(analysis)
        violations = check_wp(
            analysis, meta, COMMANDS, PRIMS, _pairs(analysis)
        )
        assert violations == []

    def test_broken_meta_caught(self):
        analysis = _analysis()
        meta = TypestateMeta(analysis)

        class Broken(TypestateMeta):
            def wp_primitive(self, command, prim):
                if isinstance(command, Assign) and prim == TsVar("y"):
                    return TRUE  # wrong: loses the param/alias condition
                return super().wp_primitive(command, prim)

        violations = check_wp(
            analysis, Broken(analysis), COMMANDS, PRIMS, _pairs(analysis)
        )
        assert violations
        assert all(v.kind == "wp-mismatch" for v in violations)
        assert "wp evaluates to" in str(violations[0])

    def test_violation_limit_respected(self):
        analysis = _analysis()

        class VeryBroken(TypestateMeta):
            def wp_primitive(self, command, prim):
                return FALSE

        violations = check_wp(
            analysis,
            VeryBroken(analysis),
            COMMANDS,
            PRIMS,
            _pairs(analysis),
            max_violations=3,
        )
        assert len(violations) == 3


class TestCheckTransferTotal:
    def test_correct_transfer_passes(self):
        analysis = _analysis()
        assert (
            check_transfer_total(analysis, COMMANDS, _pairs(analysis)) == []
        )

    def test_partial_transfer_caught(self):
        analysis = _analysis()
        original = analysis.transfer

        class Partial(TypestateAnalysis):
            def transfer(self, command, p, d):
                if isinstance(command, Invoke):
                    raise RuntimeError("boom")
                return original(command, p, d)

        broken = Partial(file_automaton(), "h", frozenset(VARS))
        violations = check_transfer_total(
            broken, COMMANDS, _pairs(analysis), max_violations=2
        )
        assert violations
        assert violations[0].kind == "transfer-partial"


class TestCheckSoundness:
    def test_sound_meta_passes(self):
        analysis = _analysis()
        meta = TypestateMeta(analysis)
        trace = (New("x", "h"), Invoke("x", "open"))
        fail = disj(lit(ERR), lit(TsType("opened")))
        params = [
            frozenset(c)
            for r in range(3)
            for c in itertools.combinations(VARS, r)
        ]
        violations = check_soundness_on_trace(
            analysis,
            meta,
            trace,
            frozenset(),
            analysis.initial_state(),
            fail,
            params,
        )
        assert violations == []

    def test_non_counterexample_reported(self):
        analysis = _analysis()
        meta = TypestateMeta(analysis)
        trace = (New("x", "h"),)
        fail = lit(TsType("opened"))
        violations = check_soundness_on_trace(
            analysis,
            meta,
            trace,
            frozenset(),
            analysis.initial_state(),
            fail,
            [],
        )
        assert violations
        assert violations[0].kind == "not-a-counterexample"
