"""Edge-case tests for the TRACER driver."""

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.core.tracer import run_query_group
from repro.lang import parse_program
from repro.typestate import TypestateClient, TypestateQuery, file_automaton

PROGRAM = parse_program(
    """
    x = new File
    y = x
    x.open()
    y.close()
    observe check1
    """
)


def _client():
    return TypestateClient(
        PROGRAM, file_automaton(), "File", frozenset({"x", "y"})
    )


CHECK1 = TypestateQuery("check1", frozenset({"closed"}))


class TestBudgets:
    def test_iteration_budget_exhausts(self):
        record = Tracer(_client(), TracerConfig(k=1, max_iterations=1)).solve(CHECK1)
        assert record.status is QueryStatus.EXHAUSTED
        assert record.iterations == 1

    def test_time_budget_exhausts(self):
        record = Tracer(
            _client(), TracerConfig(k=1, max_seconds=0.0)
        ).solve(CHECK1)
        assert record.status is QueryStatus.EXHAUSTED

    def test_generous_budget_resolves(self):
        record = Tracer(
            _client(), TracerConfig(k=1, max_iterations=100, max_seconds=600)
        ).solve(CHECK1)
        assert record.status is QueryStatus.PROVEN


class TestRecords:
    def test_record_fields_populated(self):
        record = Tracer(_client(), TracerConfig(k=1)).solve(CHECK1)
        assert record.query_id == str(CHECK1)
        assert record.forward_runs == record.iterations
        assert record.time_seconds > 0
        assert record.max_disjuncts >= 1

    def test_trivially_true_query(self):
        query = TypestateQuery("check1", frozenset({"closed", "opened"}))
        # Allowed = all states and no error path? There IS an error path
        # (close on closed) under weak updates, so the empty abstraction
        # does not suffice — but some abstraction does.
        record = Tracer(_client(), TracerConfig(k=1)).solve(query)
        assert record.status is QueryStatus.PROVEN

    def test_empty_query_list(self):
        assert run_query_group(_client(), []) == {}


class TestTheoryValidation:
    def test_rejects_non_param_theory(self):
        client = _client()

        class FakeTheory:
            pass

        client.meta.theory = FakeTheory()
        with pytest.raises(TypeError):
            Tracer(client).solve(CHECK1)
