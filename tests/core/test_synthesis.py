"""Tests for automatic wp synthesis (the paper's Section 8 future work).

Ground truth on two levels: (1) requirement (2) of Section 4 checked
by exhaustive enumeration against the forward semantics; (2) semantic
equivalence with the handwritten Figure 10/11 functions.
"""

import itertools
import random

import pytest

from repro.core.formula import evaluate
from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.escape import EscSchema, EscapeAnalysis, EscapeClient, EscapeMeta, EscapeQuery
from repro.escape.meta import FieldIs, SiteIs, VarIs
from repro.escape.domain import ESC, LOC, NIL
from repro.escape.synth import synthesized_escape_meta
from repro.typestate import (
    TypestateAnalysis,
    TypestateClient,
    TypestateMeta,
    TypestateQuery,
    file_automaton,
    stress_automaton,
)
from repro.typestate.synth import synthesized_typestate_meta
from tests.core.test_wp_consistency import (
    ESC_COMMANDS,
    ESC_SCHEMA as SCHEMA,
    ESC_SITES as SITES,
    TS_COMMANDS,
    TS_STRESS_COMMANDS as STRESS_COMMANDS,
    TS_VARS as VARS,
    esc_primitives as all_primitives,
    subsets,
    ts_primitives as ts_all_primitives,
    ts_states as ts_all_states,
)
from tests.randprog import random_escape_program, random_typestate_program


def all_params():
    return subsets(SITES)


def ts_all_params():
    return subsets(VARS)


class TestEscapeSynthesis:
    @pytest.mark.parametrize("command", ESC_COMMANDS, ids=repr)
    def test_matches_forward_semantics(self, command):
        analysis = EscapeAnalysis(SCHEMA, frozenset(SITES))
        meta = synthesized_escape_meta(analysis)
        theory = meta.theory
        for prim in all_primitives():
            pre = meta.wp_primitive(command, prim)
            for p in all_params():
                for d in SCHEMA.all_states():
                    post = analysis.transfer(command, p, d)
                    assert evaluate(pre, theory, p, d) == theory.holds(
                        prim, p, post
                    ), (command, prim)

    @pytest.mark.parametrize("command", ESC_COMMANDS, ids=repr)
    def test_equivalent_to_handwritten(self, command):
        analysis = EscapeAnalysis(SCHEMA, frozenset(SITES))
        synthesized = synthesized_escape_meta(analysis)
        handwritten = EscapeMeta(analysis)
        theory = handwritten.theory
        for prim in all_primitives():
            synth = synthesized.wp_primitive(command, prim)
            hand = handwritten.wp_primitive(command, prim)
            for p in all_params():
                for d in SCHEMA.all_states():
                    assert evaluate(synth, theory, p, d) == evaluate(
                        hand, theory, p, d
                    ), (command, prim)


class TestTypestateSynthesis:
    @pytest.mark.parametrize("command", TS_COMMANDS, ids=repr)
    def test_matches_forward_semantics_file(self, command):
        self._check(file_automaton(), command)

    @pytest.mark.parametrize("command", STRESS_COMMANDS, ids=repr)
    def test_matches_forward_semantics_stress(self, command):
        self._check(stress_automaton(["m"]), command)

    def _check(self, automaton, command):
        analysis = TypestateAnalysis(automaton, "h", frozenset(VARS))
        meta = synthesized_typestate_meta(analysis)
        handwritten = TypestateMeta(analysis)
        theory = meta.theory
        for prim in ts_all_primitives(automaton):
            pre = meta.wp_primitive(command, prim)
            hand = handwritten.wp_primitive(command, prim)
            for p in ts_all_params():
                for d in ts_all_states(automaton):
                    post = analysis.transfer(command, p, d)
                    expected = theory.holds(prim, p, post)
                    assert evaluate(pre, theory, p, d) == expected, (command, prim)
                    assert evaluate(hand, theory, p, d) == expected


class TestEndToEndWithSynthesizedMeta:
    """TRACER with synthesized backward functions is still optimum."""

    @pytest.mark.parametrize("seed", range(10))
    def test_escape_optimality(self, seed):
        rng = random.Random(500 + seed)
        program = random_escape_program(rng, length=6)
        from tests.randprog import FIELDS, SITES as RSITES, VARS as RVARS

        client = EscapeClient(
            program, EscSchema(RVARS, FIELDS), frozenset(RSITES)
        )
        handwritten = Tracer(client, TracerConfig(k=3, max_iterations=100)).solve(
            EscapeQuery("q", "x")
        )
        client.meta = synthesized_escape_meta(client.analysis)
        synthesized = Tracer(client, TracerConfig(k=3, max_iterations=100)).solve(
            EscapeQuery("q", "x")
        )
        assert synthesized.status == handwritten.status
        assert synthesized.abstraction_cost == handwritten.abstraction_cost

    @pytest.mark.parametrize("seed", range(10))
    def test_typestate_optimality(self, seed):
        rng = random.Random(900 + seed)
        program = random_typestate_program(rng, length=6)
        from tests.randprog import VARS as RVARS

        client = TypestateClient(
            program, file_automaton(), "h1", frozenset(RVARS)
        )
        query = TypestateQuery("q", frozenset({"closed"}))
        handwritten = Tracer(client, TracerConfig(k=3, max_iterations=100)).solve(query)
        client.meta = synthesized_typestate_meta(client.analysis)
        synthesized = Tracer(client, TracerConfig(k=3, max_iterations=100)).solve(query)
        assert synthesized.status == handwritten.status
        assert synthesized.abstraction_cost == handwritten.abstraction_cost
