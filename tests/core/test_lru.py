"""Tests for the bounded LRU used by the hot memoisation caches."""

import pytest

from repro.core.formula import Theory, conj, lit
from repro.core.lru import LruCache


class TestLruCache:
    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_get_put_roundtrip(self):
        cache = LruCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_counts_hits_and_misses(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_evicts_one_cold_entry_not_everything(self):
        cache = LruCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.put("d", "D")  # overflows: evicts "a" only
        assert "a" not in cache
        assert all(k in cache for k in "bcd")
        assert len(cache) == 3

    def test_lookup_refreshes_recency(self):
        cache = LruCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.get("a")  # "a" is now hottest; "b" is coldest
        cache.put("d", "D")
        assert "a" in cache
        assert "b" not in cache

    def test_cached_none_is_distinguishable_from_absent(self):
        sentinel = object()
        cache = LruCache(3)
        cache.put("unsat", None)
        assert cache.get("unsat", sentinel) is None
        assert cache.get("ghost", sentinel) is sentinel


class TestNormalizeCachedEviction:
    """The theory normalisation memo must degrade gracefully when its
    working set crosses the bound (no clear-all thrashing)."""

    def test_bound_evicts_incrementally(self):
        from repro.core.formula import Literal, Primitive
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Atom(Primitive):
            name: str

        theory = Theory()
        theory.NORMALIZE_CACHE_SIZE = 8
        cubes = [frozenset({Literal(Atom(f"a{i}"), True)}) for i in range(12)]
        for cube in cubes:
            theory.normalize_cached(cube)
        cache = theory._normalize_cache
        assert len(cache) == 8
        # The most recent entries survived; the oldest were evicted one
        # at a time.
        assert cubes[-1] in cache
        assert cubes[0] not in cache

    def test_memoised_result_matches_direct(self):
        from repro.core.formula import Literal, Primitive
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Atom(Primitive):
            name: str

        theory = Theory()
        contradictory = frozenset(
            {Literal(Atom("x"), True), Literal(Atom("x"), False)}
        )
        assert theory.normalize_cached(contradictory) is None
        # Second lookup is served from cache and still None.
        assert theory.normalize_cached(contradictory) is None
        assert theory._normalize_cache.hits >= 1
