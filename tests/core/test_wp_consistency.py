"""Generic wp-vs-forward consistency check for every client.

Requirement (2) of Section 4 determines the backward transfer
functions semantically::

    gamma([[a]]b(f)) = {(p, d) | (p, [[a]]p(d)) in gamma(f)}

which on small universes is decidable by enumeration: for every
primitive ``prim``, abstraction ``p`` and state ``d``,

    holds(wp(prim), p, d)  ==  holds(prim, p, transfer(command, p, d))

The guarded-update IR derives each client's ``wp_primitive`` from the
same case table as its forward transfer, so one enumeration covers all
clients uniformly — this module replaces the per-client bespoke wp
suites.  Every command kind of the language appears in every client's
command list.
"""

import itertools

import pytest

from repro.core.formula import Lit, Literal, evaluate
from repro.escape import (
    ESC,
    EscSchema,
    EscapeAnalysis,
    EscapeMeta,
    FieldIs,
    LOC,
    NIL,
    SiteIs,
    VarIs,
)
from repro.lang import (
    Assign,
    AssignNull,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)
from repro.provenance import (
    PT_TOP,
    ProvenanceAnalysis,
    ProvenanceMeta,
    PtHas,
    PtParam,
    PtSchema,
    PtTop,
)
from repro.typestate import (
    TOP,
    TsErr,
    TsParam,
    TsState,
    TsType,
    TsVar,
    TypestateAnalysis,
    TypestateMeta,
    file_automaton,
    stress_automaton,
)


def subsets(universe):
    items = sorted(universe)
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            yield frozenset(combo)


class Setup:
    """One client instantiation with exhaustive small enumerations."""

    def __init__(self, name, analysis, meta, primitives, params, states, commands):
        self.name = name
        self.analysis = analysis
        self.meta = meta
        self.primitives = tuple(primitives)
        self.params = tuple(params)
        self.states = tuple(states)
        self.commands = tuple(commands)


# -- escape -------------------------------------------------------------------

ESC_SCHEMA = EscSchema(["u", "v"], ["f"])
ESC_SITES = ("h1", "h2")

ESC_COMMANDS = (
    New("u", "h1"),
    New("v", "h2"),
    Assign("u", "v"),
    Assign("v", "u"),
    Assign("u", "u"),
    AssignNull("u"),
    LoadGlobal("v", "g"),
    StoreGlobal("g", "u"),
    ThreadStart("v"),
    LoadField("u", "v", "f"),
    LoadField("u", "u", "f"),
    LoadField("v", "v", "f"),
    StoreField("v", "f", "u"),
    StoreField("u", "f", "u"),
    StoreField("u", "f", "v"),
    Invoke("u", "m"),
    Observe("q"),
)


def esc_primitives():
    for h in ESC_SITES:
        for o in (LOC, ESC):
            yield SiteIs(h, o)
    for v in ESC_SCHEMA.locals:
        for o in (LOC, ESC, NIL):
            yield VarIs(v, o)
    for f in ESC_SCHEMA.fields:
        for o in (LOC, ESC, NIL):
            yield FieldIs(f, o)


def _escape_setup():
    analysis = EscapeAnalysis(ESC_SCHEMA, frozenset(ESC_SITES))
    return Setup(
        "escape",
        analysis,
        EscapeMeta(analysis),
        esc_primitives(),
        subsets(ESC_SITES),
        ESC_SCHEMA.all_states(),
        ESC_COMMANDS,
    )


# -- typestate ----------------------------------------------------------------

TS_VARS = ("x", "y")

TS_COMMANDS = (
    New("x", "h"),
    New("y", "h"),
    New("x", "other"),
    Assign("x", "y"),
    Assign("y", "x"),
    Assign("x", "x"),
    AssignNull("x"),
    LoadField("x", "y", "f"),
    LoadGlobal("y", "g"),
    StoreField("x", "f", "y"),
    StoreGlobal("g", "x"),
    ThreadStart("x"),
    Observe("q"),
    Invoke("x", "open"),
    Invoke("y", "open"),
    Invoke("x", "close"),
    Invoke("x", "nonevent"),
)

TS_STRESS_COMMANDS = (
    Invoke("x", "m"),
    Invoke("y", "m"),
    New("x", "h"),
    Assign("y", "x"),
    AssignNull("x"),
    Observe("q"),
)


def ts_states(automaton):
    yield TOP
    states = sorted(automaton.states)
    for ts_bits in range(2 ** len(states)):
        ts = frozenset(s for i, s in enumerate(states) if ts_bits >> i & 1)
        for vs_bits in range(2 ** len(TS_VARS)):
            vs = frozenset(v for i, v in enumerate(TS_VARS) if vs_bits >> i & 1)
            yield TsState(ts, vs)


def ts_primitives(automaton):
    yield TsErr()
    for v in TS_VARS:
        yield TsParam(v)
        yield TsVar(v)
    for s in sorted(automaton.states):
        yield TsType(s)


def _typestate_setup(name, automaton, commands, **kwargs):
    analysis = TypestateAnalysis(automaton, "h", frozenset(TS_VARS), **kwargs)
    return Setup(
        name,
        analysis,
        TypestateMeta(analysis),
        ts_primitives(automaton),
        subsets(TS_VARS),
        ts_states(automaton),
        commands,
    )


# -- provenance ---------------------------------------------------------------

PT_VARS = ("x", "y")
PT_SITES = ("h1", "h2")
PT_SCHEMA = PtSchema(PT_VARS)

PT_COMMANDS = (
    New("x", "h1"),
    New("x", "h2"),
    Assign("x", "y"),
    Assign("y", "x"),
    Assign("x", "x"),
    AssignNull("x"),
    LoadGlobal("x", "g"),
    LoadField("y", "x", "f"),
    StoreGlobal("g", "x"),
    StoreField("x", "f", "y"),
    ThreadStart("y"),
    Invoke("x", "m"),
    Observe("q"),
)


def _pt_states():
    values = [PT_TOP] + list(subsets(PT_SITES))
    for vx in values:
        for vy in values:
            yield PT_SCHEMA.state({"x": vx, "y": vy})


def _provenance_setup():
    analysis = ProvenanceAnalysis(PT_SCHEMA, frozenset(PT_SITES))
    prims = [PtParam(h) for h in PT_SITES]
    for v in PT_VARS:
        prims.append(PtTop(v))
        prims += [PtHas(v, h) for h in PT_SITES]
    return Setup(
        "provenance",
        analysis,
        ProvenanceMeta(analysis),
        prims,
        subsets(PT_SITES),
        _pt_states(),
        PT_COMMANDS,
    )


SETUPS = (
    _escape_setup(),
    _typestate_setup("typestate-file", file_automaton(), TS_COMMANDS),
    _typestate_setup(
        "typestate-stress", stress_automaton(["m"]), TS_STRESS_COMMANDS
    ),
    _typestate_setup(
        "typestate-gated",
        file_automaton(),
        (Invoke("y", "open"), Invoke("x", "open")),
        may_point=lambda v: v == "x",
    ),
    _provenance_setup(),
)

CASES = [
    pytest.param(setup, command, id=f"{setup.name}:{command!r}")
    for setup in SETUPS
    for command in setup.commands
]


@pytest.mark.parametrize("setup,command", CASES)
def test_wp_matches_forward(setup, command):
    theory = setup.meta.theory
    failures = []
    for prim in setup.primitives:
        pre = setup.meta.wp_primitive(command, prim)
        for p in setup.params:
            for d in setup.states:
                post = setup.analysis.transfer(command, p, d)
                expected = theory.holds(prim, p, post)
                actual = evaluate(pre, theory, p, d)
                if expected != actual:
                    failures.append((prim, sorted(p), repr(d), expected, actual))
    assert not failures, failures[:5]


@pytest.mark.parametrize("setup", SETUPS, ids=lambda s: s.name)
def test_param_primitives_are_invariant(setup):
    """No command writes the abstraction: a parameter primitive is its
    own weakest precondition, for every command of every client."""
    theory = setup.meta.theory
    for prim in setup.primitives:
        if not theory.is_param(prim):
            continue
        for command in setup.commands:
            pre = setup.meta.wp_primitive(command, prim)
            assert pre == Lit(Literal(prim, True)), (setup.name, command, prim)
