"""Unit tests for the formula domain and the Figure 8 operators."""

import pytest

from repro.core.formula import (
    FALSE,
    TRUE,
    Dnf,
    FormulaExplosion,
    Literal,
    conj,
    cube_entails,
    disj,
    drop_k,
    evaluate,
    evaluate_cube,
    lit,
    neg,
    nlit,
    simplify,
    to_dnf,
    wp_substitute,
)
from tests.toys import TOY, ParamFact, StateFact

A = StateFact("a")
B = StateFact("b")
C = StateFact("c")
PX = ParamFact("x")


def dnf(formula):
    return to_dnf(formula, TOY)


class TestSmartConstructors:
    def test_conj_unit(self):
        assert conj() is TRUE
        assert conj(lit(A)) == lit(A)

    def test_conj_absorbs_false(self):
        assert conj(lit(A), FALSE) is FALSE

    def test_conj_drops_true(self):
        assert conj(TRUE, lit(A)) == lit(A)

    def test_disj_unit(self):
        assert disj() is FALSE
        assert disj(lit(A)) == lit(A)

    def test_disj_absorbs_true(self):
        assert disj(lit(A), TRUE) is TRUE

    def test_conj_flattens_nested(self):
        inner = conj(lit(A), lit(B))
        outer = conj(inner, lit(C))
        assert len(outer.args) == 3

    def test_neg_involution_on_literal(self):
        assert neg(neg(lit(A))) == lit(A)

    def test_neg_dualizes(self):
        formula = neg(conj(lit(A), lit(B)))
        assert formula == disj(nlit(A), nlit(B))

    def test_neg_constants(self):
        assert neg(TRUE) is FALSE
        assert neg(FALSE) is TRUE


class TestToDnf:
    def test_true_is_single_empty_cube(self):
        result = dnf(TRUE)
        assert result.is_true
        assert not result.is_false

    def test_false_has_no_cubes(self):
        result = dnf(FALSE)
        assert result.is_false

    def test_literal(self):
        result = dnf(lit(A))
        assert result.cubes == (frozenset([Literal(A, True)]),)

    def test_distributes_and_over_or(self):
        formula = conj(disj(lit(A), lit(B)), lit(C))
        result = dnf(formula)
        assert set(result.cubes) == {
            frozenset([Literal(A, True), Literal(C, True)]),
            frozenset([Literal(B, True), Literal(C, True)]),
        }

    def test_contradictory_cube_removed(self):
        formula = conj(lit(A), nlit(A))
        assert dnf(formula).is_false

    def test_cubes_sorted_by_size(self):
        formula = disj(conj(lit(A), lit(B)), lit(C))
        result = dnf(formula)
        assert len(result.cubes[0]) == 1
        assert len(result.cubes[1]) == 2

    def test_duplicate_cubes_merged(self):
        formula = disj(lit(A), lit(A))
        assert len(dnf(formula).cubes) == 1

    def test_explosion_budget(self):
        # (a1|b1) & (a2|b2) & ... blows up to 2^n cubes.
        parts = [
            disj(lit(StateFact(f"a{i}")), lit(StateFact(f"b{i}")))
            for i in range(12)
        ]
        with pytest.raises(FormulaExplosion):
            to_dnf(conj(*parts), TOY, max_cubes=100)

    def test_semantics_preserved(self):
        formula = disj(conj(lit(A), nlit(B)), conj(lit(C), lit(PX)))
        result = dnf(formula)
        for p in [frozenset(), frozenset({"x"})]:
            for d_bits in range(8):
                d = frozenset(
                    name
                    for i, name in enumerate(["a", "b", "c"])
                    if d_bits >> i & 1
                )
                assert evaluate(result, TOY, p, d) == evaluate(
                    formula, TOY, p, d
                )


class TestSimplify:
    def test_subsumed_longer_cube_removed(self):
        formula = disj(lit(A), conj(lit(A), lit(B)))
        result = simplify(dnf(formula), TOY)
        assert result.cubes == (frozenset([Literal(A, True)]),)

    def test_incomparable_cubes_kept(self):
        formula = disj(lit(A), conj(lit(B), lit(C)))
        result = simplify(dnf(formula), TOY)
        assert len(result.cubes) == 2

    def test_true_subsumes_everything(self):
        formula = disj(TRUE, conj(lit(A), lit(B)))
        result = simplify(dnf(formula), TOY)
        assert result.is_true

    def test_cube_entails_reflexive(self):
        cube = frozenset([Literal(A, True), Literal(B, False)])
        assert cube_entails(cube, cube, TOY)

    def test_cube_entails_superset_is_stronger(self):
        strong = frozenset([Literal(A, True), Literal(B, True)])
        weak = frozenset([Literal(A, True)])
        assert cube_entails(strong, weak, TOY)
        assert not cube_entails(weak, strong, TOY)


class TestDropK:
    def _three_cube_dnf(self):
        return simplify(
            dnf(disj(lit(A), conj(lit(B), lit(C)), conj(lit(B), nlit(A), lit(PX)))),
            TOY,
        )

    def test_no_drop_when_within_beam(self):
        result = self._three_cube_dnf()
        assert drop_k(result, 3, lambda cube: True) == result

    def test_keeps_k_minus_one_plus_current(self):
        result = self._three_cube_dnf()
        # Current (p, d) only in the largest cube.
        p, d = frozenset({"x"}), frozenset({"b"})
        pruned = drop_k(
            result, 2, lambda cube: evaluate_cube(cube, TOY, p, d)
        )
        assert len(pruned.cubes) == 2
        assert any(evaluate_cube(c, TOY, p, d) for c in pruned.cubes)

    def test_current_in_first_cube_keeps_k_minus_one(self):
        result = self._three_cube_dnf()
        p, d = frozenset(), frozenset({"a"})
        pruned = drop_k(result, 2, lambda cube: evaluate_cube(cube, TOY, p, d))
        # Smallest cube (a) contains current, so only k-1 = 1 cube kept.
        assert len(pruned.cubes) == 1

    def test_under_approximates(self):
        result = self._three_cube_dnf()
        p, d = frozenset({"x"}), frozenset({"b"})
        pruned = drop_k(result, 2, lambda c: evaluate_cube(c, TOY, p, d))
        for pp in [frozenset(), frozenset({"x"})]:
            for bits in range(8):
                dd = frozenset(
                    n for i, n in enumerate(["a", "b", "c"]) if bits >> i & 1
                )
                if evaluate(pruned, TOY, pp, dd):
                    assert evaluate(result, TOY, pp, dd)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            drop_k(self._three_cube_dnf(), 0, lambda c: True)

    def test_missing_current_raises(self):
        result = self._three_cube_dnf()
        with pytest.raises(ValueError):
            drop_k(result, 1, lambda cube: False)


class TestWpSubstitute:
    def test_positive_literal_substituted(self):
        source = dnf(lit(A))
        out = wp_substitute(source, lambda prim: lit(B))
        assert out == lit(B)

    def test_negative_literal_negates_wp(self):
        source = dnf(nlit(A))
        out = wp_substitute(source, lambda prim: conj(lit(B), lit(C)))
        assert out == disj(nlit(B), nlit(C))

    def test_false_stays_false(self):
        out = wp_substitute(dnf(FALSE), lambda prim: TRUE)
        assert out is FALSE

    def test_homomorphism_against_semantics(self):
        # Toy command: swaps facts a and b in d; wp(a) = b, wp(b) = a.
        def step(d):
            out = set(d)
            has_a, has_b = "a" in d, "b" in d
            out.discard("a")
            out.discard("b")
            if has_a:
                out.add("b")
            if has_b:
                out.add("a")
            return frozenset(out)

        def wp(prim):
            if prim == A:
                return lit(B)
            if prim == B:
                return lit(A)
            return lit(prim)

        formula = dnf(disj(conj(lit(A), nlit(B)), lit(C)))
        pre = wp_substitute(formula, wp)
        for bits in range(8):
            d = frozenset(
                n for i, n in enumerate(["a", "b", "c"]) if bits >> i & 1
            )
            assert evaluate(pre, TOY, frozenset(), d) == evaluate(
                formula, TOY, frozenset(), step(d)
            )
