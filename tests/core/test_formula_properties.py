"""Property-based tests (hypothesis) for the formula machinery.

Ground truth is brute-force evaluation over a tiny (p, d) universe;
every syntactic transformation must be checked against it.
"""

from hypothesis import given, settings, strategies as st

from repro.core.formula import (
    FALSE,
    TRUE,
    conj,
    disj,
    drop_k,
    evaluate,
    evaluate_cube,
    lit,
    neg,
    nlit,
    simplify,
    to_dnf,
)
from tests.toys import TOY, ParamFact, StateFact

PARAMS = ["px", "py"]
STATES = ["a", "b", "c"]


def universe():
    for p_bits in range(2 ** len(PARAMS)):
        p = frozenset(n for i, n in enumerate(PARAMS) if p_bits >> i & 1)
        for d_bits in range(2 ** len(STATES)):
            d = frozenset(n for i, n in enumerate(STATES) if d_bits >> i & 1)
            yield p, d


UNIVERSE = list(universe())

atoms = st.sampled_from(
    [lit(StateFact(n)) for n in STATES]
    + [nlit(StateFact(n)) for n in STATES]
    + [lit(ParamFact(n)) for n in PARAMS]
    + [nlit(ParamFact(n)) for n in PARAMS]
    + [TRUE, FALSE]
)


def formulas(depth=3):
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(lambda fs: conj(*fs)),
            st.lists(children, min_size=1, max_size=3).map(lambda fs: disj(*fs)),
            children.map(neg),
        ),
        max_leaves=12,
    )


@given(formulas())
@settings(max_examples=200, deadline=None)
def test_to_dnf_preserves_semantics(formula):
    dnf = to_dnf(formula, TOY)
    for p, d in UNIVERSE:
        assert evaluate(dnf, TOY, p, d) == evaluate(formula, TOY, p, d)


@given(formulas())
@settings(max_examples=200, deadline=None)
def test_simplify_preserves_semantics(formula):
    dnf = to_dnf(formula, TOY)
    simplified = simplify(dnf, TOY)
    for p, d in UNIVERSE:
        assert evaluate(simplified, TOY, p, d) == evaluate(dnf, TOY, p, d)


@given(formulas())
@settings(max_examples=200, deadline=None)
def test_double_negation_preserves_semantics(formula):
    double = neg(neg(formula))
    for p, d in UNIVERSE:
        assert evaluate(double, TOY, p, d) == evaluate(formula, TOY, p, d)


@given(formulas())
@settings(max_examples=200, deadline=None)
def test_negation_complements(formula):
    negated = neg(formula)
    for p, d in UNIVERSE:
        assert evaluate(negated, TOY, p, d) != evaluate(formula, TOY, p, d)


@given(formulas(), st.integers(min_value=1, max_value=4))
@settings(max_examples=200, deadline=None)
def test_drop_k_under_approximates_and_keeps_current(formula, k):
    dnf = simplify(to_dnf(formula, TOY), TOY)
    for current_p, current_d in UNIVERSE:
        if not evaluate(dnf, TOY, current_p, current_d):
            continue
        pruned = drop_k(
            dnf, k, lambda cube: evaluate_cube(cube, TOY, current_p, current_d)
        )
        # Requirement 2: (p, d) stays covered.
        assert evaluate(pruned, TOY, current_p, current_d)
        # Requirement 1: under-approximation.
        for p, d in UNIVERSE:
            if evaluate(pruned, TOY, p, d):
                assert evaluate(dnf, TOY, p, d)
        # Beam width respected.
        assert len(pruned.cubes) <= max(k, 1)
        break  # one current pair per example keeps the test fast


@given(formulas())
@settings(max_examples=100, deadline=None)
def test_dnf_cubes_sorted_by_size(formula):
    dnf = to_dnf(formula, TOY)
    sizes = [len(cube) for cube in dnf.cubes]
    assert sizes == sorted(sizes)
