"""Tests for the backward meta-analysis engine (Figure 7) including
Theorem 3 soundness checked by enumeration on the type-state client."""

import itertools
import random

import pytest

from repro.core.formula import Dnf, evaluate
from repro.core.meta import approx, backward_trace
from repro.lang import Assign, AssignNull, Invoke, New
from repro.typestate import (
    TsState,
    TypestateAnalysis,
    TypestateClient,
    TypestateMeta,
    file_automaton,
)
from repro.typestate.meta import TsType
from repro.core.formula import disj, lit
from repro.typestate.meta import ERR
from tests.randprog import VARS, random_typestate_program
from repro.lang import enumerate_traces

FAIL = disj(lit(ERR), lit(TsType("opened")))  # not(check1) of Figure 1


def _analysis():
    return TypestateAnalysis(file_automaton(), "h1", frozenset(VARS))


def _all_params():
    for r in range(len(VARS) + 1):
        for combo in itertools.combinations(VARS, r):
            yield frozenset(combo)


class TestBackwardTrace:
    def test_rejects_non_counterexample(self):
        analysis = _analysis()
        meta = TypestateMeta(analysis)
        trace = (New("x", "h1"),)  # ends in ({closed}, ...), not failing
        with pytest.raises(ValueError):
            backward_trace(
                meta, analysis, trace, frozenset(), analysis.initial_state(), FAIL
            )

    def test_empty_trace(self):
        analysis = _analysis()
        meta = TypestateMeta(analysis)
        d0 = TsState.make(["opened"], [])
        result = backward_trace(meta, analysis, (), frozenset(), d0, FAIL)
        assert evaluate(result.condition, meta.theory, frozenset(), d0)

    def test_intermediate_has_one_formula_per_point(self):
        analysis = _analysis()
        meta = TypestateMeta(analysis)
        trace = (New("x", "h1"), Invoke("x", "open"))
        result = backward_trace(
            meta, analysis, trace, frozenset(), analysis.initial_state(), FAIL
        )
        assert len(result.intermediate) == len(trace) + 1

    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("k", [1, 2, None])
    def test_theorem3_soundness(self, seed, k):
        """(1) the current (p, dI) is in the result; (2) every pair in
        the result really fails along the trace."""
        rng = random.Random(seed * 3 + (7 if k is None else k))
        program = random_typestate_program(rng, length=5)
        analysis = _analysis()
        meta = TypestateMeta(analysis)
        d_init = analysis.initial_state()
        traces = list(enumerate_traces(program, max_unroll=2))[:6]
        for p in [frozenset(), frozenset({"x"}), frozenset(VARS)]:
            for trace in traces:
                trace = trace[:-1]  # drop the observe
                final = analysis.run_trace(trace, p, d_init)
                if not evaluate(FAIL, meta.theory, p, final):
                    continue
                result = backward_trace(
                    meta, analysis, trace, p, d_init, FAIL, k=k
                )
                # Theorem 3.1: the current pair is covered.
                assert evaluate(result.condition, meta.theory, p, d_init)
                # Theorem 3.2: everything covered indeed fails.
                for p0 in _all_params():
                    if evaluate(result.condition, meta.theory, p0, d_init):
                        final0 = analysis.run_trace(trace, p0, d_init)
                        assert evaluate(FAIL, meta.theory, p0, final0), (
                            trace,
                            sorted(p0),
                        )


class TestApprox:
    def test_beam_none_only_simplifies(self):
        meta = TypestateMeta(_analysis())
        theory = meta.theory
        from repro.core.formula import to_dnf, conj, nlit

        formula = disj(lit(ERR), conj(lit(ERR), nlit(TsType("opened"))))
        dnf = to_dnf(formula, theory)
        out = approx(dnf, theory, frozenset(), TsState.make([], []), None)
        assert len(out.cubes) == 1  # redundant longer cube dropped

    def test_beam_keeps_current(self):
        meta = TypestateMeta(_analysis())
        theory = meta.theory
        from repro.core.formula import to_dnf, conj

        d = TsState.make(["opened"], [])
        formula = disj(
            lit(ERR),
            conj(lit(TsType("opened")), lit(TsType("closed"))),
            lit(TsType("opened")),
        )
        dnf = to_dnf(formula, theory)
        out = approx(dnf, theory, frozenset(), d, 1)
        assert evaluate(out, theory, frozenset(), d)


class TestWpCache:
    def test_cached_wp_identical_to_direct(self):
        analysis = _analysis()
        meta = TypestateMeta(analysis)
        command = Assign("x", "y")
        for prim in [ERR, TsType("opened")]:
            assert meta.wp_cached(command, prim) == meta.wp_primitive(
                command, prim
            )
            # Second call hits the cache.
            assert meta.wp_cached(command, prim) == meta.wp_primitive(
                command, prim
            )
