"""Tests for the forward-run cache and the per-query time accounting."""

import warnings

import pytest

import repro.core.tracer as tracer_mod
from repro.core.stats import QueryStatus
from repro.core.tracer import (
    ForwardRunCache,
    Tracer,
    TracerConfig,
    run_query_group,
)
from repro.escape import EscSchema, EscapeClient, EscapeQuery
from repro.lang import parse_program

TWO_QUERY_PROGRAM = """
observe qa
u = new h1
choice {
  $g = u
} or {
  skip
}
w = u
observe qb
"""


def two_query_client():
    program = parse_program(TWO_QUERY_PROGRAM)
    client = EscapeClient(program, EscSchema(["u", "w"], []), frozenset({"h1"}))
    return client, EscapeQuery("qa", "u"), EscapeQuery("qb", "w")


class CountingClient(EscapeClient):
    """Escape client that counts actual forward fixpoint runs."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.forward_calls = 0

    def run_forward(self, p):
        self.forward_calls += 1
        return super().run_forward(p)


class TestForwardRunCache:
    def test_second_fetch_is_a_hit(self):
        program = parse_program(TWO_QUERY_PROGRAM)
        client = CountingClient(
            program, EscSchema(["u", "w"], []), frozenset({"h1"})
        )
        cache = ForwardRunCache(max_entries=4)
        p = frozenset({"h1"})
        first = cache.fetch(client, p)
        second = cache.fetch(client, p)
        assert first is second
        assert client.forward_calls == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_distinct_abstractions_miss(self):
        program = parse_program(TWO_QUERY_PROGRAM)
        client = CountingClient(
            program, EscSchema(["u", "w"], []), frozenset({"h1"})
        )
        cache = ForwardRunCache(max_entries=4)
        cache.fetch(client, frozenset())
        cache.fetch(client, frozenset({"h1"}))
        assert client.forward_calls == 2
        assert cache.hits == 0

    def test_distinct_clients_do_not_collide(self):
        program = parse_program(TWO_QUERY_PROGRAM)
        schema = EscSchema(["u", "w"], [])
        a = CountingClient(program, schema, frozenset({"h1"}))
        b = CountingClient(program, schema, frozenset({"h1"}))
        cache = ForwardRunCache(max_entries=4)
        p = frozenset({"h1"})
        cache.fetch(a, p)
        cache.fetch(b, p)
        assert a.forward_calls == 1
        assert b.forward_calls == 1
        assert cache.hits == 0

    def test_lru_bound_evicts_coldest(self):
        program = parse_program(TWO_QUERY_PROGRAM)
        client = CountingClient(
            program, EscSchema(["u", "w"], []), frozenset({"h1"})
        )
        cache = ForwardRunCache(max_entries=1)
        cache.fetch(client, frozenset())
        cache.fetch(client, frozenset({"h1"}))  # evicts the empty-p entry
        cache.fetch(client, frozenset())  # miss again
        assert client.forward_calls == 3
        assert len(cache) == 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            ForwardRunCache(max_entries=0)


class TestDriverUsesCache:
    def test_driver_results_identical_cache_on_and_off(self):
        key = lambda r: (
            r.query_id,
            r.status,
            r.abstraction,
            r.abstraction_cost,
            r.iterations,
            r.forward_runs,
        )
        client_on, qa, qb = two_query_client()
        client_off, _, _ = two_query_client()
        on = Tracer(client_on, TracerConfig(forward_cache_size=64)).solve_all(
            [qa, qb]
        )
        off = Tracer(client_off, TracerConfig(forward_cache_size=None)).solve_all(
            [qa, qb]
        )
        assert [key(on[q]) for q in (qa, qb)] == [key(off[q]) for q in (qa, qb)]

    def test_cache_off_reports_no_hits(self):
        client, qa, qb = two_query_client()
        records = Tracer(client, TracerConfig(forward_cache_size=None)).solve_all(
            [qa, qb]
        )
        assert all(r.forward_cache_hits == 0 for r in records.values())

    def test_legacy_client_without_cache_parameter_still_works(self):
        client, qa, qb = two_query_client()

        legacy_counterexamples = lambda queries, p: EscapeClient.counterexamples(
            client, queries, p
        )
        client.counterexamples = legacy_counterexamples
        with pytest.warns(DeprecationWarning, match="'cache' parameter"):
            records = run_query_group(client, [qa, qb], TracerConfig())
        assert records[qa].status is QueryStatus.PROVEN
        assert records[qb].status is QueryStatus.IMPOSSIBLE

    def test_cache_aware_client_does_not_warn(self):
        client, qa, qb = two_query_client()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            records = run_query_group(client, [qa, qb], TracerConfig())
        assert records[qa].status is QueryStatus.PROVEN


class TestChargeAccounting:
    """Pin the per-query time attribution of a group round.

    A query proven directly by the round's forward run must be charged
    its share of the selection + forward time but none of the backward
    meta-analysis time, which is charged per-survivor.
    """

    FORWARD = 8.0
    BACKWARD = 10.0

    def test_proven_query_not_charged_for_backward_passes(self, monkeypatch):
        client, qa, qb = two_query_client()

        class FakeClock:
            def __init__(self):
                self.now = 0.0

            def __call__(self):
                return self.now

        clock = FakeClock()

        real_counterexamples = client.counterexamples

        def timed_counterexamples(queries, p, cache=None):
            clock.now += self.FORWARD
            return real_counterexamples(queries, p, cache=cache)

        client.counterexamples = timed_counterexamples

        real_backward = tracer_mod.backward_trace

        def timed_backward(*args, **kwargs):
            clock.now += self.BACKWARD
            return real_backward(*args, **kwargs)

        monkeypatch.setattr(tracer_mod, "backward_trace", timed_backward)

        records = run_query_group(
            client, [qa, qb], TracerConfig(), clock=clock
        )
        # Round 1 (group {qa, qb}): forward costs 8s, split two ways.
        # qa is proven by that run: exactly its 4s share, no backward
        # time.  qb survives and pays its own 10s backward pass; round
        # 2 selects no abstraction (viable set empty) and costs 0s.
        assert records[qa].status is QueryStatus.PROVEN
        assert records[qa].time_seconds == pytest.approx(self.FORWARD / 2)
        assert records[qb].status is QueryStatus.IMPOSSIBLE
        assert records[qb].time_seconds == pytest.approx(
            self.FORWARD / 2 + self.BACKWARD
        )
        # Conservation: all advanced time is attributed to some query.
        total = sum(r.time_seconds for r in records.values())
        assert total == pytest.approx(clock.now)


class TestCacheAwareDetection:
    """The deprecation shim itself (not just its driver-level effect)."""

    def test_legacy_signature_warns_and_disables_cache(self):
        client, _qa, _qb = two_query_client()
        client.counterexamples = lambda queries, p: {}
        with pytest.warns(DeprecationWarning, match="cache"):
            assert tracer_mod._cache_aware(client) is False

    def test_cache_keyword_accepted_without_warning(self):
        client, _qa, _qb = two_query_client()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert tracer_mod._cache_aware(client) is True

    def test_uninspectable_callable_treated_as_legacy(self):
        client, _qa, _qb = two_query_client()

        class Odd:
            def __call__(self, *args):  # pragma: no cover - never called
                return {}

            @property
            def __signature__(self):
                raise ValueError("no signature")

        client.counterexamples = Odd()
        with pytest.warns(DeprecationWarning):
            assert tracer_mod._cache_aware(client) is False


class TestChargeConservation:
    """Satellite: the `_charge` split must conserve wall time.

    Whatever mix of shared (selection + forward) and per-survivor
    (backward) costs a group run incurs, the per-query `time_seconds`
    must sum to the total time the clock advanced."""

    def test_charge_splits_equally(self):
        elapsed = {"a": 0.0, "b": 0.0, "c": 0.0}
        tracer_mod._charge(["a", "b", "c"], 3.0, elapsed)
        assert elapsed == {"a": 1.0, "b": 1.0, "c": 1.0}
        tracer_mod._charge(["a"], 0.5, elapsed)
        assert elapsed["a"] == pytest.approx(1.5)

    def test_charge_empty_group_is_noop(self):
        tracer_mod._charge([], 5.0, {})

    def test_group_split_sums_to_wall_time(self, monkeypatch):
        """A 2-query group that splits (one proven round 1, the other
        driven to impossibility) conserves every advanced second."""
        client, qa, qb = two_query_client()

        class FakeClock:
            now = 0.0

            def __call__(self):
                return self.now

        clock = FakeClock()
        real_counterexamples = client.counterexamples

        def timed_counterexamples(queries, p, cache=None):
            clock.now += 1.0 + 0.5 * len(queries)  # group-size-dependent
            return real_counterexamples(queries, p, cache=cache)

        client.counterexamples = timed_counterexamples
        real_backward = tracer_mod.backward_trace

        def timed_backward(*args, **kwargs):
            clock.now += 2.25
            return real_backward(*args, **kwargs)

        monkeypatch.setattr(tracer_mod, "backward_trace", timed_backward)
        records = run_query_group(client, [qa, qb], TracerConfig(), clock=clock)
        total = sum(r.time_seconds for r in records.values())
        assert clock.now > 0
        assert total == pytest.approx(clock.now, rel=1e-9)


class TestCacheOnRealWorkload:
    """The acceptance check: a multi-group escape workload hits the
    cache without changing any query's outcome."""

    @pytest.fixture(scope="class")
    def lusearch(self):
        from repro.bench.harness import prepare

        return prepare("lusearch")

    def test_escape_suite_has_hits_and_identical_results(self, lusearch):
        from repro.bench.harness import evaluate_benchmark
        from repro.core.tracer import TracerConfig as Config

        on = evaluate_benchmark(
            lusearch,
            "escape",
            Config(k=5, max_iterations=30, forward_cache_size=64),
        )
        off = evaluate_benchmark(
            lusearch,
            "escape",
            Config(k=5, max_iterations=30, forward_cache_size=None),
        )
        assert on.forward_hits > 0
        assert off.forward_hits == 0
        key = lambda r: (
            r.query_id,
            r.status,
            r.abstraction,
            r.abstraction_cost,
            r.iterations,
        )
        assert [key(r) for r in on.records] == [key(r) for r in off.records]
        # Record-level accounting agrees with the engine-level counters.
        assert sum(r.forward_cache_hits for r in on.records) >= on.forward_hits
