"""Tests for the query-record aggregation used by every table."""

from repro.core.stats import (
    GroupStats,
    QueryRecord,
    QueryStatus,
    group_stats,
    min_max_avg,
    size_distribution,
    summarize_records,
)


def record(qid, status, iterations=1, abstraction=None, cost=None, secs=0.1):
    return QueryRecord(
        query_id=qid,
        status=status,
        iterations=iterations,
        abstraction=abstraction,
        abstraction_cost=cost,
        time_seconds=secs,
    )


SAMPLE = [
    record("a", QueryStatus.PROVEN, 2, frozenset({"x"}), 1),
    record("b", QueryStatus.PROVEN, 4, frozenset({"x"}), 1),
    record("c", QueryStatus.PROVEN, 3, frozenset({"x", "y"}), 2),
    record("d", QueryStatus.IMPOSSIBLE, 5),
    record("e", QueryStatus.EXHAUSTED, 30),
]


class TestMinMaxAvg:
    def test_empty_is_none(self):
        assert min_max_avg([]) is None

    def test_triple(self):
        stats = min_max_avg([1, 5, 3])
        assert (stats.minimum, stats.maximum) == (1, 5)
        assert stats.average == 3.0

    def test_str_format(self):
        assert str(min_max_avg([2])) == "2/2/2.0"


class TestSummarize:
    def test_counts(self):
        agg = summarize_records(SAMPLE)
        assert (agg.total, agg.proven, agg.impossible, agg.exhausted) == (5, 3, 1, 1)
        assert agg.resolved == 4
        assert agg.resolved_fraction == 0.8

    def test_iteration_stats_split_by_status(self):
        agg = summarize_records(SAMPLE)
        assert agg.iterations_proven.maximum == 4
        assert agg.iterations_impossible.minimum == 5

    def test_abstraction_sizes_only_proven(self):
        agg = summarize_records(SAMPLE)
        assert agg.abstraction_sizes.minimum == 1
        assert agg.abstraction_sizes.maximum == 2

    def test_empty_records(self):
        agg = summarize_records([])
        assert agg.total == 0
        assert agg.iterations_proven is None
        assert agg.resolved_fraction == 0.0


class TestGroups:
    def test_grouping_by_cheapest_abstraction(self):
        stats = group_stats(SAMPLE)
        assert stats.group_count == 2
        assert stats.maximum == 2  # {x} shared by two queries
        assert stats.minimum == 1

    def test_no_proven_queries(self):
        stats = group_stats([record("d", QueryStatus.IMPOSSIBLE)])
        assert stats == GroupStats(0, 0, 0, 0.0)


class TestSizeDistribution:
    def test_histogram(self):
        assert size_distribution(SAMPLE) == {1: 2, 2: 1}

    def test_sorted_keys(self):
        records = [
            record("a", QueryStatus.PROVEN, 1, frozenset({"a", "b", "c"}), 3),
            record("b", QueryStatus.PROVEN, 1, frozenset(), 0),
        ]
        assert list(size_distribution(records)) == [0, 3]
