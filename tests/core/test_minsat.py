"""Unit tests for the branch-and-bound MinCostSAT solver."""

import pytest

from repro.core.minsat import MinCostSat, NegLit, PosLit, SolverBudgetExceeded


class TestBasics:
    def test_empty_instance_has_empty_minimum(self):
        solver = MinCostSat()
        assert solver.solve() == frozenset()

    def test_single_positive_clause(self):
        solver = MinCostSat()
        solver.add_clause([PosLit("x")])
        assert solver.solve() == frozenset({"x"})

    def test_single_negative_clause(self):
        solver = MinCostSat()
        solver.add_clause([NegLit("x")])
        assert solver.solve() == frozenset()

    def test_empty_clause_is_unsat(self):
        solver = MinCostSat()
        solver.add_clause([])
        assert solver.solve() is None
        assert not solver.is_satisfiable()

    def test_direct_contradiction_is_unsat(self):
        solver = MinCostSat()
        solver.add_clause([PosLit("x")])
        solver.add_clause([NegLit("x")])
        assert solver.solve() is None

    def test_tautology_dropped(self):
        solver = MinCostSat()
        solver.add_clause([PosLit("x"), NegLit("x")])
        assert solver.clauses == ()

    def test_duplicate_clause_dropped(self):
        solver = MinCostSat()
        solver.add_clause([PosLit("x"), PosLit("y")])
        solver.add_clause([PosLit("y"), PosLit("x")])
        assert len(solver.clauses) == 1


class TestMinimality:
    def test_prefers_cheaper_of_two(self):
        solver = MinCostSat()
        # x | (y & z) encoded: (x|y) & (x|z): minimum is {x}.
        solver.add_clause([PosLit("x"), PosLit("y")])
        solver.add_clause([PosLit("x"), PosLit("z")])
        assert solver.solve() == frozenset({"x"})

    def test_respects_costs(self):
        solver = MinCostSat(costs={"x": 10, "y": 1, "z": 1})
        solver.add_clause([PosLit("x"), PosLit("y")])
        solver.add_clause([PosLit("x"), PosLit("z")])
        assert solver.solve() == frozenset({"y", "z"})

    def test_negative_literals_do_not_cost(self):
        solver = MinCostSat()
        solver.add_clause([NegLit("x"), PosLit("y")])
        assert solver.solve() == frozenset()

    def test_implication_chain(self):
        # a, a->b, b->c: model must contain all three.
        solver = MinCostSat()
        solver.add_clause([PosLit("a")])
        solver.add_clause([NegLit("a"), PosLit("b")])
        solver.add_clause([NegLit("b"), PosLit("c")])
        assert solver.solve() == frozenset({"a", "b", "c"})

    def test_minimum_vertex_cover_triangle(self):
        solver = MinCostSat()
        for u, v in [("a", "b"), ("b", "c"), ("a", "c")]:
            solver.add_clause([PosLit(u), PosLit(v)])
        model = solver.solve()
        assert len(model) == 2

    def test_exclusion_forces_more_expensive(self):
        solver = MinCostSat()
        solver.add_clause([PosLit("x"), PosLit("y")])
        solver.add_clause([NegLit("x")])
        assert solver.solve() == frozenset({"y"})

    def test_deterministic_result(self):
        solver = MinCostSat()
        solver.add_clause([PosLit("b"), PosLit("a")])
        first = solver.solve()
        second = solver.solve()
        assert first == second
        assert len(first) == 1


class TestBruteForceAgreement:
    def _brute_force(self, variables, clauses, costs):
        import itertools

        best = None
        for bits in itertools.product([False, True], repeat=len(variables)):
            assign = dict(zip(variables, bits))
            if all(
                any(assign[v] == s for v, s in clause) for clause in clauses
            ):
                cost = sum(costs.get(v, 1) for v in variables if assign[v])
                if best is None or cost < best:
                    best = cost
        return best

    @pytest.mark.parametrize("seed", range(25))
    def test_random_small_instances(self, seed):
        import random

        rng = random.Random(seed)
        variables = [f"v{i}" for i in range(rng.randint(2, 7))]
        costs = {v: rng.randint(1, 4) for v in variables}
        clauses = []
        for _ in range(rng.randint(1, 10)):
            size = rng.randint(1, 3)
            clause = frozenset(
                (rng.choice(variables), rng.random() < 0.5)
                for _ in range(size)
            )
            clauses.append(clause)
        solver = MinCostSat(costs=costs)
        for clause in clauses:
            solver.add_clause(clause)
        expected = self._brute_force(variables, clauses, costs)
        model = solver.solve()
        if expected is None:
            assert model is None
        else:
            assert model is not None
            assert sum(costs[v] for v in model) == expected

    def test_budget_guard(self):
        solver = MinCostSat(max_nodes=1)
        solver.add_clause([PosLit("a"), PosLit("b")])
        solver.add_clause([PosLit("c"), PosLit("d")])
        with pytest.raises(SolverBudgetExceeded):
            solver.solve()
