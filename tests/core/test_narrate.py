"""Tests for the TRACER transcript generator."""

import pytest

from repro.core import Tracer, TracerConfig
from repro.core.narrate import narrate
from repro.core.stats import QueryStatus
from repro.lang import parse_program
from repro.typestate import TypestateClient, TypestateQuery, file_automaton

PROGRAM = parse_program(
    """
    x = new File
    y = x
    x.open()
    y.close()
    observe check1
    observe check2
    """
)


@pytest.fixture
def client():
    return TypestateClient(
        PROGRAM, file_automaton(), "File", frozenset({"x", "y"})
    )


CHECK1 = TypestateQuery("check1", frozenset({"closed"}))
CHECK2 = TypestateQuery("check2", frozenset({"opened"}))


class TestNarrate:
    def test_agrees_with_tracer(self, client):
        config = TracerConfig(k=1)
        transcript = narrate(client, CHECK1, config)
        record = Tracer(client, config).solve(CHECK1)
        assert transcript.status == record.status
        assert transcript.abstraction == record.abstraction
        assert len(transcript.iterations) == record.iterations

    def test_failed_iterations_carry_traces(self, client):
        transcript = narrate(client, CHECK1, TracerConfig(k=1))
        failed = [b for b in transcript.iterations if not b.proven]
        assert failed
        for block in failed:
            assert block.trace
            # One forward state per trace point, one formula per point.
            assert len(block.forward_states) == len(block.trace) + 1
            assert len(block.backward_formulas) == len(block.trace) + 1

    def test_render_mentions_abstractions_and_result(self, client):
        text = narrate(client, CHECK1, TracerConfig(k=1)).render()
        assert "iteration 1: p = {}" in text
        assert "proven with cheapest abstraction {x, y}" in text
        assert "x = new File" in text

    def test_impossible_render(self, client):
        text = narrate(client, CHECK2, TracerConfig(k=1)).render()
        assert "impossible" in text

    def test_exhausted_status(self, client):
        transcript = narrate(client, CHECK1, TracerConfig(k=1, max_iterations=1))
        assert transcript.status is QueryStatus.EXHAUSTED
        assert "unresolved" in transcript.render()

    def test_proven_iteration_has_no_trace(self, client):
        transcript = narrate(client, CHECK1, TracerConfig(k=1))
        assert transcript.iterations[-1].proven
        assert transcript.iterations[-1].trace is None
