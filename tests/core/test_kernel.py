"""The compiled bitset kernel must be observationally identical to the
interpreted engine.

The kernel (:mod:`repro.core.kernel`) is a pure performance substitute
for the collecting interpreter: every forward-phase observable the
TRACER loop and the certificate machinery consume — per-node state
sets, first-derivation witnesses, traces, observe-point annotations,
step counts, budget ticks — must match bit-for-bit, or CEGAR takes a
different refinement path and verdicts/certificates silently diverge.

The equivalence tests sweep seeded random programs for all three
bundled clients plus suite benchmarks; the unit tests pin the codec
round-trips and the two fallback paths (non-lowerable command, and an
entry state outside the bitset layout).
"""

from __future__ import annotations

import random

import pytest

import repro.core.kernel as kernel_mod
from repro.bench.harness import escape_setup, prepare, typestate_setup
from repro.core.kernel import KernelEngine
from repro.core.tracer import Tracer, TracerConfig
from repro.dataflow.bitset import KernelFallback
from repro.escape.client import EscapeClient
from repro.escape.domain import EscSchema
from repro.lang.universe import collect_universe
from repro.provenance.client import ProvenanceClient
from repro.provenance.domain import PT_TOP, PtSchema, PtState
from repro.robust.budget import Budget, budget_scope
from repro.robust.certify import annotation_digest
from repro.typestate.automaton import file_automaton
from repro.typestate.client import TypestateClient
from tests.randprog import (
    FIELDS,
    SITES,
    VARS,
    random_escape_program,
    random_typestate_program,
)


def abstractions_for(client):
    """Bottom, every singleton, one pair, and the full universe."""
    space = client.analysis.param_space
    universe = sorted(getattr(space, "universe", None) or space.keys)
    out = [frozenset()]
    out += [frozenset({x}) for x in universe]
    if len(universe) >= 2:
        out.append(frozenset(universe[:2]))
    out.append(frozenset(universe))
    return list(dict.fromkeys(out))


def assert_engines_agree(client, p):
    """Interpreted and compiled forward runs must agree on every
    observable: states, witnesses, traces, observe annotations, steps,
    and digests."""
    client.use_engine("interpreted")
    ref = client.run_forward(p)
    mode = client.use_engine("compiled")
    got = client.run_forward(p)
    client.use_engine("interpreted")
    if mode != "compiled":
        pytest.skip("client has no compiled kernel")

    mat = got.materialize()
    assert got.steps == ref.steps
    assert mat.steps == ref.steps
    assert mat.entry_state == ref.entry_state
    assert set(mat.states) == set(ref.states)
    for node, table in ref.states.items():
        got_table = mat.states[node]
        assert set(table) == set(got_table), node
        for state, witness in table.items():
            got_witness = got_table[state]
            if witness is None:
                assert got_witness is None, (node, state)
            else:
                # Same predecessor node+state, and the *same edge
                # object* — traces rebuilt from either engine replay
                # identical command sequences.
                assert got_witness is not None, (node, state)
                assert witness[0] == got_witness[0], (node, state)
                assert witness[1] == got_witness[1], (node, state)
                assert witness[2] is got_witness[2], (node, state)
        for state in table:
            assert ref.trace_to(node, state) == got.trace_to(node, state)
    for label in client.cfg.observe_edges():
        assert ref.states_before_observe(label) == got.states_before_observe(
            label
        ), label
        assert annotation_digest(ref, label) == annotation_digest(got, label)


def typestate_client(seed):
    rng = random.Random(seed)
    program = random_typestate_program(rng, length=7)
    return TypestateClient(program, file_automaton(), "h1", frozenset(VARS))


def escape_client(seed):
    rng = random.Random(seed + 1000)
    program = random_escape_program(rng, length=7)
    return EscapeClient(program, EscSchema(VARS, FIELDS), frozenset(SITES))


def provenance_client(seed):
    rng = random.Random(seed + 2000)
    program = random_escape_program(rng, length=7)
    return ProvenanceClient(program, PtSchema(VARS), frozenset(SITES))


class TestEngineEquivalenceRandom:
    """Property sweep: seeded random programs, all three clients, all
    abstractions of the (small) parameter universe."""

    @pytest.mark.parametrize("seed", range(10))
    def test_typestate(self, seed):
        client = typestate_client(seed)
        for p in abstractions_for(client):
            assert_engines_agree(client, p)

    @pytest.mark.parametrize("seed", range(10))
    def test_escape(self, seed):
        client = escape_client(seed)
        for p in abstractions_for(client):
            assert_engines_agree(client, p)

    @pytest.mark.parametrize("seed", range(10))
    def test_provenance(self, seed):
        client = provenance_client(seed)
        for p in abstractions_for(client):
            assert_engines_agree(client, p)


class TestEngineEquivalenceSuite:
    """Suite benchmarks: one escape, one typestate, one provenance
    client per program, bottom/singleton/full abstractions."""

    @pytest.mark.parametrize("name", ["tsp", "elevator"])
    def test_suite_clients(self, name):
        bench = prepare(name)
        clients = [escape_setup(bench)[0]]
        clients += [c for c, _queries in typestate_setup(bench)[:1]]
        universe = collect_universe(bench.inlined.program)
        clients.append(
            ProvenanceClient(
                bench.inlined.program,
                PtSchema(universe.variables),
                universe.sites,
            )
        )
        for client in clients:
            space = client.analysis.param_space
            keys = sorted(getattr(space, "universe", None) or space.keys)
            for p in (
                frozenset(),
                frozenset(keys[:1]),
                frozenset(keys),
            ):
                assert_engines_agree(client, p)

    def test_observe_order_is_engine_independent(self):
        """Regression: ``states_at`` orders states by ``repr``, and a
        dataclass-default repr interpolating raw frozensets depends on
        set insertion history — interpreter-built and codec-decoded
        equal states then sort differently under some hash seeds.
        Every bundled state type now reprs canonically (sorted), so
        the observe-point annotation order must match exactly."""
        bench = prepare("elevator")
        for client, _queries in typestate_setup(bench):
            space = client.analysis.param_space
            full = frozenset(space.universe)
            client.use_engine("interpreted")
            ref = client.run_forward(full)
            client.use_engine("compiled")
            got = client.run_forward(full)
            client.use_engine("interpreted")
            for label in client.cfg.observe_edges():
                assert ref.states_before_observe(
                    label
                ) == got.states_before_observe(label), label


class TestBudgetParity:
    """The compiled loop must charge the same step budget as the
    interpreted loop — budget exhaustion mid-search is an observable
    the CEGAR journal records."""

    def test_tick_counts_match(self):
        client = typestate_client(3)
        for p in abstractions_for(client):
            client.use_engine("interpreted")
            ref_budget = Budget(max_steps=10**9)
            with budget_scope(ref_budget):
                client.run_forward(p)
            client.use_engine("compiled")
            got_budget = Budget(max_steps=10**9)
            with budget_scope(got_budget):
                client.run_forward(p)
            client.use_engine("interpreted")
            assert ref_budget.steps == got_budget.steps, p


class TestCodecRoundTrip:
    """encode/decode must be exact inverses on every reachable state,
    for the full codec and for every footprint-narrowed codec."""

    @pytest.mark.parametrize(
        "make_client",
        [typestate_client, escape_client, provenance_client],
        ids=["typestate", "escape", "provenance"],
    )
    def test_reachable_states_round_trip(self, make_client):
        client = make_client(0)
        codec = client._kernel_codec()
        assert codec is not None
        for p in abstractions_for(client):
            narrow_key = codec.narrow_key(p)
            scoped = codec if narrow_key is None else codec.narrow(p)
            result = client.run_forward(p)
            seen = 0
            for node in result.states:
                for state in result.states[node]:
                    bits = scoped.encode(state)
                    assert scoped.decode(bits) == state, (p, state)
                    seen += 1
            assert seen > 0

    def test_narrowed_codec_layout_is_smaller(self):
        """Narrowing a provenance codec to a sub-footprint must shrink
        the layout (that is its point: fewer bits, smaller tables)."""
        client = provenance_client(0)
        codec = client._kernel_codec()
        sub = frozenset(list(SITES)[:1])
        assert codec.narrow_key(sub) is not None
        narrowed = codec.narrow(sub)
        assert (
            narrowed.layout.full_mask.bit_count()
            < codec.layout.full_mask.bit_count()
        )
        # Narrowing to the full universe is the identity case.
        assert codec.narrow_key(frozenset(SITES)) is None


class TestFallback:
    """When a command cannot be lowered the engine must degrade to an
    interpreted per-command closure, not fail or diverge."""

    def test_lowering_failure_falls_back_and_stays_identical(
        self, monkeypatch
    ):
        def always_fallback(compiled, codec, p):
            raise KernelFallback("forced by test")

        client = typestate_client(1)
        client.use_engine("interpreted")
        refs = [
            client.run_forward(p).states for p in abstractions_for(client)
        ]
        monkeypatch.setattr(kernel_mod, "lower_command", always_fallback)
        assert client.use_engine("compiled") == "compiled"
        engine = client._kernel_engine
        for p, ref_states in zip(abstractions_for(client), refs):
            assert client.run_forward(p).materialize().states == ref_states
        assert engine.fallbacks > 0
        client.use_engine("interpreted")

    def test_standard_clients_lower_without_fallback(self):
        """The bundled clients' semantics are fully lowerable — a
        fallback here would silently forfeit the kernel speedup."""
        for make_client in (typestate_client, escape_client, provenance_client):
            client = make_client(2)
            assert client.use_engine("compiled") == "compiled"
            for p in abstractions_for(client):
                client.run_forward(p)
            assert client._kernel_engine.fallbacks == 0
            client.use_engine("interpreted")

    def test_unencodable_entry_state_runs_interpreted(self):
        """An entry state outside the bitset layout (here: a points-to
        set naming an untracked site) must route the whole run to the
        inner engine instead of raising."""
        client = provenance_client(4)
        assert client.use_engine("compiled") == "compiled"
        engine = client.engine
        assert isinstance(engine, KernelEngine)
        schema = client.schema
        weird = PtState(
            schema,
            tuple(
                frozenset({"not_a_site"}) if i == 0 else PT_TOP
                for i in range(len(schema.variables))
            ),
        )
        p = frozenset(SITES)
        step = client.analysis.semantics.bound_step(p)
        result = engine.run(step, weird)
        expected = engine.inner.run(step, weird)
        assert result.states == expected.states
        assert result.steps == expected.steps
        client.use_engine("interpreted")


class TestEngineConfig:
    """``TracerConfig.engine`` must thread through the solver: the
    verdict, iteration count, and annotation digest of a query are
    engine-independent."""

    def test_solver_records_match_across_engines(self):
        bench = prepare("tsp")
        client, queries = typestate_setup(bench)[0]
        records = {}
        for engine in ("interpreted", "compiled"):
            config = TracerConfig(k=5, max_iterations=30, engine=engine)
            solved = Tracer(client, config).solve_all(queries)
            records[engine] = [
                (
                    record.query_id,
                    record.status.value,
                    record.abstraction,
                    record.iterations,
                )
                for record in (solved[q] for q in queries)
            ]
        client.use_engine("interpreted")
        assert records["interpreted"] == records["compiled"]
