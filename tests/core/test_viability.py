"""Tests for the viable-abstraction constraint store."""

from repro.core.formula import Dnf, Literal, to_dnf, conj, disj, lit, nlit
from repro.core.viability import ViabilityStore
from tests.toys import TOY, ParamFact, StateFact

D_INIT = frozenset({"a"})  # the fixed initial state: fact `a` holds


def _dnf(formula):
    return to_dnf(formula, TOY)


class TestClauseExtraction:
    def test_param_only_cube_becomes_clause(self):
        store = ViabilityStore(TOY, D_INIT)
        store.add_failure_condition(_dnf(lit(ParamFact("x"))))
        # Everything containing x is unviable; minimum is {}.
        assert store.choose_minimum() == frozenset()
        assert store.excludes(frozenset({"x"}))
        assert not store.excludes(frozenset())

    def test_negated_param_cube(self):
        store = ViabilityStore(TOY, D_INIT)
        store.add_failure_condition(_dnf(nlit(ParamFact("x"))))
        # Everything NOT containing x is unviable; minimum is {x}.
        assert store.choose_minimum() == frozenset({"x"})

    def test_state_literal_true_at_dinit_keeps_clause(self):
        store = ViabilityStore(TOY, D_INIT)
        store.add_failure_condition(
            _dnf(conj(lit(StateFact("a")), nlit(ParamFact("x"))))
        )
        assert store.choose_minimum() == frozenset({"x"})

    def test_state_literal_false_at_dinit_drops_cube(self):
        store = ViabilityStore(TOY, D_INIT)
        added = store.add_failure_condition(
            _dnf(conj(lit(StateFact("b")), nlit(ParamFact("x"))))
        )
        assert added == ()
        assert store.choose_minimum() == frozenset()

    def test_pure_state_cube_makes_impossible(self):
        store = ViabilityStore(TOY, D_INIT)
        store.add_failure_condition(_dnf(lit(StateFact("a"))))
        assert store.choose_minimum() is None
        assert store.excludes(frozenset({"anything"}))

    def test_multiple_cubes_multiple_clauses(self):
        store = ViabilityStore(TOY, D_INIT)
        condition = _dnf(
            disj(nlit(ParamFact("x")), conj(lit(ParamFact("x")), nlit(ParamFact("y"))))
        )
        store.add_failure_condition(condition)
        # not(x notin p) and not(x in p and y notin p): must have x and y.
        assert store.choose_minimum() == frozenset({"x", "y"})

    def test_accumulation_until_unsat(self):
        store = ViabilityStore(TOY, D_INIT)
        store.add_failure_condition(_dnf(nlit(ParamFact("x"))))
        assert store.choose_minimum() == frozenset({"x"})
        store.add_failure_condition(_dnf(lit(ParamFact("x"))))
        assert store.choose_minimum() is None

    def test_copy_is_independent(self):
        store = ViabilityStore(TOY, D_INIT)
        store.add_failure_condition(_dnf(nlit(ParamFact("x"))))
        clone = store.copy()
        clone.add_failure_condition(_dnf(lit(ParamFact("x"))))
        assert clone.choose_minimum() is None
        assert store.choose_minimum() == frozenset({"x"})

    def test_excludes_reflects_clauses(self):
        store = ViabilityStore(TOY, D_INIT)
        store.add_failure_condition(
            _dnf(conj(lit(ParamFact("x")), lit(ParamFact("y"))))
        )
        assert store.excludes(frozenset({"x", "y"}))
        assert not store.excludes(frozenset({"x"}))
