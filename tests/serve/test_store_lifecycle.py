"""Store hardening: crash-safe compaction (including a SIGKILL kill
matrix over the compaction windows), offline verification, shared-mode
cross-process coordination, and checksum integrity."""

import json
import multiprocessing
import os

import pytest

from repro.robust import faults
from repro.serve.store import (
    KnowledgeStore,
    STORE_VERSION,
    entry_checksum,
    verify_store,
)

CONFIG = (5, 1, 30, None, None, None, 64, True)


def _args(digest, source="cli:prog.rp", kind="TypestateClient",
          queries=("typestate:check1",)):
    return dict(
        digest=digest,
        source=source,
        client_info={"kind": kind},
        config=CONFIG,
        query_ids=list(queries),
        rounds=[{"round": 0, "queries": list(queries), "outcome": "ok"}],
        results={q: {"verdict": "proven"} for q in queries},
        witnesses={},
    )


def _digest(seed: str) -> str:
    return (seed * 64)[:64]


class TestCompaction:
    def test_latest_wins_survive_and_superseded_drop(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        for _ in range(4):
            store.record(**_args(_digest("a")))
        store.record(**_args(_digest("b"), source="cli:other.rp"))
        assert store.file_entries == 5
        assert store.superseded_ratio == pytest.approx(3 / 5)

        stats = store.compact()
        assert stats["entries_before"] == 5
        assert stats["entries_after"] == 2
        assert stats["dropped"] == 3
        assert stats["bytes_after"] < stats["bytes_before"]
        assert store.compactions == 1
        assert store.superseded_ratio == 0.0

        # Both live keys still answer after the rewrite.
        assert store.lookup(
            _digest("a"), CONFIG, ["typestate:check1"]) is not None
        assert store.lookup(
            _digest("b"), CONFIG, ["typestate:check1"]) is not None
        store.close()

        # And after a fresh load of the compacted file.
        reloaded = KnowledgeStore(path)
        assert reloaded.file_entries == 2
        assert reloaded.lookup(
            _digest("a"), CONFIG, ["typestate:check1"]) is not None
        reloaded.close()

    def test_compaction_keeps_seed_tier_entries(self, tmp_path):
        # An entry superseded on its exact key can still be the latest
        # for its (source, kind) seed key — compaction must keep the
        # newest per seed key too.
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        store.record(**_args(_digest("a"), source="cli:p.rp"))
        store.record(**_args(_digest("b"), source="cli:p.rp"))
        store.compact()
        assert store.lookup_seed("cli:p.rp", "TypestateClient") is not None
        store.close()
        reloaded = KnowledgeStore(path)
        seed = reloaded.lookup_seed("cli:p.rp", "TypestateClient")
        assert seed is not None and seed["digest"] == _digest("b")
        reloaded.close()

    def test_append_still_works_after_compaction(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        store.record(**_args(_digest("a")))
        store.record(**_args(_digest("a")))
        store.compact()
        store.record(**_args(_digest("c"), source="cli:new.rp"))
        store.close()
        reloaded = KnowledgeStore(path)
        assert reloaded.lookup(
            _digest("c"), CONFIG, ["typestate:check1"]) is not None
        reloaded.close()

    def test_interior_corruption_raises_on_load(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        store.record(**_args(_digest("a")))
        store.record(**_args(_digest("b")))
        store.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b'{"type": "entry", TORN\n'
        with open(path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(ValueError):
            KnowledgeStore(path)


def _compact_and_die(path, site):
    """Child process body: SIGKILL itself at the given compaction
    window (the 'kill' fault action)."""
    plan = faults.FaultPlan.from_specs([f"{site}:kill"])
    store = KnowledgeStore(path, shared=True)
    with faults.fault_scope(plan):
        store.compact()
    os._exit(1)  # pragma: no cover - the kill must have fired


class TestCompactionKillMatrix:
    """SIGKILL at every compaction window leaves a loadable store —
    the complete old file or the complete new one, never a torn
    hybrid."""

    @pytest.mark.parametrize("site", [
        "store.compact.write",
        "store.compact.rename",
        "store.compact.done",
    ])
    def test_sigkill_window(self, tmp_path, site):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        for _ in range(3):
            store.record(**_args(_digest("a")))
        store.record(**_args(_digest("b"), source="cli:other.rp"))
        store.close()

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_compact_and_die, args=(path, site))
        child.start()
        child.join(30)
        assert not child.is_alive()
        assert child.exitcode == -9  # died by SIGKILL, not os._exit

        # Whichever side of the rename the kill landed on, the store
        # file is complete: it loads, verifies, and answers both keys.
        problems, summary = verify_store(path)
        assert problems == []
        assert summary["entries"] in (2, 4)  # new file or old file
        survivor = KnowledgeStore(path)
        assert survivor.lookup(
            _digest("a"), CONFIG, ["typestate:check1"]) is not None
        assert survivor.lookup(
            _digest("b"), CONFIG, ["typestate:check1"]) is not None
        # Compacting again (no crash) always converges to 2 entries.
        survivor.compact()
        assert survivor.file_entries == 2
        survivor.close()


class TestVerify:
    def test_healthy_store(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        store.record(**_args(_digest("a")))
        store.close()
        problems, summary = verify_store(path)
        assert problems == []
        assert summary["entries"] == 1
        assert summary["checksummed"] == 1
        assert summary["torn_tail"] is False

    def test_torn_tail_is_noted_not_a_problem(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        store.record(**_args(_digest("a")))
        store.close()
        with open(path, "ab") as handle:
            handle.write(b'{"type": "entry", "dig')
        problems, summary = verify_store(path)
        assert problems == []
        assert summary["torn_tail"] is True

    def test_interior_corruption_is_a_problem(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        store.record(**_args(_digest("a")))
        store.record(**_args(_digest("b")))
        store.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b"garbage not json\n"
        with open(path, "wb") as handle:
            handle.writelines(lines)
        problems, _summary = verify_store(path)
        assert any("corrupt interior" in p for p in problems)

    def test_checksum_mismatch_is_a_problem(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        store.record(**_args(_digest("a")))
        store.close()
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        entry["results"]["typestate:check1"]["verdict"] = "impossible"
        lines[1] = json.dumps(entry, sort_keys=True)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        problems, _summary = verify_store(path)
        assert any("checksum mismatch" in p for p in problems)

    def test_legacy_entry_without_checksum_is_noted(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        store.record(**_args(_digest("a")))
        store.close()
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        del entry["sha256"]
        lines[1] = json.dumps(entry, sort_keys=True)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        problems, summary = verify_store(path)
        assert problems == []
        assert summary["legacy_entries"] == 1

    def test_bad_version_is_a_problem(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps(
                {"type": "store_header", "version": STORE_VERSION + 1}
            ) + "\n")
        problems, _summary = verify_store(path)
        assert any("unsupported store version" in p for p in problems)

    def test_missing_file_is_a_problem(self, tmp_path):
        problems, _summary = verify_store(str(tmp_path / "nope.jsonl"))
        assert problems


def _record_in_child(path, digest, source):
    store = KnowledgeStore(path, shared=True)
    store.record(**_args(digest, source=source))
    store.close()
    os._exit(0)


class TestSharedMode:
    def test_two_handles_interleave_and_refresh(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        a = KnowledgeStore(path, shared=True)
        b = KnowledgeStore(path, shared=True)
        a.record(**_args(_digest("a"), source="cli:a.rp"))
        b.record(**_args(_digest("b"), source="cli:b.rp"))
        # Each handle sees the other's append via tail refresh.
        assert a.lookup(
            _digest("b"), CONFIG, ["typestate:check1"]) is not None
        assert b.lookup(
            _digest("a"), CONFIG, ["typestate:check1"]) is not None
        a.close()
        b.close()

    def test_cross_process_append_is_seen(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        parent = KnowledgeStore(path, shared=True)
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(
            target=_record_in_child, args=(path, _digest("c"), "cli:c.rp")
        )
        child.start()
        child.join(30)
        assert child.exitcode == 0
        assert parent.lookup(
            _digest("c"), CONFIG, ["typestate:check1"]) is not None
        parent.close()

    def test_torn_tail_truncated_before_shared_append(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path, shared=True)
        store.record(**_args(_digest("a")))
        with open(path, "ab") as handle:
            handle.write(b'{"type": "entry", "half')
        store.record(**_args(_digest("b"), source="cli:b.rp"))
        store.close()
        problems, summary = verify_store(path)
        assert problems == []
        assert summary["torn_tail"] is False
        assert summary["entries"] == 2

    def test_compaction_under_other_handle_triggers_reload(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        a = KnowledgeStore(path, shared=True)
        b = KnowledgeStore(path, shared=True)
        for _ in range(3):
            a.record(**_args(_digest("a")))
        assert b.lookup(
            _digest("a"), CONFIG, ["typestate:check1"]) is not None
        a.compact()
        # b's next lookup notices the new inode and reloads cleanly.
        assert b.lookup(
            _digest("a"), CONFIG, ["typestate:check1"]) is not None
        assert b.file_entries == 1
        # And b can still append to the compacted file.
        b.record(**_args(_digest("d"), source="cli:d.rp"))
        assert a.lookup(
            _digest("d"), CONFIG, ["typestate:check1"]) is not None
        a.close()
        b.close()


class TestChecksums:
    def test_recorded_entries_carry_valid_checksums(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = KnowledgeStore(path)
        entry = store.record(**_args(_digest("a")))
        assert entry["sha256"] == entry_checksum(entry)
        store.close()

    def test_checksum_excludes_itself(self):
        entry = {"type": "entry", "digest": _digest("a")}
        digest = entry_checksum(entry)
        entry["sha256"] = digest
        assert entry_checksum(entry) == digest
