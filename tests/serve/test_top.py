"""The ``repro top`` dashboard: frame rendering is a pure function of
two samples, so everything here runs without a daemon."""

from repro.serve.top import Sample, render_frame

PROMETHEUS = """\
# TYPE repro_request_seconds histogram
repro_request_seconds_bucket{le="0.1",op="solve"} 90
repro_request_seconds_bucket{le="1",op="solve"} 100
repro_request_seconds_bucket{le="+Inf",op="solve"} 100
repro_request_seconds_sum{op="solve"} 12.5
repro_request_seconds_count{op="solve"} 100
# TYPE repro_request_queue_seconds histogram
repro_request_queue_seconds_bucket{le="0.001"} 100
repro_request_queue_seconds_bucket{le="+Inf"} 100
repro_request_queue_seconds_sum 0.05
repro_request_queue_seconds_count 100
# TYPE repro_phase_seconds histogram
repro_phase_seconds_sum{phase="forward"} 8.0
repro_phase_seconds_sum{phase="backward"} 2.0
"""


def stats_body(requests=100, **overrides):
    body = {
        "requests_served": requests,
        "uptime_seconds": 50.0,
        "pid": 1234,
        "store": {"entries": 37, "hit_rate": 0.5},
        "telemetry": {
            "tiers": {"cold": 30, "replay": 70},
            "in_flight": [
                {"op": "stats", "request_id": "me", "running_seconds": 0.0}
            ],
            "recent": [
                {"request_id": "abc", "op": "solve", "mode": "replay",
                 "ok": True, "queue_seconds": 0.001, "seconds": 0.02},
            ],
        },
    }
    body.update(overrides)
    return body


class TestRenderFrame:
    def test_single_sample_uses_lifetime_qps(self):
        frame = render_frame(Sample.from_parts(stats_body(), PROMETHEUS))
        assert "repro top — pid 1234" in frame
        assert "qps 2.0" in frame  # 100 requests / 50s uptime

    def test_qps_is_delta_between_polls(self):
        first = Sample.from_parts(stats_body(requests=100), PROMETHEUS, at=0.0)
        second = Sample.from_parts(
            stats_body(requests=130), PROMETHEUS, at=10.0
        )
        frame = render_frame(second, previous=first)
        assert "qps 3.0" in frame  # 30 new requests / 10s

    def test_tier_mix_and_store_lines(self):
        frame = render_frame(Sample.from_parts(stats_body(), PROMETHEUS))
        assert "cold 30 (30%)" in frame
        assert "replay 70 (70%)" in frame
        assert "store: 37 entries  hit rate 50.0%" in frame

    def test_latency_quantiles_come_from_the_histograms(self):
        frame = render_frame(Sample.from_parts(stats_body(), PROMETHEUS))
        # 90/100 under 0.1s: the median interpolates inside that bucket.
        assert "p50 55.6ms" in frame
        assert "queue p95" in frame

    def test_phase_shares(self):
        frame = render_frame(Sample.from_parts(stats_body(), PROMETHEUS))
        assert "forward 80%" in frame
        assert "backward 20%" in frame

    def test_own_stats_request_is_filtered_from_in_flight(self):
        frame = render_frame(Sample.from_parts(stats_body(), PROMETHEUS))
        assert "in-flight: idle" in frame

    def test_running_solve_shows_in_flight(self):
        stats = stats_body()
        stats["telemetry"]["in_flight"].append(
            {"op": "solve-bench", "request_id": "busy1", "running_seconds": 3.2}
        )
        frame = render_frame(Sample.from_parts(stats, PROMETHEUS))
        assert "in-flight: solve-bench [busy1] 3.20s" in frame

    def test_recent_table(self):
        frame = render_frame(Sample.from_parts(stats_body(), PROMETHEUS))
        assert "request" in frame and "queue" in frame
        assert "abc" in frame and "replay" in frame and "yes" in frame

    def test_empty_daemon_renders_without_data(self):
        stats = {"requests_served": 0, "uptime_seconds": 0.0, "pid": 1,
                 "telemetry": {}}
        frame = render_frame(Sample.from_parts(stats, ""))
        assert "no solves yet" in frame
        assert "p50 -" in frame


class TestRunTop:
    def test_frames_bound_polls_without_sleeping(self, monkeypatch):
        import io

        from repro.serve import top as top_module

        samples = iter([
            Sample.from_parts(stats_body(requests=10), PROMETHEUS, at=0.0),
            Sample.from_parts(stats_body(requests=20), PROMETHEUS, at=1.0),
        ])
        monkeypatch.setattr(
            top_module, "take_sample", lambda client: next(samples)
        )
        monkeypatch.setattr(
            top_module, "ServeClient", lambda path: object()
        )
        slept = []
        monkeypatch.setattr(
            top_module.time, "sleep", lambda s: slept.append(s)
        )
        out = io.StringIO()
        code = top_module.run_top(
            "/nonexistent.sock", interval=0.5, frames=2, clear=False, out=out
        )
        assert code == 0
        text = out.getvalue()
        assert text.count("repro top —") == 2
        assert "qps 10.0" in text  # second frame: 10 new / 1s
        assert slept == [0.5]  # slept once, between the two frames
        assert "\x1b[" not in text  # --no-clear: no control codes
