"""The retrying client: backoff on transport failures and retryable
envelopes, request-id reuse across attempts, and structured
:class:`ServeError` for everything that finally fails."""

import json
import socket
import threading

import pytest

from repro.robust import faults
from repro.serve.client import ServeClient, ServeError


class ScriptedDaemon:
    """A unix-socket stub that plays one scripted behaviour per
    accepted connection and records every request line it read.

    Script entries: ``("reply", dict)`` sends a JSON line, ``("echo",
    dict)`` merges the request's request_id into the reply first,
    ``("raw", bytes)`` sends bytes verbatim, ``("close", None)`` reads
    the request then closes without replying."""

    def __init__(self, path, script):
        self.path = path
        self.script = list(script)
        self.requests = []
        self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._server.bind(path)
        self._server.listen(8)
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for action, body in self.script:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            with conn:
                line = conn.makefile("rb").readline()
                try:
                    self.requests.append(json.loads(line))
                except ValueError:
                    self.requests.append(line)
                if action == "close":
                    continue
                if action == "raw":
                    conn.sendall(body)
                    continue
                reply = dict(body)
                if action == "echo":
                    reply["request_id"] = self.requests[-1].get("request_id")
                conn.sendall((json.dumps(reply) + "\n").encode())

    def close(self):
        self._server.close()
        self._thread.join(5)


@pytest.fixture
def daemon_at(tmp_path):
    made = []

    def make(script):
        stub = ScriptedDaemon(str(tmp_path / f"stub{len(made)}.sock"), script)
        made.append(stub)
        return stub

    yield make
    for stub in made:
        stub.close()


def _no_sleep_client(path, retries=2):
    return ServeClient(path, timeout=5, retries=retries, sleep=lambda s: None)


class TestRetryableEnvelopes:
    def test_retries_until_ok_with_same_request_id(self, daemon_at):
        overloaded = {
            "ok": False, "error": "queue full", "code": "overloaded",
            "retryable": True, "retry_after_ms": 1,
        }
        stub = daemon_at([
            ("reply", overloaded),
            ("reply", overloaded),
            ("echo", {"ok": True, "pong": True, "pid": 1}),
        ])
        client = _no_sleep_client(stub.path)
        reply = client.ping()
        assert reply["pong"] is True
        assert client.retries_made == 2
        ids = {request["request_id"] for request in stub.requests}
        assert len(ids) == 1  # every attempt reused the same id

    def test_non_retryable_envelope_raises_immediately(self, daemon_at):
        stub = daemon_at([
            ("reply", {"ok": False, "error": "no such label",
                       "code": "bad_request", "retryable": False}),
        ])
        client = _no_sleep_client(stub.path)
        with pytest.raises(ServeError) as excinfo:
            client.ping()
        assert excinfo.value.code == "bad_request"
        assert not excinfo.value.retryable
        assert "no such label" in str(excinfo.value)
        assert client.retries_made == 0

    def test_retryable_error_exhausts_retries_then_raises(self, daemon_at):
        envelope = {"ok": False, "error": "worker died",
                    "code": "worker_crashed", "retryable": True}
        stub = daemon_at([("reply", envelope)] * 3)
        client = _no_sleep_client(stub.path, retries=2)
        with pytest.raises(ServeError) as excinfo:
            client.ping()
        assert excinfo.value.code == "worker_crashed"
        assert excinfo.value.retryable
        assert len(stub.requests) == 3


class TestTransportFailures:
    def test_connection_refused_retries_then_raises_transport(self, tmp_path):
        client = _no_sleep_client(str(tmp_path / "nowhere.sock"), retries=2)
        with pytest.raises(ServeError) as excinfo:
            client.ping()
        assert excinfo.value.code == "transport"
        assert client.attempts_made == 3

    def test_closed_without_reply_is_retried(self, daemon_at):
        stub = daemon_at([
            ("close", None),
            ("echo", {"ok": True, "pong": True, "pid": 1}),
        ])
        client = _no_sleep_client(stub.path)
        assert client.ping()["pong"] is True
        assert client.retries_made == 1

    def test_injected_transport_fault_is_retried(self, daemon_at):
        stub = daemon_at([("echo", {"ok": True, "pong": True, "pid": 1})])
        plan = faults.FaultPlan.from_specs(
            ["serve.transport:raise:error=connection,at=1,times=1"]
        )
        client = _no_sleep_client(stub.path)
        with faults.fault_scope(plan):
            assert client.ping()["pong"] is True
        assert client.retries_made == 1


class TestBadReplies:
    def test_undecodable_reply_carries_the_offending_prefix(self, daemon_at):
        stub = daemon_at([("raw", b'{"ok": true, "resu\n')] * 2)
        client = _no_sleep_client(stub.path, retries=1)
        with pytest.raises(ServeError) as excinfo:
            client.ping()
        assert excinfo.value.code == "bad_reply"
        assert '{"ok": true, "resu' in str(excinfo.value)

    def test_truncated_reply_retry_recovers(self, daemon_at):
        stub = daemon_at([
            ("raw", b'{"ok": true, "pong"\n'),
            ("echo", {"ok": True, "pong": True, "pid": 1}),
        ])
        client = _no_sleep_client(stub.path)
        assert client.ping()["pong"] is True
        assert client.retries_made == 1


class TestBackoff:
    def test_backoff_caps_and_jitters(self):
        client = ServeClient(
            "/nonexistent", retries=5,
            backoff_seconds=0.1, backoff_cap=0.4,
        )
        for attempt in range(6):
            delay = client.backoff(attempt)
            uncapped = min(0.4, 0.1 * (2 ** attempt))
            assert 0.5 * uncapped <= delay < 1.5 * uncapped

    def test_retry_after_hint_overrides_backoff(self, daemon_at):
        slept = []
        stub = daemon_at([
            ("reply", {"ok": False, "error": "busy", "code": "overloaded",
                       "retryable": True, "retry_after_ms": 123}),
            ("echo", {"ok": True, "pong": True, "pid": 1}),
        ])
        client = ServeClient(stub.path, timeout=5, retries=1,
                             sleep=slept.append)
        assert client.ping()["pong"] is True
        assert slept == [pytest.approx(0.123)]
