"""The resident session: warm-start identity (store-seeded searches are
bit-identical to cold ones) across all three bundled clients, the
clause tier on edited programs, stale-entry fallback, and journal
precedence."""

import json

import pytest

from repro.core.tracer import TracerConfig
from repro.escape.client import EscapeQuery
from repro.provenance.client import ProvenanceQuery
from repro.robust.certify import CertificateStore
from repro.robust.journal import SearchJournal
from repro.serve.session import AnalysisSession, describe_client
from repro.serve.store import KnowledgeStore
from repro.typestate.client import TypestateQuery

CONFIG = TracerConfig(k=5, max_iterations=30)

TYPESTATE_TEXT = """
x = new File
y = x
x.open()
y.close()
observe check1
observe check2
"""

ESCAPE_TEXT = """
u = new h1
v = new h2
v.f = u
observe pc
"""

PROVENANCE_TEXT = """
u = new h1
v = new h2
w = u
observe pc
"""


def _typestate(session):
    client, *_rest = session.typestate_client(TYPESTATE_TEXT)
    return client, [
        TypestateQuery("check1", frozenset({"closed"})),
        TypestateQuery("check2", frozenset({"closed"})),
    ]


def _escape(session):
    client, _universe = session.escape_client(ESCAPE_TEXT)
    return client, [EscapeQuery("pc", "u")]


def _provenance(session):
    client, _universe = session.provenance_client(PROVENANCE_TEXT)
    return client, [ProvenanceQuery("pc", "u", frozenset({"h1"}))]


CLIENTS = {
    "typestate": _typestate,
    "escape": _escape,
    "provenance": _provenance,
}


def _solve_pass(tmp_path, store_path, build, tag):
    """One store-attached solve in a fresh session (fresh forward
    cache), with a journal and a certificate store; returns everything
    the identity assertions compare."""
    journal_path = str(tmp_path / f"journal-{tag}.jsonl")
    with KnowledgeStore(store_path) as store:
        session = AnalysisSession(store=store)
        client, queries = build(session)
        certs = CertificateStore()
        with SearchJournal(journal_path) as journal:
            result = session.solve(
                client,
                queries,
                CONFIG,
                journal=journal,
                certificates=certs,
                source="test:prog",
            )
        verdicts = {
            str(q): (r.status.value, r.iterations, r.abstraction)
            for q, r in result.records.items()
        }
    return result, verdicts, certs, journal_path


class TestWarmStartIdentity:
    @pytest.mark.parametrize("kind", sorted(CLIENTS))
    def test_replay_tier_is_bit_identical_to_cold(self, tmp_path, kind):
        store_path = str(tmp_path / "store.jsonl")
        build = CLIENTS[kind]
        cold, cold_verdicts, cold_certs, cold_journal = _solve_pass(
            tmp_path, store_path, build, "cold"
        )
        warm, warm_verdicts, warm_certs, warm_journal = _solve_pass(
            tmp_path, store_path, build, "warm"
        )
        assert cold.mode == "cold" and not cold.store_hit
        assert warm.mode == "replay" and warm.store_hit
        assert warm_verdicts == cold_verdicts
        # Certificates (including annotation digests and witness
        # evidence) must be byte-identical.
        assert json.dumps(
            warm_certs.certificates, sort_keys=True
        ) == json.dumps(cold_certs.certificates, sort_keys=True)
        # The warm journal is written through, so the file on disk is
        # bit-identical to the cold run's.
        with open(cold_journal, "rb") as a, open(warm_journal, "rb") as b:
            assert a.read() == b.read()

    @pytest.mark.parametrize("kind", sorted(CLIENTS))
    def test_replay_tier_runs_zero_forward_fixpoints(self, tmp_path, kind):
        store_path = str(tmp_path / "store.jsonl")
        build = CLIENTS[kind]
        _solve_pass(tmp_path, store_path, build, "cold")
        with KnowledgeStore(store_path) as store:
            session = AnalysisSession(store=store)
            client, queries = build(session)

            def boom(_p):
                raise AssertionError(
                    "replay tier must not run the forward fixpoint"
                )

            client.run_forward = boom
            certs = CertificateStore()
            result = session.solve(
                client, queries, CONFIG,
                certificates=certs, source="test:prog",
            )
        assert result.mode == "replay"
        assert len(certs.certificates) == len(queries)

    def test_warm_without_store_is_plain_cold(self):
        session = AnalysisSession()
        client, queries = _typestate(session)
        result = session.solve(client, queries, CONFIG)
        assert result.mode == "cold"
        assert result.digest is None
        assert result.rounds == []


class TestClauseTier:
    def test_edited_program_seeds_from_prior_witnesses(self, tmp_path):
        store_path = str(tmp_path / "store.jsonl")
        with KnowledgeStore(store_path) as store:
            session = AnalysisSession(store=store)
            client, queries = _typestate(session)
            cold = session.solve(
                client, queries, CONFIG, source="test:prog"
            )
        edited = TYPESTATE_TEXT + "z = new Sock\n"
        with KnowledgeStore(store_path) as store:
            session = AnalysisSession(store=store)
            client, *_rest = session.typestate_client(edited)
            warm = session.solve(
                client, queries, CONFIG, source="test:prog"
            )
        assert warm.mode == "clauses"
        assert session.stats["warm_seeded_clauses"] > 0
        # Same verdicts as a cold solve of the edited program.
        baseline_session = AnalysisSession()
        baseline_client, *_rest = baseline_session.typestate_client(edited)
        baseline = baseline_session.solve(baseline_client, queries, CONFIG)
        for query in queries:
            assert (
                warm.records[query].status
                is baseline.records[query].status
            )
            assert (
                warm.records[query].abstraction
                == baseline.records[query].abstraction
            )
        # Seeded clauses prune refuted abstractions, so the warm search
        # never takes more rounds than the cold one.
        for query in queries:
            assert (
                warm.records[query].iterations
                <= baseline.records[query].iterations
            )

    def test_different_source_does_not_seed(self, tmp_path):
        store_path = str(tmp_path / "store.jsonl")
        with KnowledgeStore(store_path) as store:
            session = AnalysisSession(store=store)
            client, queries = _typestate(session)
            session.solve(client, queries, CONFIG, source="test:a")
        with KnowledgeStore(store_path) as store:
            session = AnalysisSession(store=store)
            client, *_rest = session.typestate_client(
                TYPESTATE_TEXT + "z = new Sock\n"
            )
            result = session.solve(client, queries, CONFIG, source="test:b")
        assert result.mode == "cold"


class TestStaleEntries:
    def test_tampered_entry_falls_back_to_cold(self, tmp_path):
        store_path = str(tmp_path / "store.jsonl")
        with KnowledgeStore(store_path) as store:
            session = AnalysisSession(store=store)
            client, queries = _typestate(session)
            session.solve(client, queries, CONFIG, source="test:prog")
            digest = describe_client(client)
            from repro.serve.store import config_key, program_digest

            entry = store.lookup(
                program_digest(client.program, digest),
                config_key(CONFIG),
                [str(q) for q in queries],
            )
            assert entry is not None
            # Tamper with the recorded rounds: the replay integrity
            # checks must reject the entry, forget it, and re-run cold
            # — a bad store costs time, never answers.
            entry["rounds"][0]["queries"] = ["typestate:bogus"]
            fresh = AnalysisSession(store=store)
            client2, _ = _typestate(fresh)
            certs = CertificateStore()
            result = fresh.solve(
                client2, queries, CONFIG,
                certificates=certs, source="test:prog",
            )
            assert result.mode == "stale"
            assert fresh.stats["stale_entries"] == 1
            assert len(certs.certificates) == len(queries)
            for query in queries:
                assert result.records[query].status.value in (
                    "proven", "impossible", "exhausted",
                )


class TestJournalPrecedence:
    def test_resuming_journal_skips_the_store(self, tmp_path):
        store_path = str(tmp_path / "store.jsonl")
        journal_path = str(tmp_path / "journal.jsonl")
        session = AnalysisSession()
        client, queries = _typestate(session)
        with SearchJournal(journal_path) as journal:
            session.solve(client, queries, CONFIG, journal=journal)
        with KnowledgeStore(store_path) as store:
            warm_session = AnalysisSession(store=store)
            client2, _ = _typestate(warm_session)
            with SearchJournal(journal_path, resume=True) as journal:
                result = warm_session.solve(
                    client2, queries, CONFIG,
                    journal=journal, source="test:prog",
                )
            # The resumed journal takes precedence: no store lookup,
            # no re-recording of replayed knowledge.
            assert result.mode == "cold"
            assert store.hits == 0 and store.misses == 0
            assert len(store) == 0


class TestSessionMemos:
    def test_prepare_is_memoized_per_name(self):
        session = AnalysisSession()
        assert session.prepare("tsp") is session.prepare("tsp")
        assert session.stats["programs_prepared"] == 1

    def test_seed_and_instance_round_trip(self):
        session = AnalysisSession()
        bench = session.prepare("tsp")
        token = session.seed(bench)
        assert session.instance("tsp", token) is bench
        # A token the session never saw falls back to the standard
        # memo for suite benchmarks.
        assert session.instance("tsp", token + 999) is bench

    def test_client_builders_are_memoized_by_text(self):
        session = AnalysisSession()
        first = session.typestate_client(TYPESTATE_TEXT)
        second = session.typestate_client(TYPESTATE_TEXT)
        assert first[0] is second[0]
        third = session.typestate_client(TYPESTATE_TEXT + "z = new Sock\n")
        assert third[0] is not first[0]
