"""The serve daemon: in-process request handling (all ops, all three
solve kinds, budget clamping, error envelopes) plus one socket
round-trip through the real asyncio server and ServeClient."""

import threading

import pytest

from repro.core.tracer import TracerConfig
from repro.serve.server import AnalysisServer, _tightest

TYPESTATE_TEXT = """
x = new File
x.open()
x.close()
observe check1
"""

ESCAPE_TEXT = """
u = new h1
v = new h2
v.f = u
observe pc
"""

PROVENANCE_TEXT = """
u = new h1
v = new h2
observe pc
"""


@pytest.fixture
def server(tmp_path):
    instance = AnalysisServer(
        str(tmp_path / "serve.sock"),
        store_path=str(tmp_path / "store.jsonl"),
        config=TracerConfig(k=5, max_iterations=30),
    )
    yield instance
    instance.store.close()


class TestOps:
    def test_ping(self, server):
        reply = server.handle_request({"op": "ping"})
        assert reply["ok"] and reply["pong"]
        assert server.requests_served == 1

    def test_stats_reports_session_and_store(self, server):
        reply = server.handle_request({"op": "stats"})
        assert reply["ok"]
        assert reply["session"]["solves"] == 0
        assert reply["store"]["entries"] == 0
        assert reply["store"]["hit_rate"] == 0.0

    def test_unknown_op_is_an_error_envelope(self, server):
        reply = server.handle_request({"op": "frobnicate"})
        assert reply["ok"] is False
        assert "unknown op" in reply["error"]
        # Bad requests still count as served and never raise.
        assert server.requests_served == 1

    def test_every_response_carries_seconds(self, server):
        assert server.handle_request({"op": "ping"})["seconds"] >= 0.0


class TestSolve:
    def test_typestate_solve_and_replay(self, server):
        request = {
            "op": "solve",
            "kind": "typestate",
            "program": TYPESTATE_TEXT,
            "query": "check1",
        }
        cold = server.handle_request(request)
        assert cold["ok"] and cold["mode"] == "cold"
        assert cold["results"][0]["verdict"] == "proven"
        assert cold["results"][0]["query"] == "typestate:check1"
        warm = server.handle_request(request)
        assert warm["ok"] and warm["mode"] == "replay" and warm["store_hit"]
        assert warm["results"] == cold["results"]
        assert warm["digest"] == cold["digest"]

    def test_escape_solve(self, server):
        reply = server.handle_request({
            "op": "solve",
            "kind": "escape",
            "program": ESCAPE_TEXT,
            "query": "pc",
            "var": "u",
        })
        assert reply["ok"]
        assert reply["results"][0]["verdict"] in (
            "proven", "impossible", "exhausted",
        )

    def test_provenance_solve_defaults_allowed_to_all_sites(self, server):
        reply = server.handle_request({
            "op": "solve",
            "kind": "provenance",
            "program": PROVENANCE_TEXT,
            "query": "pc",
            "var": "u",
        })
        assert reply["ok"]
        assert reply["results"][0]["verdict"] == "proven"

    def test_solve_bench_cold_then_warm(self, server):
        request = {
            "op": "solve-bench",
            "benchmark": "tsp",
            "analysis": "typestate",
        }
        cold = server.handle_request(request)
        assert cold["ok"] and cold["modes"] == ["cold"]
        assert cold["store_hits"] == 0 and cold["units"] > 0
        warm = server.handle_request(request)
        assert warm["modes"] == ["replay"]
        assert warm["store_hits"] == warm["units"]
        assert warm["results"] == cold["results"]

    def test_bad_inputs_are_error_envelopes(self, server):
        bad = [
            {"op": "solve", "kind": "typestate"},  # no program
            {"op": "solve", "kind": "mystery", "program": TYPESTATE_TEXT},
            {"op": "solve", "kind": "typestate",
             "program": TYPESTATE_TEXT},  # no query
            {"op": "solve", "kind": "typestate",
             "program": TYPESTATE_TEXT, "query": "nope"},
            {"op": "solve", "kind": "typestate",
             "program": TYPESTATE_TEXT, "query": "check1",
             "allowed": ["molten"]},
            {"op": "solve", "kind": "escape",
             "program": ESCAPE_TEXT, "query": "pc", "var": "ghost"},
            {"op": "solve", "kind": "typestate",
             "program": "x = ???", "query": "check1"},  # parse error
            {"op": "solve-bench", "benchmark": "tsp"},  # no analysis
            {"op": "solve-bench", "benchmark": "atlantis",
             "analysis": "typestate"},
        ]
        for request in bad:
            reply = server.handle_request(request)
            assert reply["ok"] is False, request
            assert reply["error"]


class TestBudgets:
    def test_tightest_picks_the_smaller_bound(self):
        assert _tightest(None, None) is None
        assert _tightest(5.0, None) == 5.0
        assert _tightest(None, 3.0) == 3.0
        assert _tightest(5.0, 3.0) == 3.0
        assert _tightest(2.0, 3.0) == 2.0

    def test_request_may_tighten_but_not_exceed_ceilings(self, tmp_path):
        server = AnalysisServer(
            str(tmp_path / "s.sock"),
            config=TracerConfig(max_seconds=10.0, max_steps=1000),
        )
        config = server._request_config(
            {"config": {"max_seconds": 99.0, "max_steps": 5}}
        )
        assert config.max_seconds == 10.0  # clamped to the ceiling
        assert config.max_steps == 5  # tightened below it

    def test_unknown_override_is_rejected(self, server):
        reply = server.handle_request({
            "op": "solve",
            "kind": "typestate",
            "program": TYPESTATE_TEXT,
            "query": "check1",
            "config": {"engine": "compiled"},
        })
        assert reply["ok"] is False
        assert "unknown config overrides" in reply["error"]

    def test_overrides_preserve_server_strictness_and_engine(self, tmp_path):
        server = AnalysisServer(
            str(tmp_path / "s.sock"),
            config=TracerConfig(strict=False, engine="compiled"),
        )
        config = server._request_config({"config": {"k": 3}})
        assert config.k == 3
        assert config.strict is False
        assert config.engine == "compiled"


class TestSocketRoundTrip:
    def test_client_against_live_daemon(self, tmp_path):
        import asyncio

        from repro.serve.client import ServeClient, ServeError

        socket_path = str(tmp_path / "serve.sock")
        server = AnalysisServer(
            socket_path, store_path=str(tmp_path / "store.jsonl")
        )
        ready = threading.Event()

        def run():
            async def main():
                task = asyncio.ensure_future(server.run())
                while not (
                    server._server is not None and server._server.is_serving()
                ):
                    await asyncio.sleep(0.01)
                ready.set()
                await task

            asyncio.run(main())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=30)

        client = ServeClient(socket_path, timeout=120)
        assert client.ping()["pong"]
        reply = client.solve(
            "typestate", TYPESTATE_TEXT, query="check1"
        )
        assert reply["ok"] and reply["results"][0]["verdict"] == "proven"
        with pytest.raises(ServeError):
            client.request({"op": "nonsense"})
        assert client.stats()["requests_served"] >= 2
        client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestTelemetry:
    def test_request_id_minted_and_echoed(self, server):
        reply = server.handle_request({"op": "ping"})
        assert len(reply["request_id"]) == 16
        echoed = server.handle_request(
            {"op": "ping", "request_id": "client-chose-me"}
        )
        assert echoed["request_id"] == "client-chose-me"

    def test_spans_of_one_solve_share_the_request_trace_id(self, server):
        from repro.obs import MemorySink, tracing

        sink = MemorySink()
        with tracing(sink):
            reply = server.handle_request({
                "op": "solve",
                "kind": "typestate",
                "program": TYPESTATE_TEXT,
                "query": "check1",
            })
        request_id = reply["request_id"]
        spans = [r for r in sink.events if r.get("type") == "span_start"]
        events = [r for r in sink.events if r.get("type") == "event"]
        # The search itself ran inside the request scope...
        assert any(s["name"] == "query_group" for s in spans)
        # ...and every span and event carries the request id end to end.
        assert spans and all(s.get("trace") == request_id for s in spans)
        assert events and all(e.get("trace") == request_id for e in events)
        names = {e["name"] for e in events}
        assert {"request_received", "request_finished"} <= names

    def test_metrics_op_returns_parseable_prometheus_text(self, tmp_path):
        from repro.obs.export import parse_prometheus
        from repro.obs.metrics import scoped_registry

        with scoped_registry():
            fresh = AnalysisServer(
                str(tmp_path / "fresh.sock"),
                store_path=str(tmp_path / "fresh-store.jsonl"),
                config=TracerConfig(k=5, max_iterations=30),
            )
            request = {
                "op": "solve",
                "kind": "typestate",
                "program": TYPESTATE_TEXT,
                "query": "check1",
            }
            fresh.handle_request(request)
            fresh.handle_request(request)  # replay tier
            reply = fresh.handle_request({"op": "metrics"})
            assert reply["ok"]
            assert reply["format"] == "prometheus-text-0.0.4"
            parsed = parse_prometheus(reply["prometheus"])
            fresh.store.close()
        tiers = {
            labels["tier"]: value
            for labels, value in parsed["repro_warm_tier_total"]
        }
        assert tiers["cold"] == 1 and tiers["replay"] == 1
        latency = {
            labels.get("op"): value
            for labels, value in parsed["repro_request_seconds_count"]
        }
        assert latency["solve"] == 2
        assert "repro_request_queue_seconds_bucket" in parsed
        assert "repro_phase_seconds_sum" in parsed
        # The scrape itself is the one in-flight request when rendered.
        assert parsed["repro_in_flight_requests"] == [({}, 1)]

    def test_stats_carries_telemetry_snapshot(self, server):
        server.handle_request({"op": "ping"})
        reply = server.handle_request({"op": "stats"})
        assert reply["uptime_seconds"] >= 0.0
        telemetry = reply["telemetry"]
        # The only in-flight request is the stats call reading the
        # snapshot (dashboards filter it out client-side).
        assert [e["op"] for e in telemetry["in_flight"]] == ["stats"]
        assert telemetry["recent"][0]["op"] == "ping"
        assert telemetry["recent"][0]["ok"] is True

    def test_queue_wait_measured_from_enqueue_time(self, server):
        import time

        queued_at = time.perf_counter() - 0.25
        server.handle_request({"op": "ping"}, queued_at=queued_at)
        recent = server.telemetry.recent[-1]
        assert recent["queue_seconds"] >= 0.25

    def test_recent_ring_is_bounded(self, server):
        for _ in range(80):
            server.handle_request({"op": "ping"})
        assert len(server.telemetry.recent) == 64

    def test_request_finished_reports_failures_too(self, server):
        from repro.obs import MemorySink, tracing

        sink = MemorySink()
        with tracing(sink):
            server.handle_request({"op": "frobnicate"})
        finished = [r for r in sink.events
                    if r.get("name") == "request_finished"]
        assert finished[0]["attrs"]["ok"] is False
