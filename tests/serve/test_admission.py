"""Admission control and the supervised pool over a live socket:
bounded-queue shedding, deadline expiry, oversized lines, the dedup
ring, graceful drain, worker crash/timeout isolation, and corrupted
replies recovered through retry + dedup."""

import asyncio
import threading
import time

import pytest

from repro.core.tracer import TracerConfig
from repro.robust import faults
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import AnalysisServer

ESCAPE_TEXT = """
u = new h1
v = new h2
v.f = u
observe pc
"""


class LiveServer:
    """One AnalysisServer running in a thread, with an optional
    ambient fault plan installed in that thread."""

    def __init__(self, tmp_path, fault_specs=(), **kwargs):
        self.socket_path = str(tmp_path / "serve.sock")
        kwargs.setdefault("store_path", str(tmp_path / "store.jsonl"))
        kwargs.setdefault("config", TracerConfig(k=5, max_iterations=30))
        kwargs.setdefault("fault_specs", tuple(fault_specs))
        self.server = AnalysisServer(self.socket_path, **kwargs)
        self.plan = (
            faults.FaultPlan.from_specs(list(fault_specs))
            if fault_specs else None
        )
        ready = threading.Event()

        def run():
            async def main():
                task = asyncio.ensure_future(self.server.run())
                while not (
                    self.server._server is not None
                    and self.server._server.is_serving()
                ):
                    await asyncio.sleep(0.01)
                ready.set()
                await task

            with faults.fault_scope(self.plan):
                asyncio.run(main())

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert ready.wait(timeout=30)

    def client(self, **kwargs):
        kwargs.setdefault("timeout", 120)
        kwargs.setdefault("retries", 0)
        return ServeClient(self.socket_path, **kwargs)

    def stop(self):
        try:
            self.client(retries=2).shutdown()
        except ServeError:
            pass
        self.thread.join(timeout=30)
        assert not self.thread.is_alive()


def _solve_payload(request_id=None, source="t1", **extra):
    payload = dict(
        op="solve", kind="escape", program=ESCAPE_TEXT,
        query="pc", var="u", source=source,
    )
    payload.update(extra)
    if request_id is not None:
        payload["request_id"] = request_id
    return payload


class TestAdmission:
    def test_oversized_line_is_rejected_structurally(self, tmp_path):
        live = LiveServer(tmp_path, max_request_bytes=1024)
        try:
            client = live.client()
            with pytest.raises(ServeError) as excinfo:
                client.request(_solve_payload(program="x" * 4096))
            assert excinfo.value.code == "oversized"
            # The daemon survives and still answers on a new connection.
            assert client.ping()["pong"]
        finally:
            live.stop()

    def test_queue_full_sheds_with_retry_hint(self, tmp_path):
        live = LiveServer(
            tmp_path,
            fault_specs=("serve.worker:delay:delay=0.8,times=2",),
            queue_depth=1,
        )
        try:
            results = {}

            def submit(key):
                try:
                    results[key] = live.client().request(
                        _solve_payload(source=key)
                    )
                except ServeError as error:
                    results[key] = error

            first = threading.Thread(target=submit, args=("a",))
            first.start()
            time.sleep(0.3)  # "a" is executing, queue empty
            second = threading.Thread(target=submit, args=("b",))
            second.start()
            time.sleep(0.2)  # "b" occupies the queue's only slot
            with pytest.raises(ServeError) as excinfo:
                live.client().request(_solve_payload(source="c"))
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retryable
            assert excinfo.value.retry_after_ms >= 50
            first.join(30)
            second.join(30)
            assert results["a"]["ok"] and results["b"]["ok"]
            stats = live.client().stats()
            assert stats["telemetry"]["robustness"]["shed"] == {
                "overloaded": 1
            }
        finally:
            live.stop()

    def test_deadline_expires_while_queued(self, tmp_path):
        live = LiveServer(
            tmp_path,
            fault_specs=("serve.worker:delay:delay=0.8,times=1",),
        )
        try:
            background = threading.Thread(
                target=lambda: live.client().request(
                    _solve_payload(source="slow")
                )
            )
            background.start()
            time.sleep(0.3)  # the slow solve holds the slot
            with pytest.raises(ServeError) as excinfo:
                live.client().request(
                    _solve_payload(source="hurry", deadline_ms=50)
                )
            assert excinfo.value.code == "deadline_exceeded"
            assert not excinfo.value.retryable
            background.join(30)
            stats = live.client().stats()
            assert stats["telemetry"]["robustness"]["shed"] == {
                "deadline_exceeded": 1
            }
        finally:
            live.stop()

    def test_server_ceiling_clamps_client_deadline(self, tmp_path):
        live = LiveServer(
            tmp_path,
            fault_specs=("serve.worker:delay:delay=0.8,times=1",),
            max_deadline_ms=50,
        )
        try:
            background = threading.Thread(
                target=lambda: live.client().request(
                    _solve_payload(source="slow")
                )
            )
            background.start()
            time.sleep(0.3)
            with pytest.raises(ServeError) as excinfo:
                # Asks for 100s, but the server ceiling is 50ms.
                live.client().request(
                    _solve_payload(source="hurry", deadline_ms=100_000)
                )
            assert excinfo.value.code == "deadline_exceeded"
            background.join(30)
        finally:
            live.stop()

    def test_bad_deadline_is_a_bad_request(self, tmp_path):
        live = LiveServer(tmp_path)
        try:
            with pytest.raises(ServeError) as excinfo:
                live.client().request(
                    _solve_payload(deadline_ms="soonish")
                )
            assert excinfo.value.code == "bad_request"
        finally:
            live.stop()

    def test_dedup_ring_replays_completed_response(self, tmp_path):
        live = LiveServer(tmp_path)
        try:
            client = live.client()
            first = client.request(_solve_payload(request_id="rid-1"))
            again = client.request(_solve_payload(request_id="rid-1"))
            assert first["ok"] and again["ok"]
            assert "deduped" not in first
            assert again["deduped"] is True
            assert again["results"] == first["results"]
            stats = client.stats()
            assert stats["telemetry"]["robustness"]["deduped"] == 1
        finally:
            live.stop()

    def test_drain_finishes_inflight_work(self, tmp_path):
        live = LiveServer(
            tmp_path,
            fault_specs=("serve.worker:delay:delay=0.4,times=1",),
        )
        results = {}

        def submit():
            results["slow"] = live.client().request(
                _solve_payload(source="slow")
            )

        background = threading.Thread(target=submit)
        background.start()
        time.sleep(0.15)  # the solve is running when shutdown arrives
        live.client().shutdown()
        background.join(30)
        live.thread.join(timeout=30)
        assert not live.thread.is_alive()
        assert results["slow"]["ok"]


class TestSupervisedPool:
    def test_worker_crash_is_isolated_and_retried(self, tmp_path):
        specs = (
            "serve.worker:delay:delay=0.5,attempt=0",
            "serve.worker_kill:corrupt:at=1,times=1",
        )
        live = LiveServer(tmp_path, fault_specs=specs, workers=1)
        try:
            client = live.client(retries=3)
            reply = client.request(_solve_payload())
            assert reply["ok"]
            assert reply["results"][0]["verdict"] == "proven"
            assert client.retries_made >= 1
            stats = client.stats()
            assert stats["serving"]["worker_respawns"] >= 1
            assert stats["telemetry"]["robustness"]["respawns"] >= 1
            # The respawned worker keeps serving, now warm via the store.
            warm = client.request(_solve_payload())
            assert warm["ok"] and warm["mode"] == "replay"
        finally:
            live.stop()

    def test_worker_crash_without_retries_is_structured(self, tmp_path):
        specs = (
            "serve.worker:delay:delay=0.5,attempt=0",
            "serve.worker_kill:corrupt:at=1,times=1",
        )
        live = LiveServer(tmp_path, fault_specs=specs, workers=1)
        try:
            with pytest.raises(ServeError) as excinfo:
                live.client(retries=0).request(_solve_payload())
            assert excinfo.value.code == "worker_crashed"
            assert excinfo.value.retryable
            assert excinfo.value.retry_after_ms >= 50
        finally:
            live.stop()

    def test_worker_timeout_kills_and_respawns(self, tmp_path):
        live = LiveServer(
            tmp_path,
            fault_specs=("serve.worker:delay:delay=5,attempt=0",),
            workers=1,
            request_timeout=0.3,
        )
        try:
            with pytest.raises(ServeError) as excinfo:
                live.client(retries=0).request(
                    _solve_payload(request_id="rid-t")
                )
            assert excinfo.value.code == "worker_timeout"
            # The hung worker was killed.  A manual retry of the same
            # request id advances the server's attempt counter past the
            # pinned delay, and the respawned worker answers it.
            ok = live.client(retries=0).request(
                _solve_payload(request_id="rid-t")
            )
            assert ok["ok"]
            stats = live.client().stats()
            assert stats["serving"]["worker_respawns"] >= 1
        finally:
            live.stop()

    def test_corrupt_reply_recovered_via_dedup(self, tmp_path):
        live = LiveServer(
            tmp_path,
            fault_specs=("serve.reply:corrupt:at=2,times=1",),
            workers=1,
        )
        try:
            client = live.client(retries=2)
            first = client.request(_solve_payload(request_id="rid-x"))
            assert first["ok"]
            # This reply line is truncated on the wire; the retry is
            # answered from the dedup ring without re-solving.
            second = client.request(_solve_payload(request_id="rid-y"))
            assert second["ok"]
            assert second["deduped"] is True
            assert second["results"] == first["results"]
            assert client.retries_made == 1
        finally:
            live.stop()
