"""The on-disk knowledge store: round-trip, two-tier lookup, crash
tolerance of the underlying JSONL file."""

import json

import pytest

from repro.lang import parse_program
from repro.serve.store import (
    KnowledgeStore,
    STORE_VERSION,
    canonical_program_text,
    config_key,
    program_digest,
)

PROGRAM_TEXT = """
x = new File
y = x
x.open()
y.close()
observe check1
"""

CLIENT_INFO = {"kind": "TypestateClient", "universe": ["x", "y"]}


def _entry_args(digest, source="cli:prog.rp", queries=("typestate:check1",)):
    return dict(
        digest=digest,
        source=source,
        client_info=CLIENT_INFO,
        config=(5, 1, 30, None, None, None, 64, True),
        query_ids=list(queries),
        rounds=[{"round": 0, "queries": list(queries), "outcome": "ok"}],
        results={q: {"verdict": "proven"} for q in queries},
        witnesses={},
    )


class TestDigest:
    def test_same_program_same_fingerprint_same_digest(self):
        p1 = parse_program(PROGRAM_TEXT)
        p2 = parse_program(PROGRAM_TEXT)
        assert program_digest(p1, CLIENT_INFO) == program_digest(
            p2, CLIENT_INFO
        )

    def test_digest_separates_programs_and_fingerprints(self):
        program = parse_program(PROGRAM_TEXT)
        edited = parse_program(PROGRAM_TEXT + "z = new Sock\n")
        assert program_digest(program, CLIENT_INFO) != program_digest(
            edited, CLIENT_INFO
        )
        other = dict(CLIENT_INFO, tracked_site="Sock")
        assert program_digest(program, CLIENT_INFO) != program_digest(
            program, other
        )

    def test_canonical_text_handles_cfg_and_procgraph(self):
        from repro.lang import build_cfg

        program = parse_program(PROGRAM_TEXT)
        cfg = build_cfg(program)
        text = canonical_program_text(cfg)
        assert text.startswith("entry ")
        assert "open" in text

        class Graph:
            procedures = {"main": cfg, "helper": cfg}
            main = "main"

        graph_text = canonical_program_text(Graph())
        assert graph_text.startswith("main main")
        assert graph_text.count("proc ") == 2

    def test_config_key_excludes_engine(self):
        from repro.core.tracer import TracerConfig

        interpreted = TracerConfig(k=5, engine="interpreted")
        compiled = TracerConfig(k=5, engine="compiled")
        assert config_key(interpreted) == config_key(compiled)
        assert config_key(TracerConfig(k=3)) != config_key(TracerConfig(k=5))


class TestRoundTrip:
    def test_record_then_lookup_across_reopen(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        args = _entry_args("d" * 64)
        with KnowledgeStore(path) as store:
            store.record(**args)
            assert len(store) == 1
        with KnowledgeStore(path) as store:
            assert store.entries_loaded == 1
            entry = store.lookup(
                args["digest"], args["config"], args["query_ids"]
            )
            assert entry is not None
            assert entry["rounds"] == args["rounds"]
            assert store.hits == 1 and store.misses == 0

    def test_lookup_miss_counts(self, tmp_path):
        with KnowledgeStore(str(tmp_path / "s.jsonl")) as store:
            assert store.lookup("nope", (1,), ["q"]) is None
            assert store.misses == 1
            assert store.hit_rate == 0.0

    def test_seed_lookup_is_latest_by_source_and_kind(self, tmp_path):
        with KnowledgeStore(str(tmp_path / "s.jsonl")) as store:
            store.record(**_entry_args("a" * 64))
            newer = _entry_args("b" * 64)
            store.record(**newer)
            seed = store.lookup_seed("cli:prog.rp", "TypestateClient")
            assert seed is not None and seed["digest"] == "b" * 64
            assert store.lookup_seed("cli:prog.rp", "EscapeClient") is None
            assert store.lookup_seed(None, "TypestateClient") is None

    def test_forget_drops_both_indexes(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        args = _entry_args("c" * 64)
        with KnowledgeStore(path) as store:
            entry = store.record(**args)
            store.forget(entry)
            assert (
                store.lookup(args["digest"], args["config"], args["query_ids"])
                is None
            )
            assert store.lookup_seed("cli:prog.rp", "TypestateClient") is None
        # Forgetting is in-memory only: the file still carries the
        # entry, so the next process sees it again until re-recorded.
        with KnowledgeStore(path) as store:
            assert store.entries_loaded == 1


class TestCrashTolerance:
    def test_torn_trailing_line_is_recovered(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with KnowledgeStore(path) as store:
            store.record(**_entry_args("a" * 64))
        with open(path, "a") as handle:
            handle.write('{"type": "entry", "digest": "tor')  # SIGKILL here
        with KnowledgeStore(path) as store:
            assert store.entries_loaded == 1
            args = _entry_args("a" * 64)
            assert (
                store.lookup(args["digest"], args["config"], args["query_ids"])
                is not None
            )

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with KnowledgeStore(path) as store:
            store.record(**_entry_args("a" * 64))
            store.record(**_entry_args("b" * 64))
        lines = open(path).read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # damage a middle line
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            KnowledgeStore(path)

    def test_unknown_version_is_rejected(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with open(path, "w") as handle:
            handle.write(
                json.dumps(
                    {"type": "store_header", "version": STORE_VERSION + 1}
                )
                + "\n"
            )
        with pytest.raises(ValueError, match="unsupported store version"):
            KnowledgeStore(path)

    def test_unknown_record_types_are_tolerated(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with KnowledgeStore(path) as store:
            store.record(**_entry_args("a" * 64))
        with open(path, "a") as handle:
            handle.write(json.dumps({"type": "future_thing"}) + "\n")
        with KnowledgeStore(path) as store:
            assert store.entries_loaded == 1
