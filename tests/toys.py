"""Tiny toy primitives/theories shared across core tests.

The toy world: an abstraction ``p`` is a frozenset of names, an
abstract state ``d`` is a frozenset of names.  ``ParamFact(x)`` holds
iff ``x in p``; ``StateFact(x)`` holds iff ``x in d``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.formula import Primitive
from repro.core.viability import ParamTheory


@dataclass(frozen=True)
class ParamFact(Primitive):
    name: str

    def __str__(self) -> str:
        return f"param({self.name})"


@dataclass(frozen=True)
class StateFact(Primitive):
    name: str

    def __str__(self) -> str:
        return f"state({self.name})"


class ToyTheory(ParamTheory):
    def holds(self, prim, p, d) -> bool:
        if isinstance(prim, ParamFact):
            return prim.name in p
        if isinstance(prim, StateFact):
            return prim.name in d
        raise TypeError(prim)

    def is_param(self, prim) -> bool:
        return isinstance(prim, ParamFact)

    def param_var(self, prim):
        assert isinstance(prim, ParamFact)
        return (prim.name, True)


TOY = ToyTheory()
