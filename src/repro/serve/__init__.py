"""Analysis-as-a-service: resident sessions, a persistent knowledge
store, and a JSON-over-socket batch server.

* :mod:`repro.serve.session` — :class:`AnalysisSession`, the resident
  execution layer the CLI, the bench harness, and the server all share:
  prepared programs, client setups, the shared
  :class:`~repro.core.tracer.ForwardRunCache` (and with it the compiled
  kernel programs memoized on each client), and the warm-start logic
  that seeds new searches from the store.
* :mod:`repro.serve.store` — :class:`KnowledgeStore`, the on-disk
  crash-safe store keyed by program digest that persists learned
  clauses, round records, verdicts, and annotation digests across
  daemon restarts.
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — the
  ``repro serve`` daemon (asyncio JSON-over-unix-socket) and the
  blocking client behind ``repro submit``.

See ``docs/SERVING.md`` for the protocol and the store format.
"""

from repro.serve.session import AnalysisSession, SessionResult
from repro.serve.store import KnowledgeStore, config_key, program_digest

__all__ = [
    "AnalysisSession",
    "KnowledgeStore",
    "SessionResult",
    "config_key",
    "program_digest",
]
