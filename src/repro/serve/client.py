"""Blocking client for the ``repro serve`` daemon.

One newline-delimited JSON request/response per call, over a fresh
``AF_UNIX`` connection (the daemon queues requests FIFO server-side,
so per-call connections keep the client trivially correct).  Used by
``repro submit`` and by the serve smoke tests; scripting against the
daemon from Python looks like::

    from repro.serve.client import ServeClient

    with ServeClient("/tmp/repro.sock") as cli:
        cli.ping()
        reply = cli.solve("typestate", open("prog.rp").read(),
                          query="check1", allowed=["closed"])
        for entry in reply["results"]:
            print(entry["query"], entry["verdict"])
"""

from __future__ import annotations

import json
import socket
import uuid
from typing import Optional

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The daemon answered ``{"ok": false}`` (the message is its
    ``error`` field) or the transport failed."""


class ServeClient:
    def __init__(self, socket_path: str, timeout: Optional[float] = 600.0):
        self.socket_path = socket_path
        self.timeout = timeout

    def request(self, payload: dict) -> dict:
        """Send one request and return the decoded response; raises
        :class:`ServeError` on ``ok: false`` or transport failure.

        A ``request_id`` is minted client-side when the payload has
        none; the daemon uses it as the trace id for every span/event
        the request produces and echoes it in the response, so a
        client log line can be joined against the daemon's trace."""
        payload = dict(payload)
        payload.setdefault("request_id", uuid.uuid4().hex[:16])
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
                sock.sendall(
                    (json.dumps(payload) + "\n").encode("utf-8")
                )
                with sock.makefile("r", encoding="utf-8") as stream:
                    line = stream.readline()
        except OSError as error:
            raise ServeError(
                f"cannot reach daemon at {self.socket_path}: {error}"
            ) from error
        if not line:
            raise ServeError("daemon closed the connection without a reply")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServeError(response.get("error", "request failed"))
        return response

    # -- convenience wrappers -------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def metrics(self) -> dict:
        """Scrape the daemon's Prometheus text exposition (the
        ``prometheus`` field of the reply)."""
        return self.request({"op": "metrics"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def solve(
        self,
        kind: str,
        program: str,
        *,
        query: str,
        source: Optional[str] = None,
        config: Optional[dict] = None,
        **params,
    ) -> dict:
        payload = {
            "op": "solve",
            "kind": kind,
            "program": program,
            "query": query,
        }
        if source is not None:
            payload["source"] = source
        if config:
            payload["config"] = config
        payload.update(params)
        return self.request(payload)

    def solve_benchmark(
        self,
        benchmark: str,
        analysis: str,
        config: Optional[dict] = None,
    ) -> dict:
        payload = {
            "op": "solve-bench",
            "benchmark": benchmark,
            "analysis": analysis,
        }
        if config:
            payload["config"] = config
        return self.request(payload)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> bool:
        return False
