"""Blocking, retrying client for the ``repro serve`` daemon.

One newline-delimited JSON request/response per call, over a fresh
``AF_UNIX`` connection (the daemon queues requests FIFO server-side,
so per-call connections keep the client trivially correct).  Used by
``repro submit`` and by the serve smoke tests; scripting against the
daemon from Python looks like::

    from repro.serve.client import ServeClient

    with ServeClient("/tmp/repro.sock") as cli:
        cli.ping()
        reply = cli.solve("typestate", open("prog.rp").read(),
                          query="check1", allowed=["closed"])
        for entry in reply["results"]:
            print(entry["query"], entry["verdict"])

**Resilience.**  :meth:`request` retries — with capped exponential
backoff and jitter — on transport failures (connection refused or
reset, a closed-without-reply socket, an undecodable reply line) and
on the daemon's *retryable* error envelopes (``worker_crashed`` while
the supervisor respawns, ``overloaded`` while the queue drains; a
``retry_after_ms`` hint in the envelope overrides the backoff).
Every attempt reuses the same ``request_id``, so a retry of a request
whose first reply was lost in flight is answered from the daemon's
dedup ring (``"deduped": true``) instead of re-solving — retries are
exactly-once-ish by construction.  Non-retryable failures
(``bad_request``, ``deadline_exceeded``, ``internal``) raise
immediately as :class:`ServeError`, which carries the envelope's
machine-readable ``code`` alongside the message.
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid
from typing import Optional

from repro.robust import faults

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The daemon answered ``{"ok": false}`` (the message is its
    ``error`` field) or the transport failed after every retry.

    ``code`` is the envelope's machine-readable failure class
    (``"transport"`` and ``"bad_reply"`` are minted client-side);
    ``retryable`` says whether the client exhausted retries getting
    here; ``response`` is the full envelope when there was one."""

    def __init__(
        self,
        message: str,
        code: str = "error",
        retryable: bool = False,
        retry_after_ms: Optional[int] = None,
        response: Optional[dict] = None,
    ):
        super().__init__(message)
        self.code = code
        self.retryable = retryable
        self.retry_after_ms = retry_after_ms
        self.response = response


class ServeClient:
    def __init__(
        self,
        socket_path: str,
        timeout: Optional[float] = 600.0,
        retries: int = 2,
        backoff_seconds: float = 0.05,
        backoff_cap: float = 2.0,
        sleep=time.sleep,
        rng: Optional[random.Random] = None,
    ):
        self.socket_path = socket_path
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_seconds = backoff_seconds
        self.backoff_cap = backoff_cap
        self.attempts_made = 0  # across the client's lifetime
        self.retries_made = 0
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    # -- the wire ---------------------------------------------------------

    def _once(self, payload: dict) -> dict:
        """One attempt: connect, send, read one line, decode.  Raises
        :class:`ServeError` with a retryable ``transport`` /
        ``bad_reply`` code on wire trouble; envelope handling is the
        caller's."""
        try:
            faults.inject("serve.transport")
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
                sock.sendall(
                    (json.dumps(payload) + "\n").encode("utf-8")
                )
                with sock.makefile("r", encoding="utf-8") as stream:
                    line = stream.readline()
        except OSError as error:
            raise ServeError(
                f"cannot reach daemon at {self.socket_path}: {error}",
                code="transport",
                retryable=True,
            ) from error
        if not line:
            raise ServeError(
                "daemon closed the connection without a reply",
                code="transport",
                retryable=True,
            )
        try:
            return json.loads(line)
        except json.JSONDecodeError as error:
            # A truncated or garbled reply line: show what actually
            # arrived (prefix-bounded) instead of a bare decode error.
            prefix = line[:120] + ("..." if len(line) > 120 else "")
            raise ServeError(
                f"undecodable reply from daemon "
                f"(JSON error: {error}): {prefix!r}",
                code="bad_reply",
                retryable=True,
            ) from error

    def backoff(self, attempt: int) -> float:
        """Capped exponential backoff with jitter for retry number
        ``attempt`` (0-based): ``base * 2^attempt``, capped, then
        scaled by a uniform factor in [0.5, 1.5)."""
        delay = min(self.backoff_cap, self.backoff_seconds * (2 ** attempt))
        return delay * (0.5 + self._rng.random())

    def request(self, payload: dict) -> dict:
        """Send one request and return the decoded response; raises
        :class:`ServeError` on ``ok: false`` or on transport failure
        that survives every retry.

        A ``request_id`` is minted client-side when the payload has
        none; the daemon uses it as the trace id for every span/event
        the request produces and echoes it in the response, so a
        client log line can be joined against the daemon's trace —
        and every retry reuses it, so the daemon can dedup."""
        payload = dict(payload)
        payload.setdefault("request_id", uuid.uuid4().hex[:16])
        last: Optional[ServeError] = None
        for attempt in range(self.retries + 1):
            self.attempts_made += 1
            if attempt > 0:
                self.retries_made += 1
            try:
                response = self._once(payload)
            except ServeError as error:
                last = error
                if attempt < self.retries:
                    self._sleep(self.backoff(attempt))
                    continue
                raise
            if response.get("ok"):
                return response
            error = ServeError(
                response.get("error", "request failed"),
                code=response.get("code", "error"),
                retryable=bool(response.get("retryable")),
                retry_after_ms=response.get("retry_after_ms"),
                response=response,
            )
            if error.retryable and attempt < self.retries:
                last = error
                hint = error.retry_after_ms
                delay = (
                    hint / 1000.0 if hint is not None
                    else self.backoff(attempt)
                )
                self._sleep(min(delay, self.backoff_cap))
                continue
            raise error
        raise last  # unreachable: the loop raises or returns

    # -- convenience wrappers -------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def metrics(self) -> dict:
        """Scrape the daemon's Prometheus text exposition (the
        ``prometheus`` field of the reply)."""
        return self.request({"op": "metrics"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def solve(
        self,
        kind: str,
        program: str,
        *,
        query: str,
        source: Optional[str] = None,
        config: Optional[dict] = None,
        **params,
    ) -> dict:
        payload = {
            "op": "solve",
            "kind": kind,
            "program": program,
            "query": query,
        }
        if source is not None:
            payload["source"] = source
        if config:
            payload["config"] = config
        payload.update(params)
        return self.request(payload)

    def solve_benchmark(
        self,
        benchmark: str,
        analysis: str,
        config: Optional[dict] = None,
        **params,
    ) -> dict:
        payload = {
            "op": "solve-bench",
            "benchmark": benchmark,
            "analysis": analysis,
        }
        if config:
            payload["config"] = config
        payload.update(params)
        return self.request(payload)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> bool:
        return False
