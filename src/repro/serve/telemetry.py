"""Per-request telemetry for the ``repro serve`` daemon.

One :class:`ServingTelemetry` per :class:`~repro.serve.server.AnalysisServer`
owns the serving instruments — latency/queue/phase histograms, request
and warm-tier counters, in-flight and store gauges — plus a bounded
in-memory ring of recent request summaries (surfaced through the
``stats`` op and rendered by ``repro top``).

The instruments register *weakly* with the current
:class:`~repro.obs.metrics.MetricsRegistry`; the telemetry object
holds the only strong references, so when a server is collected its
metrics drop out of scrapes exactly like a collected cache's counters
do.  Everything here is updated from the daemon's single worker thread
(plus the lock-free ``ping``/``stats``/``metrics`` ops, whose updates
are simple dict/deque mutations — atomic under the GIL).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
)

__all__ = ["ServingTelemetry"]

#: Queue waits are short unless the daemon is saturated; keep the same
#: shape as the latency buckets.
QUEUE_BUCKETS = DEFAULT_LATENCY_BUCKETS

#: The warm-start outcome tiers a solve can report.
TIERS = ("cold", "replay", "clauses", "stale")


class ServingTelemetry:
    """The daemon's instruments and recent-request ring."""

    def __init__(
        self,
        store=None,
        recent: int = 64,
        registry: Optional[obs_metrics.MetricsRegistry] = None,
        clock=time.time,
    ):
        registry = (
            registry if registry is not None
            else obs_metrics.current_registry()
        )
        self.clock = clock
        self.request_seconds = Histogram(
            "repro_request_seconds",
            help="End-to-end request latency by op.",
            labelnames=("op",),
        )
        self.queue_seconds = Histogram(
            "repro_request_queue_seconds",
            help="Time a request waited for the worker thread.",
            buckets=QUEUE_BUCKETS,
        )
        self.phase_seconds = Histogram(
            "repro_phase_seconds",
            help="Exclusive per-phase wall-clock within one request.",
            labelnames=("phase",),
        )
        self.requests_total = Counter(
            "repro_requests_total",
            help="Requests served, by op and outcome.",
            labelnames=("op", "ok"),
        )
        self.warm_tier_total = Counter(
            "repro_warm_tier_total",
            help="Solved units by warm-start tier.",
            labelnames=("tier",),
        )
        self.in_flight = Gauge(
            "repro_in_flight_requests",
            help="Requests currently being handled.",
        )
        self.store_hit_rate = Gauge(
            "repro_store_hit_rate",
            help="Knowledge-store replay-tier hit rate.",
        )
        self.store_entries = Gauge(
            "repro_store_entries",
            help="Entries in the knowledge store.",
        )
        self.queue_depth = Gauge(
            "repro_queue_depth",
            help="Requests waiting in the admission queue.",
        )
        self.pool_workers = Gauge(
            "repro_pool_workers",
            help="Supervised worker processes currently alive.",
        )
        self.shed_total = Counter(
            "repro_requests_shed_total",
            help="Requests shed by admission control, by reason.",
            labelnames=("reason",),
        )
        self.dedup_total = Counter(
            "repro_requests_deduped_total",
            help="Retried requests answered from the dedup ring "
            "or coalesced onto an in-flight execution.",
        )
        self.respawn_total = Counter(
            "repro_worker_respawns_total",
            help="Supervised worker respawns after a crash or hang.",
        )
        self.compact_total = Counter(
            "repro_store_compactions_total",
            help="Knowledge-store compactions triggered by the daemon.",
        )
        if store is not None:
            self.store_hit_rate.set_function(lambda: store.hit_rate)
            self.store_entries.set_function(lambda: len(store))
        self.recent = deque(maxlen=recent)
        self._in_flight: Dict[str, dict] = {}
        for instrument in (
            self.request_seconds,
            self.queue_seconds,
            self.phase_seconds,
            self.requests_total,
            self.warm_tier_total,
            self.in_flight,
            self.store_hit_rate,
            self.store_entries,
            self.queue_depth,
            self.pool_workers,
            self.shed_total,
            self.dedup_total,
            self.respawn_total,
            self.compact_total,
        ):
            registry.register_instrument(instrument)

    # -- the request lifecycle --------------------------------------------

    def begin(self, request_id: str, op: str) -> None:
        self._in_flight[request_id] = {
            "request_id": request_id,
            "op": op,
            "started": self.clock(),
        }
        self.in_flight.inc()

    def finish(
        self,
        request_id: str,
        op: str,
        ok: bool,
        mode: Optional[str],
        seconds: float,
        queue_seconds: float,
        phases: Optional[Dict[str, float]] = None,
    ) -> None:
        self._in_flight.pop(request_id, None)
        self.in_flight.dec()
        self.request_seconds.observe(seconds, op=str(op))
        self.queue_seconds.observe(queue_seconds)
        if phases:
            for phase, phase_sec in phases.items():
                self.phase_seconds.observe(phase_sec, phase=phase)
        self.requests_total.inc(op=str(op), ok=str(bool(ok)).lower())
        summary = {
            "request_id": request_id,
            "op": op,
            "ok": bool(ok),
            "mode": mode,
            "seconds": round(seconds, 6),
            "queue_seconds": round(queue_seconds, 6),
            "finished": self.clock(),
        }
        if phases:
            summary["phases"] = {
                phase: round(sec, 6) for phase, sec in phases.items()
            }
        self.recent.append(summary)

    def count_tier(self, mode: Optional[str], units: int = 1) -> None:
        """Record ``units`` solved units answered from tier ``mode``."""
        if mode in TIERS:
            self.warm_tier_total.inc(units, tier=mode)

    # -- robustness machinery ---------------------------------------------

    def shed(self, reason: str) -> None:
        """One request refused by admission control (queue full,
        deadline expired while queued, oversized line)."""
        self.shed_total.inc(reason=str(reason))

    def deduped(self) -> None:
        """One retried request answered without re-solving."""
        self.dedup_total.inc()

    def respawned(self) -> None:
        """One supervised worker respawn."""
        self.respawn_total.inc()

    def compacted(self) -> None:
        """One daemon-triggered store compaction."""
        self.compact_total.inc()

    def shed_counts(self) -> Dict[str, int]:
        return {
            labels.get("reason", ""): int(value)
            for labels, value in self.shed_total.samples()
        }

    # -- snapshots for the stats op ---------------------------------------

    def tier_counts(self) -> Dict[str, int]:
        return {
            tier: int(self.warm_tier_total.value(tier=tier))
            for tier in TIERS
        }

    def snapshot(self) -> dict:
        """The ``stats`` op's ``telemetry`` section."""
        in_flight = sorted(
            self._in_flight.values(), key=lambda e: e["started"]
        )
        now = self.clock()
        return {
            "in_flight": [
                {**entry, "running_seconds": round(now - entry["started"], 6)}
                for entry in in_flight
            ],
            "recent": list(self.recent),
            "tiers": self.tier_counts(),
            "robustness": {
                "shed": self.shed_counts(),
                "deduped": int(self.dedup_total.value()),
                "respawns": int(self.respawn_total.value()),
                "compactions": int(self.compact_total.value()),
            },
        }
