"""The resident analysis session.

One :class:`AnalysisSession` owns everything that used to die with the
process: prepared benchmark programs (the front-end pipeline is run
once per name), built client setups (and with them the compiled kernel
programs memoized on each client), one shared
:class:`~repro.core.tracer.ForwardRunCache`, and — when a
:class:`~repro.serve.store.KnowledgeStore` is attached — the
warm-start logic that seeds every new search from prior knowledge.

The session is the single execution layer under three frontends:

* the one-shot CLI solvers build their client through the session's
  builders and run :meth:`solve` (``--store`` attaches a store);
* the bench harness and the parallel executor use the session's
  program memos (:meth:`prepare` / :meth:`seed` / :meth:`instance`)
  instead of their former module-level caches;
* the ``repro serve`` daemon keeps one session resident and routes
  every request through it.

Warm-start protocol of :meth:`solve` (see also
:class:`~repro.core.tracer.WarmStart`):

1. exact store hit (same program digest, config, query set) — the
   recorded rounds replay; verdicts, certificates, and journal records
   are bit-identical to a cold search and no forward fixpoint runs;
   a stale entry (the integrity checks fail) is forgotten and the
   search re-runs cold — a bad store can cost time, never answers;
2. seed hit (same submission source, changed digest — an edited
   program) — each recorded witness trace is replayed against the
   *current* program (:func:`~repro.core.selfcheck.check_soundness_on_trace`)
   and its failure clauses re-derived from the current semantics
   (:func:`~repro.core.meta.backward_trace`); only clauses justified
   by a replaying witness seed the new search;
3. otherwise the search runs cold; either way the finished search is
   recorded back to the store.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.meta import backward_trace
from repro.core.selfcheck import check_soundness_on_trace
from repro.core.stats import QueryRecord, QueryStatus
from repro.core.tracer import (
    ForwardRunCache,
    TracerConfig,
    WarmStart,
    run_query_group,
)
from repro.core.viability import ViabilityStore
from repro.escape.client import EscapeClient, EscapeQuery
from repro.escape.domain import EscSchema
from repro.lang.parser import parse_program
from repro.lang.universe import collect_universe
from repro.obs import trace as obs
from repro.provenance.client import ProvenanceClient, ProvenanceQuery
from repro.robust.certify import CertificateStore
from repro.robust.journal import (
    JournalMismatch,
    RoundCollector,
    clause_to_jsonable,
    trace_from_jsonable,
)
from repro.serve.store import KnowledgeStore, config_key, program_digest
from repro.typestate.automaton import file_automaton, stress_automaton
from repro.typestate.client import TypestateClient, TypestateQuery

__all__ = [
    "AnalysisSession",
    "SessionResult",
    "describe_client",
    "process_session",
]


def describe_client(client) -> dict:
    """A JSON-able fingerprint of everything besides the program that
    determines a client's search: the analysis kind, the parameter
    universe, and the client-specific configuration (automaton,
    tracked site, schemas).  Participates in the store digest — two
    submissions warm-start off each other only when their fingerprints
    agree."""
    analysis = client.analysis
    space = analysis.param_space
    universe = getattr(space, "universe", None)
    if universe is None:
        universe = getattr(space, "keys", None)
    info: dict = {
        "kind": type(client).__name__,
        "universe": sorted(universe) if universe is not None else None,
    }
    automaton = getattr(analysis, "automaton", None)
    if automaton is not None:
        info["automaton"] = {
            "name": automaton.name,
            "states": sorted(automaton.states),
            "methods": sorted(automaton.methods),
            "init": automaton.init,
        }
        info["tracked_site"] = getattr(analysis, "tracked_site", None)
        event_labels = getattr(analysis, "event_labels", None)
        info["event_labels"] = (
            sorted(event_labels) if event_labels is not None else None
        )
    schema = getattr(client, "schema", None)
    if schema is not None:
        for attr in ("locals", "fields", "variables"):
            values = getattr(schema, attr, None)
            if values is not None:
                info[f"schema_{attr}"] = sorted(values)
    return info


@dataclass
class SessionResult:
    """What one :meth:`AnalysisSession.solve` produced."""

    #: Per-query records, keyed by the query objects passed in.
    records: Dict[object, QueryRecord]
    #: The caller's certificate store, populated (``None`` unless one
    #: was passed — the session's internal certification for the
    #: knowledge store is not exposed here).
    certificates: Optional[CertificateStore]
    #: How the search started: ``"cold"``, ``"replay"`` (exact store
    #: hit, rounds re-enacted), ``"clauses"`` (seed hit, validated
    #: clauses), or ``"stale"`` (a replay attempt failed its integrity
    #: checks and the search re-ran cold).
    mode: str
    #: Store key of the submission (``None`` without a store).
    digest: Optional[str]
    #: True when the store answered (replay tier).
    store_hit: bool
    #: The executed (or replayed) round records, when collected.
    rounds: List[dict] = field(default_factory=list)


class AnalysisSession:
    """Resident state shared across solves; see the module doc."""

    def __init__(
        self,
        store: Optional[KnowledgeStore] = None,
        forward_cache_size: int = 256,
    ):
        self.store = store
        self._forward_cache_size = forward_cache_size
        self._forward_cache: Optional[ForwardRunCache] = None
        #: Standard suite benchmarks by name (the prepare memo, and the
        #: cross-token fallback the parallel executor relies on).
        self._benches: Dict[str, object] = {}
        #: Seeded instances by (name, token) — custom programs too.
        self._instances: Dict[Tuple[str, int], object] = {}
        self._seed_tokens = itertools.count()
        #: Built (client, queries) setups per standard (bench, analysis).
        self._setups: Dict[Tuple[str, str], list] = {}
        #: Built text-program clients by (kind, text, params).
        self._clients: Dict[Tuple, tuple] = {}
        #: Digests this session has already opened (for the
        #: ``session_opened`` lifecycle event).
        self._digests: set = set()
        self.stats: Dict[str, int] = {
            "solves": 0,
            "programs_prepared": 0,
            "programs_opened": 0,
            "warm_replays": 0,
            "warm_clause_runs": 0,
            "warm_seeded_clauses": 0,
            "warm_dropped_clauses": 0,
            "stale_entries": 0,
        }

    # -- resident caches ------------------------------------------------------

    @property
    def forward_cache(self) -> ForwardRunCache:
        """The session-wide forward-run cache, created lazily so it
        registers its counters with whatever metrics registry is
        ambient at first use."""
        if self._forward_cache is None:
            self._forward_cache = ForwardRunCache(self._forward_cache_size)
        return self._forward_cache

    def prepare(self, name: str, front=None):
        """A prepared :class:`~repro.bench.harness.BenchmarkInstance`,
        memoized per suite name (custom ``front`` programs are prepared
        fresh — their identity is the object, not the name)."""
        from repro.bench.harness import prepare_uncached

        if front is not None:
            return prepare_uncached(name, front)
        bench = self._benches.get(name)
        if bench is None:
            bench = prepare_uncached(name)
            self._benches[name] = bench
            self.stats["programs_prepared"] += 1
        return bench

    def seed(self, bench) -> int:
        """Register an already-prepared instance under a fresh token
        (the parallel executor seeds the parent's instance before the
        pool forks, so workers inherit it)."""
        token = next(self._seed_tokens)
        self._instances[(bench.name, token)] = bench
        if bench.standard:
            self._benches.setdefault(bench.name, bench)
        return token

    def instance(self, name: str, token: int, front=None):
        """The instance a work unit names: the seeded one when this
        process inherited it, the standard memo as a cross-token
        fallback (suite programs are deterministic functions of their
        name), or a fresh preparation."""
        from repro.bench.harness import prepare_uncached

        bench = self._instances.get((name, token))
        if bench is None and front is None:
            bench = self._benches.get(name)
            if bench is not None:
                self._instances[(name, token)] = bench
        if bench is None:
            bench = prepare_uncached(name, front)
            self._instances[(name, token)] = bench
            if front is None and bench.standard:
                self._benches.setdefault(name, bench)
        return bench

    def client_setups(self, bench, analysis: str) -> list:
        """The ``(client, queries)`` setups of one analysis, resident
        for standard benchmarks so compiled kernels, wp memos, and
        cache keys survive across requests."""
        from repro.bench.harness import analysis_setups

        if not getattr(bench, "standard", False):
            return analysis_setups(bench, analysis)
        key = (bench.name, analysis)
        setups = self._setups.get(key)
        if setups is None:
            setups = analysis_setups(bench, analysis)
            self._setups[key] = setups
        return setups

    # -- text-program client builders (shared by CLI and server) --------------

    def typestate_client(
        self,
        text: str,
        automaton_name: str = "file",
        site: Optional[str] = None,
    ):
        """Build (or reuse) the type-state client of one program text;
        returns ``(client, universe, automaton, resolved_site)``.
        Raises ``ValueError`` on an unusable program."""
        key = ("typestate", text, automaton_name, site)
        built = self._clients.get(key)
        if built is not None:
            return built
        program, universe = _parse(text)
        if automaton_name == "file":
            automaton = file_automaton()
        else:
            if not universe.methods:
                raise ValueError(
                    "stress automaton needs at least one method call "
                    "in the program"
                )
            automaton = stress_automaton(sorted(universe.methods))
        resolved = site or (
            sorted(universe.sites)[0] if universe.sites else None
        )
        if resolved is None:
            raise ValueError(
                "the program allocates nothing; pass a site explicitly"
            )
        client = TypestateClient(
            program, automaton, resolved, universe.variables
        )
        built = (client, universe, automaton, resolved)
        self._clients[key] = built
        return built

    def escape_client(self, text: str):
        """Build (or reuse) the thread-escape client of one program
        text; returns ``(client, universe)``."""
        key = ("escape", text)
        built = self._clients.get(key)
        if built is not None:
            return built
        program, universe = _parse(text)
        schema = EscSchema(sorted(universe.variables), sorted(universe.fields))
        client = EscapeClient(program, schema, universe.sites)
        built = (client, universe)
        self._clients[key] = built
        return built

    def provenance_client(self, text: str):
        """Build (or reuse) the provenance client of one program text;
        returns ``(client, universe)``."""
        key = ("provenance", text)
        built = self._clients.get(key)
        if built is not None:
            return built
        program, universe = _parse(text)
        client = ProvenanceClient(
            program, PtSchemaLazy(universe.variables), universe.sites
        )
        built = (client, universe)
        self._clients[key] = built
        return built

    # -- the solve path -------------------------------------------------------

    def solve(
        self,
        client,
        queries: Sequence[object],
        config: TracerConfig = TracerConfig(),
        *,
        journal=None,
        certificates: Optional[CertificateStore] = None,
        source: Optional[str] = None,
    ) -> SessionResult:
        """Run grouped TRACER through the session: warm-start from the
        store when possible, record the finished search back to it, and
        share the resident forward-run cache either way.

        ``journal`` is the caller's :class:`SearchJournal` (fresh or
        resuming).  A *resuming* journal takes precedence over the
        store — its rounds already are this search's knowledge — and
        the resumed run is not re-recorded.  With a fresh journal, a
        warm replay writes the replayed rounds through, so the journal
        file is bit-identical to a cold run's.
        """
        queries = list(queries)
        query_ids = [str(q) for q in queries]
        self.stats["solves"] += 1
        resuming = journal is not None and getattr(journal, "replaying", False)
        store = self.store
        digest: Optional[str] = None
        ckey = config_key(config)
        warm: Optional[WarmStart] = None
        entry: Optional[dict] = None
        mode = "cold"
        if store is not None and not resuming:
            info = describe_client(client)
            digest = program_digest(client.program, info)
            if digest not in self._digests:
                self._digests.add(digest)
                self.stats["programs_opened"] += 1
                if obs.active():
                    obs.event(
                        "session_opened",
                        digest=digest[:12],
                        kind=info.get("kind"),
                        source=source,
                        queries=len(queries),
                    )
            entry = store.lookup(digest, ckey, query_ids)
            if entry is not None:
                warm = _replay_warm(entry)
                mode = "replay"
            else:
                seed = store.lookup_seed(source, info.get("kind"))
                if seed is not None and seed.get("digest") != digest:
                    clauses, kept, dropped = self._validated_seed(
                        client, queries, seed, config
                    )
                    self.stats["warm_seeded_clauses"] += kept
                    self.stats["warm_dropped_clauses"] += dropped
                    if clauses:
                        warm = WarmStart(clauses=clauses)
                        mode = "clauses"
                        self.stats["warm_clause_runs"] += 1
        recording = store is not None and not resuming

        def run(active_warm, sink, certs):
            return run_query_group(
                client,
                queries,
                config,
                forward_cache=self.forward_cache,
                journal=(sink if sink is not None else journal),
                certificates=certs,
                warm_start=active_warm,
            )

        if mode == "replay":
            # Replay attempt: collect rounds and certificates privately,
            # so a stale entry cannot leave half a search in the
            # caller's journal or certificate store; on success both are
            # written through afterwards.
            private = (
                CertificateStore() if certificates is not None else None
            )
            collector = RoundCollector()
            try:
                records = run(warm, collector, private)
            except JournalMismatch:
                store.forget(entry)
                self.stats["stale_entries"] += 1
                warm, entry, mode = None, None, "stale"
            else:
                if journal is not None:
                    journal.begin(query_ids)
                    for rec in collector.rounds:
                        journal.record_round(rec)
                if private is not None:
                    for cert in private.certificates:
                        certificates.add(cert)
                self.stats["warm_replays"] += 1
                return SessionResult(
                    records=records,
                    certificates=certificates,
                    mode=mode,
                    digest=digest,
                    store_hit=True,
                    rounds=collector.rounds,
                )
        # The caller's certificate store doubles as the recording
        # source; without one, a private store still collects the
        # annotation digests and witnesses the knowledge store needs.
        certs = certificates
        if certs is None and recording:
            certs = CertificateStore()
        collector = RoundCollector(inner=journal) if recording else None
        records = run(warm, collector, certs)
        if recording:
            self._record(
                digest, source, client, ckey, query_ids, collector, certs
            )
        return SessionResult(
            records=records,
            certificates=certificates,
            mode=mode,
            digest=digest,
            store_hit=False,
            rounds=collector.rounds if collector is not None else [],
        )

    def solve_benchmark(
        self,
        name: str,
        analysis: str,
        config: Optional[TracerConfig] = None,
        certificates: Optional[CertificateStore] = None,
    ) -> List[Tuple[int, list, SessionResult]]:
        """Run every unit of one benchmark/analysis through the
        session; returns ``(unit index, queries, SessionResult)``
        triples in serial-harness order."""
        from repro.bench.harness import DEFAULT_CONFIG

        config = config if config is not None else DEFAULT_CONFIG
        bench = self.prepare(name)
        out: List[Tuple[int, list, SessionResult]] = []
        for index, (client, unit_queries) in enumerate(
            self.client_setups(bench, analysis)
        ):
            if not unit_queries:
                continue
            result = self.solve(
                client,
                unit_queries,
                config,
                certificates=certificates,
                source=f"bench:{name}:{analysis}:{index}",
            )
            out.append((index, list(unit_queries), result))
        return out

    # -- internals ------------------------------------------------------------

    def _validated_seed(
        self, client, queries, seed: dict, config: TracerConfig
    ) -> Tuple[Dict[str, list], int, int]:
        """Validate a cross-digest seed entry witness by witness: the
        recorded counterexample trace must replay as a genuine
        counterexample on the *current* program, and the clauses fed
        to the new search are re-derived from the current semantics —
        never copied from the old program.  Returns ``(clauses by
        query id, witnesses kept, witnesses dropped)``."""
        analysis = client.analysis
        meta = client.meta
        d_init = analysis.initial_state()
        bottom = analysis.param_space.bottom()
        by_id = {str(q): q for q in queries}
        out: Dict[str, list] = {}
        kept = dropped = 0
        for qid, witnesses in (seed.get("witnesses") or {}).items():
            query = by_id.get(qid)
            if query is None:
                continue
            clauses: list = []
            for witness in witnesses:
                try:
                    trace = trace_from_jsonable(witness.get("trace") or [])
                    refuted = frozenset(witness.get("abstraction") or ())
                    fail = client.fail_condition(query)
                    violations = check_soundness_on_trace(
                        analysis,
                        meta,
                        trace,
                        refuted,
                        d_init,
                        fail,
                        other_params=(bottom,),
                        k=witness.get("k"),
                        max_cubes=config.max_cubes,
                    )
                    if violations:
                        dropped += 1
                        continue
                    derived = backward_trace(
                        meta,
                        analysis,
                        trace,
                        refuted,
                        d_init,
                        fail,
                        k=witness.get("k"),
                        max_cubes=config.max_cubes,
                    )
                    probe = ViabilityStore(meta.theory, d_init)
                    added = probe.add_failure_condition(derived.condition)
                except Exception:
                    # An unreplayable witness (commands or names gone
                    # from the edited program) carries no knowledge.
                    dropped += 1
                    continue
                kept += 1
                clauses.extend(clause_to_jsonable(c) for c in added)
            if clauses:
                out[qid] = clauses
        return out, kept, dropped

    def _record(
        self, digest, source, client, ckey, query_ids, collector, certs
    ) -> None:
        by_query = certs.by_query()
        results: Dict[str, dict] = {}
        witnesses: Dict[str, list] = {}
        for qid in query_ids:
            cert = by_query.get(qid)
            if cert is None:
                continue
            results[qid] = {
                "verdict": cert["verdict"],
                "abstraction": cert["abstraction"],
                "cost": cert["abstraction_cost"],
                "iterations": cert["iterations"],
                "annotation_digest": cert["annotation_digest"],
            }
            witnesses[qid] = cert["witnesses"]
        self.store.record(
            digest,
            source,
            describe_client(client),
            ckey,
            query_ids,
            collector.rounds,
            results,
            witnesses,
        )


def _replay_warm(entry: dict) -> WarmStart:
    digests: Dict[str, Tuple[Tuple[str, ...], str]] = {}
    for qid, result in (entry.get("results") or {}).items():
        if (
            result.get("verdict") == QueryStatus.PROVEN.value
            and result.get("abstraction") is not None
            and result.get("annotation_digest")
        ):
            digests[qid] = (
                tuple(result["abstraction"]),
                result["annotation_digest"],
            )
    return WarmStart(
        rounds=entry.get("rounds") or [],
        digests=digests,
        queries=list(entry.get("queries") or []),
    )


def _parse(text: str):
    program = parse_program(text)
    return program, collect_universe(program)


def PtSchemaLazy(variables):
    from repro.provenance.domain import PtSchema

    return PtSchema(variables)


#: The process-wide session the bench layers share (workers inherit it
#: through fork, exactly like the former module-level memos in
#: ``bench/parallel.py``).  It has no knowledge store — stores are
#: opted into per frontend (``--store``, ``repro serve --store``).
_PROCESS_SESSION: Optional[AnalysisSession] = None


def process_session() -> AnalysisSession:
    global _PROCESS_SESSION
    if _PROCESS_SESSION is None:
        _PROCESS_SESSION = AnalysisSession()
    return _PROCESS_SESSION


# Re-exported for the server's query construction.
QUERY_TYPES = {
    "typestate": TypestateQuery,
    "escape": EscapeQuery,
    "provenance": ProvenanceQuery,
}
