"""The ``repro serve`` daemon: production-hardened analysis as a service.

One asyncio JSON-over-unix-socket server owning one resident
:class:`~repro.serve.session.AnalysisSession` (and, with ``--store``,
one :class:`~repro.serve.store.KnowledgeStore`).  Requests are
newline-delimited JSON objects, one response line per request::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "shutdown"}
    {"op": "solve", "kind": "typestate" | "escape" | "provenance",
     "program": <text>, "query": <label>, ...,
     "deadline_ms": <int>,            # optional client deadline
     "config": {"k": ..., "max_iterations": ..., "max_seconds": ...,
                "max_steps": ...}}          # all optional overrides
    {"op": "solve-bench", "benchmark": <name>, "analysis": <name>,
     "config": {...}}

Solve responses carry one entry per query::

    {"ok": true, "mode": "cold" | "replay" | "clauses" | "stale",
     "store_hit": bool, "digest": <sha256> | null, "seconds": float,
     "results": [{"query": qid, "verdict": "proven" | "impossible"
                  | "exhausted", "abstraction": [...] | null,
                  "iterations": int}]}

Errors come back as structured envelopes — ``{"ok": false, "error":
<message>, "code": <machine-readable>, "retryable": bool,
"retry_after_ms"?: int}`` (see :mod:`repro.serve.dispatch`); a bad
request never kills the daemon.

**Execution.**  Solve ops flow through a bounded admission queue into
``max(1, workers)`` slot threads.  With ``workers > 0`` (the CLI
default) each slot owns a :class:`~repro.robust.pool.SupervisedWorker`
— a forked child running :func:`~repro.serve.dispatch.worker_main`
with its own resident session and a flock-coordinated shared-mode
store handle — so a crashed or hung solve fails only its own request
(``worker_crashed`` / ``worker_timeout``, retryable) and the worker is
respawned with exponential backoff.  ``workers=0`` keeps the original
in-process execution (one slot, the constructor default, which is what
the in-process tests drive through :meth:`handle_request`).  The
read-only ops — ``ping``, ``stats``, ``metrics`` — bypass the queue so
a dashboard stays live while every slot is busy.

**Admission control.**  The queue depth is bounded
(``queue_depth``); an arrival that finds it full is shed with
``overloaded`` and a ``retry_after_ms`` hint.  A client
``deadline_ms`` (clamped by the server's ``max_deadline_ms`` ceiling)
sheds the request with ``deadline_exceeded`` if it is still queued
when the deadline passes, and bounds the pooled execution timeout.
Completed solve responses are remembered in a bounded dedup ring: a
retried request id replays the cached response (``"deduped": true``)
instead of re-solving; a retry that races the original in flight
coalesces onto the same execution.  ``shutdown`` drains gracefully —
stop accepting, finish everything already admitted, flush the metrics
snapshot and the store, then exit.

Request lines longer than ``max_request_bytes`` are answered with an
``oversized`` envelope and the connection dropped (the buffer past a
lost newline is garbage), instead of buffering without bound.

Every request carries a ``request_id`` (client-supplied or minted
here) that doubles as the schema v2 *trace id*: all spans and events
recorded while the request runs share it, and it is echoed in the
response.  Each request emits ``request_received`` /
``request_served`` / ``request_finished`` events — plus
``request_shed``, ``request_retried``, ``worker_respawned``, and
``store_compacted`` from the robustness machinery — and feeds the
:class:`~repro.serve.telemetry.ServingTelemetry` instruments; the
``metrics`` op (and ``--metrics-out``) exports the registry in
Prometheus text format (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import queue
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.tracer import TracerConfig
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.obs.export import render_prometheus
from repro.robust import faults
from repro.robust.pool import SupervisedWorker, WorkerCrash, WorkerTimeout
from repro.serve.dispatch import (
    SOLVE_OPS,
    _tightest,
    failure,
    error_envelope,
    request_config,
    solve_request,
    worker_main,
)
from repro.serve.session import AnalysisSession
from repro.serve.store import KnowledgeStore
from repro.serve.telemetry import ServingTelemetry

__all__ = ["AnalysisServer", "serve"]

#: Ops that never touch session state and run without queueing.
_LOCK_FREE_OPS = frozenset({"ping", "stats", "metrics"})


@dataclass
class _Pending:
    """One admitted request waiting for a slot."""

    request: dict
    request_id: str
    op: str
    queued_at: float
    deadline: Optional[float]  # perf_counter reading, or None
    future: asyncio.Future
    loop: asyncio.AbstractEventLoop
    attempt: int = 0


class AnalysisServer:
    """The daemon: one resident session, one socket, a bounded queue,
    and (optionally) a supervised worker pool."""

    def __init__(
        self,
        socket_path: str,
        store_path: Optional[str] = None,
        config: TracerConfig = TracerConfig(),
        metrics_out: Optional[str] = None,
        metrics_interval: float = 5.0,
        workers: int = 0,
        queue_depth: int = 16,
        max_deadline_ms: Optional[float] = None,
        request_timeout: Optional[float] = None,
        max_request_bytes: int = 8 * 1024 * 1024,
        dedup_size: int = 256,
        compact_ratio: Optional[float] = None,
        compact_min_entries: int = 16,
        fault_specs: Tuple[str, ...] = (),
    ):
        self.socket_path = socket_path
        self.workers = max(0, workers)
        # Pooled mode appends from worker processes, so the parent's
        # handle must be flock-coordinated too; inline mode keeps the
        # single-process appender path.
        self.store = (
            KnowledgeStore(store_path, shared=self.workers > 0)
            if store_path is not None else None
        )
        self.session = AnalysisSession(store=self.store)
        self.config = config
        self.metrics_out = metrics_out
        self.metrics_interval = metrics_interval
        self.queue_depth = queue_depth
        self.max_deadline_ms = max_deadline_ms
        self.request_timeout = request_timeout
        self.max_request_bytes = max_request_bytes
        self.dedup_size = dedup_size
        self.compact_ratio = compact_ratio
        self.compact_min_entries = compact_min_entries
        self.fault_specs = tuple(fault_specs)
        self.requests_served = 0
        self.started = time.time()
        self.telemetry = ServingTelemetry(store=self.store)
        self._queue: "queue.Queue[_Pending]" = queue.Queue(
            maxsize=max(1, queue_depth)
        )
        self.telemetry.queue_depth.set_function(self._queue.qsize)
        self.telemetry.pool_workers.set_function(self._live_workers)
        #: Completed solve responses by request id (the dedup ring).
        self._completed: "OrderedDict[str, dict]" = OrderedDict()
        #: In-flight futures by request id (retry coalescing).
        self._inflight: Dict[str, asyncio.Future] = {}
        #: Delivery attempts per request id (what fault rules pin to).
        self._attempts: "OrderedDict[str, int]" = OrderedDict()
        self._slots: List[Tuple[threading.Thread, Optional[SupervisedWorker]]] = []
        self._draining = False
        self._drain_slots = False
        self._compact_lock = threading.Lock()
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None

    # -- request handling -----------------------------------------------------

    def _request_config(self, request: dict) -> TracerConfig:
        return request_config(self.config, request)

    def _stats(self) -> dict:
        body = {
            "ok": True,
            "pid": os.getpid(),
            "requests_served": self.requests_served,
            "uptime_seconds": time.time() - self.started,
            "session": dict(self.session.stats),
            "serving": {
                "workers": self.workers,
                "queue_depth": self.queue_depth,
                "queued": self._queue.qsize(),
                "draining": self._draining,
                "worker_respawns": sum(
                    w.respawns for _t, w in self._slots if w is not None
                ),
            },
            "telemetry": self.telemetry.snapshot(),
        }
        if self.store is not None:
            body["store"] = {
                "path": self.store.path,
                "entries": len(self.store),
                "entries_loaded": self.store.entries_loaded,
                "hits": self.store.hits,
                "misses": self.store.misses,
                "hit_rate": self.store.hit_rate,
                "superseded_ratio": self.store.superseded_ratio,
                "compactions": self.store.compactions,
            }
        return body

    def _metrics(self) -> dict:
        text = render_prometheus(obs_metrics.current_registry())
        if obs.active():
            obs.event("metrics_scraped", bytes=len(text))
        return {
            "ok": True,
            "format": "prometheus-text-0.0.4",
            "prometheus": text,
        }

    def _run_inline(self, request: dict) -> Tuple[dict, Dict[str, int]]:
        """Execute one request in-process; never raises."""
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True, "pid": os.getpid()}, {}
            if op == "stats":
                return self._stats(), {}
            if op == "metrics":
                return self._metrics(), {}
            if op in SOLVE_OPS:
                # Same fault site the pool worker evaluates, so chaos
                # plans behave identically under --workers 0.
                faults.inject("serve.worker")
                return solve_request(self.session, self.config, request)
        except Exception as error:  # a bad request must not kill the daemon
            return error_envelope(error), {}
        return failure(f"unknown op {op!r}", "bad_request"), {}

    def _run_pooled(
        self,
        worker: SupervisedWorker,
        request: dict,
        request_id: str,
        deadline: Optional[float],
        attempt: int,
        started: float,
    ) -> Tuple[dict, Dict[str, int], Dict[str, float]]:
        """Ship one solve to the slot's supervised worker."""
        timeout = self.request_timeout
        if deadline is not None:
            remaining = max(0.001, deadline - started)
            timeout = remaining if timeout is None else min(timeout, remaining)
        if faults.inject("serve.worker_kill") == "corrupt":
            # Chaos hook: SIGKILL the worker *while it is solving* —
            # the in-flight call observes a genuine mid-solve crash.
            killer = threading.Timer(0.05, worker.kill_process)
            killer.daemon = True
            killer.start()
        try:
            reply = worker.call((request, request_id, attempt), timeout=timeout)
            response, meta = reply
        except WorkerCrash as error:
            hint = max(50, int(worker.backoff() * 1000))
            return (
                failure(str(error), "worker_crashed", retryable=True,
                        retry_after_ms=hint),
                {}, {},
            )
        except WorkerTimeout as error:
            code = (
                "deadline_exceeded"
                if deadline is not None
                and time.perf_counter() >= deadline
                else "worker_timeout"
            )
            return failure(str(error), code, retryable=False), {}, {}
        delta = meta.get("store")
        if delta and self.store is not None:
            # Warm-tier hits happened in the worker's store handle;
            # fold them into the parent's counters so ``stats`` and the
            # hit-rate gauge describe the whole daemon.
            self.store.hits += delta.get("hits", 0)
            self.store.misses += delta.get("misses", 0)
        return response, meta.get("tiers") or {}, meta.get("phases") or {}

    def handle_request(
        self,
        request: dict,
        queued_at: Optional[float] = None,
        deadline: Optional[float] = None,
        worker: Optional[SupervisedWorker] = None,
        attempt: int = 0,
    ) -> dict:
        """Serve one decoded request (synchronous; runs on a slot
        thread, or inline in tests).  ``queued_at`` is the
        ``perf_counter`` reading at enqueue time — the gap to now is
        the queue wait.  With ``worker`` set, solve ops execute in that
        supervised worker instead of in-process."""
        op = request.get("op")
        request_id = request.get("request_id")
        if not isinstance(request_id, str) or not request_id:
            request_id = uuid.uuid4().hex[:16]
        started = time.perf_counter()
        queue_wait = (
            max(0.0, started - queued_at) if queued_at is not None else 0.0
        )
        self.telemetry.begin(request_id, op)
        tiers: Dict[str, int] = {}
        with obs.trace_scope(request_id):
            if obs.active():
                obs.event(
                    "request_received",
                    request_id=request_id,
                    op=op,
                    queue_seconds=queue_wait,
                )
            if worker is not None and op in SOLVE_OPS:
                response, tiers, phase_totals = self._run_pooled(
                    worker, request, request_id, deadline, attempt, started
                )
            else:
                with obs.phase_timing() as phases:
                    response, tiers = self._run_inline(request)
                phase_totals = dict(phases.totals)
            seconds = time.perf_counter() - started
            response.setdefault("seconds", seconds)
            response["request_id"] = request_id
            ok = response.get("ok", False)
            mode = response.get("mode")
            if obs.active():
                obs.event(
                    "request_served",
                    op=op,
                    ok=ok,
                    mode=mode,
                    seconds=response["seconds"],
                )
                obs.event(
                    "request_finished",
                    request_id=request_id,
                    op=op,
                    ok=ok,
                    mode=mode,
                    seconds=seconds,
                    queue_seconds=queue_wait,
                    phases={
                        phase: round(sec, 6)
                        for phase, sec in phase_totals.items()
                    },
                )
        self.requests_served += 1
        for tier, count in tiers.items():
            self.telemetry.count_tier(tier, count)
        self.telemetry.finish(
            request_id, op, ok, mode, seconds, queue_wait, phase_totals
        )
        return response

    # -- the slot threads -----------------------------------------------------

    def _live_workers(self) -> int:
        return sum(
            1 for _thread, worker in self._slots
            if worker is not None and worker.alive
        )

    def _on_respawn(self, reason: str, delay: float, failures: int) -> None:
        self.telemetry.respawned()
        if obs.active():
            obs.event(
                "worker_respawned",
                reason=reason,
                backoff_seconds=round(delay, 3),
                consecutive_failures=failures,
            )

    def _shed(self, request_id: str, op, reason: str, **attrs) -> None:
        self.telemetry.shed(reason)
        if obs.active():
            obs.event(
                "request_shed",
                request_id=request_id,
                op=op,
                reason=reason,
                **attrs,
            )

    def _retry_hint_ms(self) -> int:
        """A rough come-back-later hint for shed clients: the queue's
        current depth times a typical request, floor 50ms."""
        typical = self.telemetry.request_seconds.quantile(0.5) or 0.1
        return max(50, int(1000 * typical * (self._queue.qsize() + 1)))

    def _start_slots(self) -> None:
        for index in range(max(1, self.workers)):
            worker = None
            if self.workers > 0:
                worker = SupervisedWorker(
                    worker_main,
                    args=(
                        self.store.path if self.store is not None else None,
                        self.config,
                        self.fault_specs,
                    ),
                    name=f"serve-worker-{index}",
                    on_respawn=self._on_respawn,
                )
            thread = threading.Thread(
                target=self._slot_loop,
                args=(worker,),
                name=f"serve-slot-{index}",
                daemon=True,
            )
            thread.start()
            self._slots.append((thread, worker))

    def _slot_loop(self, worker: Optional[SupervisedWorker]) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._drain_slots:
                    break
                continue
            now = time.perf_counter()
            if item.deadline is not None and now >= item.deadline:
                waited_ms = int((now - item.queued_at) * 1000)
                self._shed(
                    item.request_id, item.op, "deadline_exceeded",
                    waited_ms=waited_ms,
                )
                self._deliver(item, failure(
                    f"deadline expired after {waited_ms}ms in queue",
                    "deadline_exceeded",
                ))
                continue
            try:
                response = self.handle_request(
                    item.request,
                    queued_at=item.queued_at,
                    deadline=item.deadline,
                    worker=worker,
                    attempt=item.attempt,
                )
            except Exception as error:  # a slot thread must never die
                response = failure(
                    f"{type(error).__name__}: {error}", "internal"
                )
            self._deliver(item, response)
            self._maybe_compact()

    @staticmethod
    def _deliver(item: _Pending, response: dict) -> None:
        def resolve() -> None:
            if not item.future.done():
                item.future.set_result(response)

        item.loop.call_soon_threadsafe(resolve)

    def _maybe_compact(self) -> None:
        """Compact the store when the superseded-entry ratio crosses
        the configured threshold (``--compact-ratio``)."""
        if self.store is None or self.compact_ratio is None:
            return
        if not self._compact_lock.acquire(blocking=False):
            return
        try:
            self.store.refresh()
            if (
                self.store.file_entries >= self.compact_min_entries
                and self.store.superseded_ratio >= self.compact_ratio
            ):
                self.store.compact()
                self.telemetry.compacted()
        except (OSError, ValueError):
            pass  # compaction is opportunistic; serving goes on
        finally:
            self._compact_lock.release()

    # -- admission ------------------------------------------------------------

    async def _admit(self, request: dict) -> dict:
        """Queue one solve op (event-loop side): dedup replay, retry
        coalescing, drain refusal, deadline clamping, and shedding when
        the queue is full."""
        op = request.get("op")
        request_id = request.get("request_id")
        if not isinstance(request_id, str) or not request_id:
            request_id = uuid.uuid4().hex[:16]
            request = dict(request, request_id=request_id)
        cached = self._completed.get(request_id)
        if cached is not None:
            self.telemetry.deduped()
            if obs.active():
                obs.event(
                    "request_retried",
                    request_id=request_id, op=op, replay="completed",
                )
            response = dict(cached)
            response["deduped"] = True
            return response
        racing = self._inflight.get(request_id)
        if racing is not None:
            # A retry raced its original (client timeout, duplicated
            # transport): both wait on the one execution.
            self.telemetry.deduped()
            if obs.active():
                obs.event(
                    "request_retried",
                    request_id=request_id, op=op, replay="in_flight",
                )
            response = dict(await asyncio.shield(racing))
            response["deduped"] = True
            return response
        if self._draining:
            return failure(
                "daemon is draining", "overloaded", retryable=False,
            ) | {"request_id": request_id}
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms != deadline_ms:
                return failure(
                    f"bad deadline_ms {deadline_ms!r}", "bad_request"
                ) | {"request_id": request_id}
        deadline_ms = _tightest(deadline_ms, self.max_deadline_ms)
        queued_at = time.perf_counter()
        deadline = (
            queued_at + deadline_ms / 1000.0
            if deadline_ms is not None else None
        )
        loop = asyncio.get_running_loop()
        attempt = self._attempts.get(request_id, -1) + 1
        self._attempts[request_id] = attempt
        self._attempts.move_to_end(request_id)
        while len(self._attempts) > 4 * self.dedup_size:
            self._attempts.popitem(last=False)
        item = _Pending(
            request=request,
            request_id=request_id,
            op=op,
            queued_at=queued_at,
            deadline=deadline,
            future=loop.create_future(),
            loop=loop,
            attempt=attempt,
        )
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            hint = self._retry_hint_ms()
            self._shed(
                request_id, op, "overloaded", queued=self._queue.qsize()
            )
            return failure(
                f"request queue full ({self.queue_depth} deep)",
                "overloaded", retryable=True, retry_after_ms=hint,
            ) | {"request_id": request_id}
        self._inflight[request_id] = item.future
        try:
            response = await item.future
        finally:
            self._inflight.pop(request_id, None)
        if response.get("ok") and op in SOLVE_OPS:
            self._remember(request_id, response)
        return response

    def _remember(self, request_id: str, response: dict) -> None:
        self._completed[request_id] = response
        self._completed.move_to_end(request_id)
        while len(self._completed) > self.dedup_size:
            self._completed.popitem(last=False)
        self._attempts.pop(request_id, None)

    # -- the asyncio shell ----------------------------------------------------

    def _encode_reply(self, response: dict) -> bytes:
        payload = _encode(response)
        if faults.inject("serve.reply") == "corrupt":
            # Chaos hook: hand the client a truncated JSON line — its
            # decode-failure retry path must recover via the dedup ring.
            payload = payload[: max(2, len(payload) // 2)].rstrip(b"\n") + b"\n"
        return payload

    async def _handle_connection(self, reader, writer) -> None:
        self._conn_tasks.add(asyncio.current_task())
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # The stream limit tripped: the line is longer than
                    # max_request_bytes.  Answer and drop the connection
                    # — everything buffered past the lost newline is
                    # garbage.
                    self._shed("-", None, "oversized")
                    writer.write(self._encode_reply(failure(
                        f"request line exceeds max_request_bytes "
                        f"({self.max_request_bytes})",
                        "oversized",
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as error:
                    response = failure(f"bad request: {error}", "bad_request")
                else:
                    if request.get("op") == "shutdown":
                        self._draining = True
                        response = {
                            "ok": True,
                            "stopping": True,
                            "draining": self._queue.qsize(),
                        }
                        writer.write(self._encode_reply(response))
                        await writer.drain()
                        self._stopping.set()
                        break
                    if request.get("op") in _LOCK_FREE_OPS:
                        # Read-only ops skip the queue so dashboards
                        # stay live during long solves.
                        loop = asyncio.get_running_loop()
                        call = functools.partial(
                            self.handle_request,
                            request,
                            queued_at=time.perf_counter(),
                        )
                        response = await loop.run_in_executor(None, call)
                    else:
                        response = await self._admit(request)
                writer.write(self._encode_reply(response))
                await writer.drain()
        finally:
            self._conn_tasks.discard(asyncio.current_task())
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def write_metrics_snapshot(self) -> None:
        """Atomically (re)write the ``--metrics-out`` file."""
        if self.metrics_out is None:
            return
        text = render_prometheus(obs_metrics.current_registry())
        tmp = self.metrics_out + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(text)
        os.replace(tmp, self.metrics_out)

    async def _metrics_writer(self) -> None:
        while True:
            await asyncio.sleep(self.metrics_interval)
            self.write_metrics_snapshot()

    def _join_slots(self) -> None:
        self._drain_slots = True
        for thread, _worker in self._slots:
            thread.join()

    def _close_workers(self) -> None:
        for _thread, worker in self._slots:
            if worker is not None:
                worker.close()

    async def run(self) -> None:
        """Listen until a ``shutdown`` request arrives, then drain."""
        self._stopping = asyncio.Event()
        self._start_slots()
        self._server = await asyncio.start_unix_server(
            self._handle_connection,
            path=self.socket_path,
            limit=self.max_request_bytes,
        )
        if obs.active():
            obs.event(
                "session_opened",
                daemon=True,
                socket=self.socket_path,
                store=self.store.path if self.store is not None else None,
                workers=self.workers,
            )
        writer_task = None
        if self.metrics_out is not None:
            self.write_metrics_snapshot()
            writer_task = asyncio.ensure_future(self._metrics_writer())
        try:
            await self._stopping.wait()
        finally:
            self._draining = True
            if writer_task is not None:
                writer_task.cancel()
            self._server.close()
            await self._server.wait_closed()
            # Drain: the slots finish everything already admitted...
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._join_slots)
            # ...the connections waiting on those futures get a beat to
            # flush their replies (every delivery was scheduled before
            # the join returned)...
            await asyncio.sleep(0.05)
            # ...and the idle ones are closed so their handler tasks
            # exit on EOF instead of being cancelled under them.
            for conn_writer in list(self._conn_writers):
                conn_writer.close()
            pending = [
                task for task in self._conn_tasks
                if task is not asyncio.current_task()
            ]
            if pending:
                await asyncio.wait(pending, timeout=5.0)
            self.write_metrics_snapshot()
            self._close_workers()
            if self.store is not None:
                self.store.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass


def _encode(response: dict) -> bytes:
    return (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")


def serve(
    socket_path: str,
    store_path: Optional[str] = None,
    config: TracerConfig = TracerConfig(),
    **kwargs,
) -> None:
    """Blocking entry point behind ``repro serve``."""
    server = AnalysisServer(socket_path, store_path, config, **kwargs)
    asyncio.run(server.run())
