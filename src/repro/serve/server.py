"""The ``repro serve`` daemon: analysis as a service.

One asyncio JSON-over-unix-socket server owning one resident
:class:`~repro.serve.session.AnalysisSession` (and, with ``--store``,
one :class:`~repro.serve.store.KnowledgeStore`).  Requests are
newline-delimited JSON objects, one response line per request::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "shutdown"}
    {"op": "solve", "kind": "typestate" | "escape" | "provenance",
     "program": <text>, "query": <label>, ...,
     "config": {"k": ..., "max_iterations": ..., "max_seconds": ...,
                "max_steps": ...}}          # all optional overrides
    {"op": "solve-bench", "benchmark": <name>, "analysis": <name>,
     "config": {...}}

Solve responses carry one entry per query::

    {"ok": true, "mode": "cold" | "replay" | "clauses" | "stale",
     "store_hit": bool, "digest": <sha256> | null, "seconds": float,
     "results": [{"query": qid, "verdict": "proven" | "impossible"
                  | "exhausted", "abstraction": [...] | null,
                  "iterations": int}]}

Errors come back as ``{"ok": false, "error": <message>}`` — a bad
request never kills the daemon.

Execution is strictly FIFO: analysis runs on a single worker thread
behind an asyncio lock (the session is single-threaded state), while
the event loop keeps accepting and queueing connections.  Per-request
budgets ride the existing :mod:`repro.robust.budget` layer through
``TracerConfig.max_seconds`` / ``max_steps``; a request may *tighten*
the server's ceilings, never exceed them.  Every served request emits
a ``request_served`` event (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Optional

from repro.core.stats import QueryStatus
from repro.core.tracer import TracerConfig
from repro.obs import trace as obs
from repro.serve.session import AnalysisSession
from repro.serve.store import KnowledgeStore

__all__ = ["AnalysisServer", "serve"]

#: Per-request config overrides a client may send (``max_seconds`` and
#: ``max_steps`` are additionally clamped to the server's ceilings).
_CONFIG_OVERRIDES = ("k", "max_iterations", "max_seconds", "max_steps")


def _tightest(request_value, ceiling):
    """The tighter of a request's budget and the server's ceiling
    (``None`` = unlimited)."""
    if request_value is None:
        return ceiling
    if ceiling is None:
        return request_value
    return min(request_value, ceiling)


class AnalysisServer:
    """The daemon: one resident session, one socket, FIFO execution."""

    def __init__(
        self,
        socket_path: str,
        store_path: Optional[str] = None,
        config: TracerConfig = TracerConfig(),
    ):
        self.socket_path = socket_path
        self.store = (
            KnowledgeStore(store_path) if store_path is not None else None
        )
        self.session = AnalysisSession(store=self.store)
        self.config = config
        self.requests_served = 0
        self._lock: Optional[asyncio.Lock] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None

    # -- request handling -----------------------------------------------------

    def _request_config(self, request: dict) -> TracerConfig:
        overrides = request.get("config") or {}
        unknown = set(overrides) - set(_CONFIG_OVERRIDES)
        if unknown:
            raise ValueError(
                f"unknown config overrides {sorted(unknown)} "
                f"(allowed: {list(_CONFIG_OVERRIDES)})"
            )
        base = self.config
        return TracerConfig(
            k=overrides.get("k", base.k),
            max_iterations=overrides.get(
                "max_iterations", base.max_iterations
            ),
            max_seconds=_tightest(
                overrides.get("max_seconds"), base.max_seconds
            ),
            max_steps=_tightest(overrides.get("max_steps"), base.max_steps),
            strict=base.strict,
            engine=base.engine,
        )

    def _solve(self, request: dict) -> dict:
        kind = request.get("kind")
        text = request.get("program")
        if not isinstance(text, str):
            raise ValueError("'solve' needs a 'program' text")
        config = self._request_config(request)
        source = request.get("source") or f"submit:{kind}"
        if kind == "typestate":
            client, universe, automaton, _site = (
                self.session.typestate_client(
                    text,
                    request.get("automaton", "file"),
                    request.get("site"),
                )
            )
            label = _label(request, universe)
            allowed = frozenset(request.get("allowed") or [automaton.init])
            unknown = allowed - automaton.states
            if unknown:
                raise ValueError(
                    f"unknown type-states {sorted(unknown)}; "
                    f"automaton has {sorted(automaton.states)}"
                )
            from repro.typestate.client import TypestateQuery

            queries = [TypestateQuery(label, allowed)]
        elif kind == "escape":
            client, universe = self.session.escape_client(text)
            label = _label(request, universe)
            var = _variable(request, universe)
            from repro.escape.client import EscapeQuery

            queries = [EscapeQuery(label, var)]
        elif kind == "provenance":
            client, universe = self.session.provenance_client(text)
            label = _label(request, universe)
            var = _variable(request, universe)
            allowed = frozenset(request.get("allowed") or universe.sites)
            unknown = allowed - universe.sites
            if unknown:
                raise ValueError(
                    f"unknown sites {sorted(unknown)} "
                    f"(sites: {sorted(universe.sites)})"
                )
            from repro.provenance.client import ProvenanceQuery

            queries = [ProvenanceQuery(label, var, allowed)]
        else:
            raise ValueError(
                f"unknown solve kind {kind!r} "
                "(one of: typestate, escape, provenance)"
            )
        result = self.session.solve(
            client, queries, config, source=source
        )
        return _solve_response(queries, result)

    def _solve_bench(self, request: dict) -> dict:
        name = request.get("benchmark")
        analysis = request.get("analysis")
        if not name or not analysis:
            raise ValueError("'solve-bench' needs 'benchmark' and 'analysis'")
        config = self._request_config(request)
        units = self.session.solve_benchmark(name, analysis, config)
        results = []
        modes = set()
        hits = 0
        for _index, queries, unit in units:
            modes.add(unit.mode)
            hits += int(unit.store_hit)
            results.extend(_solve_response(queries, unit)["results"])
        return {
            "ok": True,
            "benchmark": name,
            "analysis": analysis,
            "units": len(units),
            "store_hits": hits,
            "modes": sorted(modes),
            "results": results,
        }

    def _stats(self) -> dict:
        body = {
            "ok": True,
            "pid": os.getpid(),
            "requests_served": self.requests_served,
            "session": dict(self.session.stats),
        }
        if self.store is not None:
            body["store"] = {
                "path": self.store.path,
                "entries": len(self.store),
                "entries_loaded": self.store.entries_loaded,
                "hits": self.store.hits,
                "misses": self.store.misses,
                "hit_rate": self.store.hit_rate,
            }
        return body

    def handle_request(self, request: dict) -> dict:
        """Serve one decoded request (synchronous; runs on the worker
        thread).  Exposed for in-process tests."""
        op = request.get("op")
        started = time.perf_counter()
        try:
            if op == "ping":
                response = {"ok": True, "pong": True, "pid": os.getpid()}
            elif op == "stats":
                response = self._stats()
            elif op == "solve":
                response = self._solve(request)
            elif op == "solve-bench":
                response = self._solve_bench(request)
            else:
                raise ValueError(f"unknown op {op!r}")
        except Exception as error:  # a bad request must not kill the daemon
            response = {"ok": False, "error": str(error)}
        response.setdefault("seconds", time.perf_counter() - started)
        self.requests_served += 1
        if obs.active():
            obs.event(
                "request_served",
                op=op,
                ok=response.get("ok", False),
                mode=response.get("mode"),
                seconds=response["seconds"],
            )
        return response

    # -- the asyncio shell ----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as error:
                    response = {"ok": False, "error": f"bad request: {error}"}
                else:
                    if request.get("op") == "shutdown":
                        response = {"ok": True, "stopping": True}
                        writer.write(_encode(response))
                        await writer.drain()
                        self._stopping.set()
                        break
                    loop = asyncio.get_running_loop()
                    # FIFO: the lock serialises requests across
                    # connections; the executor keeps the loop free to
                    # accept and queue meanwhile.
                    async with self._lock:
                        response = await loop.run_in_executor(
                            None, self.handle_request, request
                        )
                writer.write(_encode(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def run(self) -> None:
        """Listen until a ``shutdown`` request arrives."""
        self._lock = asyncio.Lock()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path
        )
        if obs.active():
            obs.event(
                "session_opened",
                daemon=True,
                socket=self.socket_path,
                store=self.store.path if self.store is not None else None,
            )
        try:
            await self._stopping.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            if self.store is not None:
                self.store.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass


def _label(request: dict, universe) -> str:
    label = request.get("query")
    if not label:
        raise ValueError("'solve' needs a 'query' observe label")
    if label not in universe.observe_labels:
        raise ValueError(
            f"no 'observe {label}' in the program "
            f"(labels: {sorted(universe.observe_labels)})"
        )
    return label


def _variable(request: dict, universe) -> str:
    var = request.get("var")
    if not var or var not in universe.variables:
        raise ValueError(
            f"unknown variable {var!r} "
            f"(variables: {sorted(universe.variables)})"
        )
    return var


def _solve_response(queries, result) -> dict:
    entries = []
    for query in queries:
        record = result.records[query]
        entries.append(
            {
                "query": str(query),
                "verdict": record.status.value,
                "abstraction": (
                    sorted(record.abstraction)
                    if record.status is QueryStatus.PROVEN
                    and record.abstraction is not None
                    else None
                ),
                "iterations": record.iterations,
            }
        )
    return {
        "ok": True,
        "mode": result.mode,
        "store_hit": result.store_hit,
        "digest": result.digest,
        "results": entries,
    }


def _encode(response: dict) -> bytes:
    return (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")


def serve(
    socket_path: str,
    store_path: Optional[str] = None,
    config: TracerConfig = TracerConfig(),
) -> None:
    """Blocking entry point behind ``repro serve``."""
    server = AnalysisServer(socket_path, store_path, config)
    asyncio.run(server.run())
