"""The ``repro serve`` daemon: analysis as a service.

One asyncio JSON-over-unix-socket server owning one resident
:class:`~repro.serve.session.AnalysisSession` (and, with ``--store``,
one :class:`~repro.serve.store.KnowledgeStore`).  Requests are
newline-delimited JSON objects, one response line per request::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "shutdown"}
    {"op": "solve", "kind": "typestate" | "escape" | "provenance",
     "program": <text>, "query": <label>, ...,
     "config": {"k": ..., "max_iterations": ..., "max_seconds": ...,
                "max_steps": ...}}          # all optional overrides
    {"op": "solve-bench", "benchmark": <name>, "analysis": <name>,
     "config": {...}}

Solve responses carry one entry per query::

    {"ok": true, "mode": "cold" | "replay" | "clauses" | "stale",
     "store_hit": bool, "digest": <sha256> | null, "seconds": float,
     "results": [{"query": qid, "verdict": "proven" | "impossible"
                  | "exhausted", "abstraction": [...] | null,
                  "iterations": int}]}

Errors come back as ``{"ok": false, "error": <message>}`` — a bad
request never kills the daemon.

Analysis execution is strictly FIFO: solves run on a single worker
thread behind an asyncio lock (the session is single-threaded state),
while the event loop keeps accepting and queueing connections.  The
read-only ops — ``ping``, ``stats``, ``metrics`` — bypass the lock so
a dashboard stays live while a long solve holds the worker.
Per-request budgets ride the existing :mod:`repro.robust.budget` layer
through ``TracerConfig.max_seconds`` / ``max_steps``; a request may
*tighten* the server's ceilings, never exceed them.

Every request carries a ``request_id`` (client-supplied or minted
here) that doubles as the schema v2 *trace id*: all spans and events
recorded while the request runs — down through the session and the
TRACER driver — share it, and it is echoed in the response.  Each
request emits ``request_received`` / ``request_served`` /
``request_finished`` events and feeds the
:class:`~repro.serve.telemetry.ServingTelemetry` histograms; the
``metrics`` op (and ``--metrics-out``) exports the registry in
Prometheus text format (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import time
import uuid
from typing import Optional

from repro.core.stats import QueryStatus
from repro.core.tracer import TracerConfig
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.obs.export import render_prometheus
from repro.serve.session import AnalysisSession
from repro.serve.store import KnowledgeStore
from repro.serve.telemetry import ServingTelemetry

__all__ = ["AnalysisServer", "serve"]

#: Ops that never touch session state and run without the FIFO lock.
_LOCK_FREE_OPS = frozenset({"ping", "stats", "metrics"})

#: Per-request config overrides a client may send (``max_seconds`` and
#: ``max_steps`` are additionally clamped to the server's ceilings).
_CONFIG_OVERRIDES = ("k", "max_iterations", "max_seconds", "max_steps")


def _tightest(request_value, ceiling):
    """The tighter of a request's budget and the server's ceiling
    (``None`` = unlimited)."""
    if request_value is None:
        return ceiling
    if ceiling is None:
        return request_value
    return min(request_value, ceiling)


class AnalysisServer:
    """The daemon: one resident session, one socket, FIFO execution."""

    def __init__(
        self,
        socket_path: str,
        store_path: Optional[str] = None,
        config: TracerConfig = TracerConfig(),
        metrics_out: Optional[str] = None,
        metrics_interval: float = 5.0,
    ):
        self.socket_path = socket_path
        self.store = (
            KnowledgeStore(store_path) if store_path is not None else None
        )
        self.session = AnalysisSession(store=self.store)
        self.config = config
        self.metrics_out = metrics_out
        self.metrics_interval = metrics_interval
        self.requests_served = 0
        self.started = time.time()
        self.telemetry = ServingTelemetry(store=self.store)
        self._lock: Optional[asyncio.Lock] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None

    # -- request handling -----------------------------------------------------

    def _request_config(self, request: dict) -> TracerConfig:
        overrides = request.get("config") or {}
        unknown = set(overrides) - set(_CONFIG_OVERRIDES)
        if unknown:
            raise ValueError(
                f"unknown config overrides {sorted(unknown)} "
                f"(allowed: {list(_CONFIG_OVERRIDES)})"
            )
        base = self.config
        return TracerConfig(
            k=overrides.get("k", base.k),
            max_iterations=overrides.get(
                "max_iterations", base.max_iterations
            ),
            max_seconds=_tightest(
                overrides.get("max_seconds"), base.max_seconds
            ),
            max_steps=_tightest(overrides.get("max_steps"), base.max_steps),
            strict=base.strict,
            engine=base.engine,
        )

    def _solve(self, request: dict) -> dict:
        kind = request.get("kind")
        text = request.get("program")
        if not isinstance(text, str):
            raise ValueError("'solve' needs a 'program' text")
        config = self._request_config(request)
        source = request.get("source") or f"submit:{kind}"
        if kind == "typestate":
            client, universe, automaton, _site = (
                self.session.typestate_client(
                    text,
                    request.get("automaton", "file"),
                    request.get("site"),
                )
            )
            label = _label(request, universe)
            allowed = frozenset(request.get("allowed") or [automaton.init])
            unknown = allowed - automaton.states
            if unknown:
                raise ValueError(
                    f"unknown type-states {sorted(unknown)}; "
                    f"automaton has {sorted(automaton.states)}"
                )
            from repro.typestate.client import TypestateQuery

            queries = [TypestateQuery(label, allowed)]
        elif kind == "escape":
            client, universe = self.session.escape_client(text)
            label = _label(request, universe)
            var = _variable(request, universe)
            from repro.escape.client import EscapeQuery

            queries = [EscapeQuery(label, var)]
        elif kind == "provenance":
            client, universe = self.session.provenance_client(text)
            label = _label(request, universe)
            var = _variable(request, universe)
            allowed = frozenset(request.get("allowed") or universe.sites)
            unknown = allowed - universe.sites
            if unknown:
                raise ValueError(
                    f"unknown sites {sorted(unknown)} "
                    f"(sites: {sorted(universe.sites)})"
                )
            from repro.provenance.client import ProvenanceQuery

            queries = [ProvenanceQuery(label, var, allowed)]
        else:
            raise ValueError(
                f"unknown solve kind {kind!r} "
                "(one of: typestate, escape, provenance)"
            )
        result = self.session.solve(
            client, queries, config, source=source
        )
        self.telemetry.count_tier(result.mode)
        return _solve_response(queries, result)

    def _solve_bench(self, request: dict) -> dict:
        name = request.get("benchmark")
        analysis = request.get("analysis")
        if not name or not analysis:
            raise ValueError("'solve-bench' needs 'benchmark' and 'analysis'")
        config = self._request_config(request)
        units = self.session.solve_benchmark(name, analysis, config)
        results = []
        modes = set()
        hits = 0
        for _index, queries, unit in units:
            modes.add(unit.mode)
            hits += int(unit.store_hit)
            self.telemetry.count_tier(unit.mode)
            results.extend(_solve_response(queries, unit)["results"])
        return {
            "ok": True,
            "benchmark": name,
            "analysis": analysis,
            "units": len(units),
            "store_hits": hits,
            "modes": sorted(modes),
            "results": results,
        }

    def _stats(self) -> dict:
        body = {
            "ok": True,
            "pid": os.getpid(),
            "requests_served": self.requests_served,
            "uptime_seconds": time.time() - self.started,
            "session": dict(self.session.stats),
            "telemetry": self.telemetry.snapshot(),
        }
        if self.store is not None:
            body["store"] = {
                "path": self.store.path,
                "entries": len(self.store),
                "entries_loaded": self.store.entries_loaded,
                "hits": self.store.hits,
                "misses": self.store.misses,
                "hit_rate": self.store.hit_rate,
            }
        return body

    def _metrics(self) -> dict:
        text = render_prometheus(obs_metrics.current_registry())
        if obs.active():
            obs.event("metrics_scraped", bytes=len(text))
        return {
            "ok": True,
            "format": "prometheus-text-0.0.4",
            "prometheus": text,
        }

    def handle_request(
        self, request: dict, queued_at: Optional[float] = None
    ) -> dict:
        """Serve one decoded request (synchronous; runs on the worker
        thread).  Exposed for in-process tests.  ``queued_at`` is the
        ``perf_counter`` reading at enqueue time — the gap to now is
        the queue wait the request spent behind the FIFO lock."""
        op = request.get("op")
        request_id = request.get("request_id")
        if not isinstance(request_id, str) or not request_id:
            request_id = uuid.uuid4().hex[:16]
        started = time.perf_counter()
        queue_wait = (
            max(0.0, started - queued_at) if queued_at is not None else 0.0
        )
        self.telemetry.begin(request_id, op)
        with obs.trace_scope(request_id), obs.phase_timing() as phases:
            if obs.active():
                obs.event(
                    "request_received",
                    request_id=request_id,
                    op=op,
                    queue_seconds=queue_wait,
                )
            try:
                if op == "ping":
                    response = {"ok": True, "pong": True, "pid": os.getpid()}
                elif op == "stats":
                    response = self._stats()
                elif op == "metrics":
                    response = self._metrics()
                elif op == "solve":
                    response = self._solve(request)
                elif op == "solve-bench":
                    response = self._solve_bench(request)
                else:
                    raise ValueError(f"unknown op {op!r}")
            except Exception as error:  # a bad request must not kill the daemon
                response = {"ok": False, "error": str(error)}
            seconds = time.perf_counter() - started
            response.setdefault("seconds", seconds)
            response["request_id"] = request_id
            ok = response.get("ok", False)
            mode = response.get("mode")
            if obs.active():
                obs.event(
                    "request_served",
                    op=op,
                    ok=ok,
                    mode=mode,
                    seconds=response["seconds"],
                )
                obs.event(
                    "request_finished",
                    request_id=request_id,
                    op=op,
                    ok=ok,
                    mode=mode,
                    seconds=seconds,
                    queue_seconds=queue_wait,
                    phases={
                        phase: round(sec, 6)
                        for phase, sec in phases.totals.items()
                    },
                )
        self.requests_served += 1
        self.telemetry.finish(
            request_id, op, ok, mode, seconds, queue_wait, phases.totals
        )
        return response

    # -- the asyncio shell ----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as error:
                    response = {"ok": False, "error": f"bad request: {error}"}
                else:
                    if request.get("op") == "shutdown":
                        response = {"ok": True, "stopping": True}
                        writer.write(_encode(response))
                        await writer.drain()
                        self._stopping.set()
                        break
                    loop = asyncio.get_running_loop()
                    queued_at = time.perf_counter()
                    call = functools.partial(
                        self.handle_request, request, queued_at=queued_at
                    )
                    if request.get("op") in _LOCK_FREE_OPS:
                        # Read-only ops skip the queue so dashboards
                        # stay live during a long solve.
                        response = await loop.run_in_executor(None, call)
                    else:
                        # FIFO: the lock serialises requests across
                        # connections; the executor keeps the loop free
                        # to accept and queue meanwhile.
                        async with self._lock:
                            response = await loop.run_in_executor(None, call)
                writer.write(_encode(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def write_metrics_snapshot(self) -> None:
        """Atomically (re)write the ``--metrics-out`` file."""
        if self.metrics_out is None:
            return
        text = render_prometheus(obs_metrics.current_registry())
        tmp = self.metrics_out + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(text)
        os.replace(tmp, self.metrics_out)

    async def _metrics_writer(self) -> None:
        while True:
            await asyncio.sleep(self.metrics_interval)
            self.write_metrics_snapshot()

    async def run(self) -> None:
        """Listen until a ``shutdown`` request arrives."""
        self._lock = asyncio.Lock()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path
        )
        if obs.active():
            obs.event(
                "session_opened",
                daemon=True,
                socket=self.socket_path,
                store=self.store.path if self.store is not None else None,
            )
        writer_task = None
        if self.metrics_out is not None:
            self.write_metrics_snapshot()
            writer_task = asyncio.ensure_future(self._metrics_writer())
        try:
            await self._stopping.wait()
        finally:
            if writer_task is not None:
                writer_task.cancel()
                self.write_metrics_snapshot()
            self._server.close()
            await self._server.wait_closed()
            if self.store is not None:
                self.store.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass


def _label(request: dict, universe) -> str:
    label = request.get("query")
    if not label:
        raise ValueError("'solve' needs a 'query' observe label")
    if label not in universe.observe_labels:
        raise ValueError(
            f"no 'observe {label}' in the program "
            f"(labels: {sorted(universe.observe_labels)})"
        )
    return label


def _variable(request: dict, universe) -> str:
    var = request.get("var")
    if not var or var not in universe.variables:
        raise ValueError(
            f"unknown variable {var!r} "
            f"(variables: {sorted(universe.variables)})"
        )
    return var


def _solve_response(queries, result) -> dict:
    entries = []
    for query in queries:
        record = result.records[query]
        entries.append(
            {
                "query": str(query),
                "verdict": record.status.value,
                "abstraction": (
                    sorted(record.abstraction)
                    if record.status is QueryStatus.PROVEN
                    and record.abstraction is not None
                    else None
                ),
                "iterations": record.iterations,
            }
        )
    return {
        "ok": True,
        "mode": result.mode,
        "store_hit": result.store_hit,
        "digest": result.digest,
        "results": entries,
    }


def _encode(response: dict) -> bytes:
    return (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")


def serve(
    socket_path: str,
    store_path: Optional[str] = None,
    config: TracerConfig = TracerConfig(),
    metrics_out: Optional[str] = None,
    metrics_interval: float = 5.0,
) -> None:
    """Blocking entry point behind ``repro serve``."""
    server = AnalysisServer(
        socket_path,
        store_path,
        config,
        metrics_out=metrics_out,
        metrics_interval=metrics_interval,
    )
    asyncio.run(server.run())
