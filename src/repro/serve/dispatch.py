"""Solve-request execution, shared by the daemon's two execution modes.

The daemon can run a ``solve`` / ``solve-bench`` request either
*inline* (``--workers 0``: on a slot thread in the daemon process, the
original single-FIFO behaviour) or *pooled* (the default: shipped over
a pipe to a supervised worker process).  Both modes must execute the
request identically, so the execution lives here as module functions:

* :func:`solve_request` — build the queries, clamp the per-request
  config against the server ceilings, run the session, shape the
  response.  Returns ``(response, tiers)`` where ``tiers`` counts
  solved units per warm-start tier — the *parent* owns the telemetry
  instruments, so workers report tiers as data instead of incrementing
  counters nobody scrapes.
* :func:`worker_main` — the supervised worker body: one resident
  :func:`~repro.serve.session.process_session` per worker (warm state
  survives across requests), its own shared-mode
  :class:`~repro.serve.store.KnowledgeStore` handle (appends are
  flock-coordinated with every other worker), and the ambient fault
  plan the parent shipped for chaos testing (re-counted per process,
  pinned to the request's delivery attempt).

Error envelopes are structured for client-side retry logic::

    {"ok": false, "error": str, "code": "bad_request" | "internal"
     | "overloaded" | "deadline_exceeded" | "worker_crashed"
     | "worker_timeout" | "oversized" | "transport" | "bad_reply",
     "retryable": bool, "retry_after_ms"?: int}

``retryable`` is the client's contract: a crashed worker or a full
queue is worth retrying (the daemon respawns / drains meanwhile); a
bad request or an expired deadline is not.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.stats import QueryStatus
from repro.core.tracer import TracerConfig
from repro.obs import trace as obs
from repro.robust import faults

__all__ = [
    "error_envelope",
    "failure",
    "request_config",
    "solve_request",
    "worker_main",
]

#: Per-request config overrides a client may send (``max_seconds`` and
#: ``max_steps`` are additionally clamped to the server's ceilings).
CONFIG_OVERRIDES = ("k", "max_iterations", "max_seconds", "max_steps")

#: The ops :func:`solve_request` executes (everything else is served
#: by the daemon itself).
SOLVE_OPS = frozenset({"solve", "solve-bench"})


def _tightest(request_value, ceiling):
    """The tighter of a request's budget and the server's ceiling
    (``None`` = unlimited)."""
    if request_value is None:
        return ceiling
    if ceiling is None:
        return request_value
    return min(request_value, ceiling)


def request_config(base: TracerConfig, request: dict) -> TracerConfig:
    """The effective config of one request: overrides may tighten the
    server's budget ceilings, never exceed them; ``strict`` and
    ``engine`` are server policy and cannot be overridden."""
    overrides = request.get("config") or {}
    unknown = set(overrides) - set(CONFIG_OVERRIDES)
    if unknown:
        raise ValueError(
            f"unknown config overrides {sorted(unknown)} "
            f"(allowed: {list(CONFIG_OVERRIDES)})"
        )
    return TracerConfig(
        k=overrides.get("k", base.k),
        max_iterations=overrides.get("max_iterations", base.max_iterations),
        max_seconds=_tightest(overrides.get("max_seconds"), base.max_seconds),
        max_steps=_tightest(overrides.get("max_steps"), base.max_steps),
        strict=base.strict,
        engine=base.engine,
    )


def failure(
    message: str,
    code: str,
    retryable: bool = False,
    retry_after_ms: Optional[int] = None,
) -> dict:
    """One structured error envelope (see the module doc)."""
    body = {
        "ok": False,
        "error": message,
        "code": code,
        "retryable": retryable,
    }
    if retry_after_ms is not None:
        body["retry_after_ms"] = int(retry_after_ms)
    return body


def error_envelope(error: Exception) -> dict:
    """The envelope for an exception a request raised: a ``ValueError``
    is the client's fault (``bad_request``), anything else is ours
    (``internal``); neither is retryable — the same input will fail
    the same way."""
    if isinstance(error, ValueError):
        return failure(str(error), "bad_request")
    return failure(f"{type(error).__name__}: {error}", "internal")


def _label(request: dict, universe) -> str:
    label = request.get("query")
    if not label:
        raise ValueError("'solve' needs a 'query' observe label")
    if label not in universe.observe_labels:
        raise ValueError(
            f"no 'observe {label}' in the program "
            f"(labels: {sorted(universe.observe_labels)})"
        )
    return label


def _variable(request: dict, universe) -> str:
    var = request.get("var")
    if not var or var not in universe.variables:
        raise ValueError(
            f"unknown variable {var!r} "
            f"(variables: {sorted(universe.variables)})"
        )
    return var


def _solve_response(queries, result) -> dict:
    entries = []
    for query in queries:
        record = result.records[query]
        entries.append(
            {
                "query": str(query),
                "verdict": record.status.value,
                "abstraction": (
                    sorted(record.abstraction)
                    if record.status is QueryStatus.PROVEN
                    and record.abstraction is not None
                    else None
                ),
                "iterations": record.iterations,
            }
        )
    return {
        "ok": True,
        "mode": result.mode,
        "store_hit": result.store_hit,
        "digest": result.digest,
        "results": entries,
    }


def _solve(session, base_config: TracerConfig, request: dict) -> Tuple[dict, Dict[str, int]]:
    kind = request.get("kind")
    text = request.get("program")
    if not isinstance(text, str):
        raise ValueError("'solve' needs a 'program' text")
    config = request_config(base_config, request)
    source = request.get("source") or f"submit:{kind}"
    if kind == "typestate":
        client, universe, automaton, _site = session.typestate_client(
            text,
            request.get("automaton", "file"),
            request.get("site"),
        )
        label = _label(request, universe)
        allowed = frozenset(request.get("allowed") or [automaton.init])
        unknown = allowed - automaton.states
        if unknown:
            raise ValueError(
                f"unknown type-states {sorted(unknown)}; "
                f"automaton has {sorted(automaton.states)}"
            )
        from repro.typestate.client import TypestateQuery

        queries = [TypestateQuery(label, allowed)]
    elif kind == "escape":
        client, universe = session.escape_client(text)
        label = _label(request, universe)
        var = _variable(request, universe)
        from repro.escape.client import EscapeQuery

        queries = [EscapeQuery(label, var)]
    elif kind == "provenance":
        client, universe = session.provenance_client(text)
        label = _label(request, universe)
        var = _variable(request, universe)
        allowed = frozenset(request.get("allowed") or universe.sites)
        unknown = allowed - universe.sites
        if unknown:
            raise ValueError(
                f"unknown sites {sorted(unknown)} "
                f"(sites: {sorted(universe.sites)})"
            )
        from repro.provenance.client import ProvenanceQuery

        queries = [ProvenanceQuery(label, var, allowed)]
    else:
        raise ValueError(
            f"unknown solve kind {kind!r} "
            "(one of: typestate, escape, provenance)"
        )
    result = session.solve(client, queries, config, source=source)
    return _solve_response(queries, result), {result.mode: 1}


def _solve_bench(session, base_config: TracerConfig, request: dict) -> Tuple[dict, Dict[str, int]]:
    name = request.get("benchmark")
    analysis = request.get("analysis")
    if not name or not analysis:
        raise ValueError("'solve-bench' needs 'benchmark' and 'analysis'")
    config = request_config(base_config, request)
    units = session.solve_benchmark(name, analysis, config)
    results = []
    modes = set()
    tiers: Dict[str, int] = {}
    hits = 0
    for _index, queries, unit in units:
        modes.add(unit.mode)
        hits += int(unit.store_hit)
        tiers[unit.mode] = tiers.get(unit.mode, 0) + 1
        results.extend(_solve_response(queries, unit)["results"])
    response = {
        "ok": True,
        "benchmark": name,
        "analysis": analysis,
        "units": len(units),
        "store_hits": hits,
        "modes": sorted(modes),
        "results": results,
    }
    return response, tiers


def solve_request(
    session, base_config: TracerConfig, request: dict
) -> Tuple[dict, Dict[str, int]]:
    """Execute one solve op on ``session``; returns ``(response,
    tiers)``.  Raises on bad input — the caller owns the envelope."""
    op = request.get("op")
    if op == "solve":
        return _solve(session, base_config, request)
    if op == "solve-bench":
        return _solve_bench(session, base_config, request)
    raise ValueError(f"unknown op {op!r}")


def worker_main(conn, store_path, base_config, fault_specs=()) -> None:
    """The supervised pool worker body (child side of the pipe).

    Messages are ``(request, request_id, attempt)`` tuples; replies are
    ``(response, meta)`` where ``meta`` carries the per-request phase
    totals, tier counts, and this worker's knowledge-store hit/miss
    *delta* — the parent folds them into its telemetry and its own
    store counters, keeping one authoritative set of instruments.

    ``None`` or EOF stops the loop.  The fault plan (from the daemon's
    ``--inject``) installs ambiently for the worker's lifetime, its hit
    counters fresh in this process; each request additionally pins the
    scope to its delivery attempt so ``attempt=``-pinned rules can fail
    a first delivery and spare the retry.
    """
    # The fork inherited the parent's ambient trace sink; two processes
    # appending to one stream would interleave records, so the worker
    # runs untraced (parent-side request events still tell the story).
    obs._CURRENT = None
    from repro.serve.session import process_session
    from repro.serve.store import KnowledgeStore

    session = process_session()
    store = None
    if store_path is not None:
        store = KnowledgeStore(store_path, shared=True)
        session.store = store
    plan = (
        faults.FaultPlan.from_specs(list(fault_specs))
        if fault_specs else None
    )
    seen_hits = seen_misses = 0
    with faults.fault_scope(plan):
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            if message is None:
                break
            request, _request_id, attempt = message
            tiers: Dict[str, int] = {}
            phase_totals: Dict[str, float] = {}
            with faults.fault_scope(plan, attempt=attempt):
                try:
                    faults.inject("serve.worker")
                    with obs.phase_timing() as phases:
                        response, tiers = solve_request(
                            session, base_config, request
                        )
                    phase_totals = dict(phases.totals)
                except Exception as error:
                    response = error_envelope(error)
            meta = {"phases": phase_totals, "tiers": tiers}
            if store is not None:
                meta["store"] = {
                    "hits": store.hits - seen_hits,
                    "misses": store.misses - seen_misses,
                }
                seen_hits, seen_misses = store.hits, store.misses
            try:
                conn.send((response, meta))
            except (BrokenPipeError, OSError):
                break
    if store is not None:
        store.close()
    try:
        conn.close()
    except OSError:
        pass
