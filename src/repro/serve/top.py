"""``repro top`` — a live TTY dashboard over a running daemon.

Polls the daemon's ``stats`` and ``metrics`` ops (both lock-free
server-side, so the dashboard stays live while a solve holds the
worker thread) and renders one frame per interval: QPS, warm-tier
mix, p50/p95/p99 latency from the scraped histograms, per-phase time
shares, the in-flight request, and the recent-request ring.

Rendering is a pure function of two samples (:func:`render_frame`), so
tests and the CI smoke run it non-interactively with ``--once``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.export import (
    Parsed,
    parse_prometheus,
    quantile_from_parsed,
)
from repro.serve.client import ServeClient
from repro.serve.telemetry import TIERS

__all__ = [
    "Sample",
    "render_frame",
    "render_lease_frame",
    "run_lease_top",
    "run_top",
    "take_sample",
]


@dataclass
class Sample:
    """One poll: wall-clock, the ``stats`` body, parsed metrics."""

    at: float
    stats: dict
    metrics: Parsed

    @classmethod
    def from_parts(
        cls, stats: dict, prometheus_text: str, at: Optional[float] = None
    ) -> "Sample":
        return cls(
            at=at if at is not None else time.monotonic(),
            stats=stats,
            metrics=parse_prometheus(prometheus_text),
        )


def take_sample(client: ServeClient) -> Sample:
    stats = client.stats()
    scraped = client.metrics()
    return Sample.from_parts(stats, scraped["prometheus"])


def _counter_total(parsed: Parsed, name: str, **match) -> float:
    total = 0.0
    for labels, value in parsed.get(name, []):
        if all(labels.get(k) == str(v) for k, v in match.items()):
            total += value
    return total


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds:.2f}s"


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def render_frame(sample: Sample, previous: Optional[Sample] = None) -> str:
    """One dashboard frame (no terminal control codes)."""
    stats = sample.stats
    parsed = sample.metrics
    requests = stats.get("requests_served", 0)
    uptime = stats.get("uptime_seconds", 0.0)
    if previous is not None and sample.at > previous.at:
        qps = (
            requests - previous.stats.get("requests_served", 0)
        ) / (sample.at - previous.at)
    elif uptime:
        qps = requests / uptime
    else:
        qps = 0.0
    lines: List[str] = []
    lines.append(
        f"repro top — pid {stats.get('pid', '?')}  "
        f"uptime {_fmt_uptime(uptime)}  "
        f"requests {requests}  qps {qps:.1f}"
    )

    telemetry = stats.get("telemetry", {})
    tiers: Dict[str, int] = telemetry.get("tiers", {})
    solved = sum(tiers.values())
    if solved:
        mix = "  ".join(
            f"{tier} {tiers.get(tier, 0)} "
            f"({tiers.get(tier, 0) / solved:.0%})"
            for tier in TIERS
            if tiers.get(tier, 0)
        )
    else:
        mix = "no solves yet"
    lines.append(f"tiers: {mix}")

    p50 = quantile_from_parsed(parsed, "repro_request_seconds", 0.50)
    p95 = quantile_from_parsed(parsed, "repro_request_seconds", 0.95)
    p99 = quantile_from_parsed(parsed, "repro_request_seconds", 0.99)
    queue_p95 = quantile_from_parsed(
        parsed, "repro_request_queue_seconds", 0.95
    )
    lines.append(
        f"latency: p50 {_fmt_seconds(p50)}  p95 {_fmt_seconds(p95)}  "
        f"p99 {_fmt_seconds(p99)}  queue p95 {_fmt_seconds(queue_p95)}"
    )

    phase_sums = {
        labels.get("phase", "?"): value
        for labels, value in parsed.get("repro_phase_seconds_sum", [])
    }
    phase_total = sum(phase_sums.values())
    if phase_total:
        shares = "  ".join(
            f"{phase} {phase_sums[phase] / phase_total:.0%}"
            for phase in sorted(phase_sums, key=phase_sums.get, reverse=True)
        )
        lines.append(f"phases: {shares}")

    store = stats.get("store")
    if store:
        line = (
            f"store: {store['entries']} entries  "
            f"hit rate {store['hit_rate']:.1%}"
        )
        superseded = store.get("superseded_ratio")
        if superseded:
            line += f"  superseded {superseded:.0%}"
        if store.get("compactions"):
            line += f"  compactions {store['compactions']}"
        lines.append(line)

    serving = stats.get("serving")
    robustness = telemetry.get("robustness", {})
    if serving or robustness:
        serving = serving or {}
        shed = sum(robustness.get("shed", {}).values())
        lines.append(
            f"pool: {serving.get('workers', 0)} workers  "
            f"queued {serving.get('queued', 0)}"
            f"/{serving.get('queue_depth', 0)}  "
            f"shed {shed}  deduped {robustness.get('deduped', 0)}  "
            f"respawns {robustness.get('respawns', 0)}"
            + ("  DRAINING" if serving.get("draining") else "")
        )

    in_flight = telemetry.get("in_flight", [])
    # The dashboard's own stats request is always in flight; show the
    # others (the interesting ones are solves held by the worker).
    others = [e for e in in_flight if e.get("op") != "stats"]
    if others:
        busy = ", ".join(
            f"{e.get('op')} [{e.get('request_id', '?')}] "
            f"{_fmt_seconds(e.get('running_seconds'))}"
            for e in others
        )
        lines.append(f"in-flight: {busy}")
    else:
        lines.append("in-flight: idle")

    recent = telemetry.get("recent", [])
    if recent:
        lines.append("")
        lines.append(
            f"{'request':<18} {'op':<12} {'mode':<8} {'ok':<4} "
            f"{'queue':>8} {'total':>9}"
        )
        for entry in list(recent)[-8:][::-1]:
            lines.append(
                f"{entry.get('request_id', '?'):<18} "
                f"{str(entry.get('op')):<12} "
                f"{str(entry.get('mode') or '-'):<8} "
                f"{'yes' if entry.get('ok') else 'NO':<4} "
                f"{_fmt_seconds(entry.get('queue_seconds')):>8} "
                f"{_fmt_seconds(entry.get('seconds')):>9}"
            )
    return "\n".join(lines)


def render_lease_frame(
    summary: dict, path: str, now: Optional[float] = None
) -> str:
    """One frame over a lease-log summary (see
    :func:`repro.robust.leases.lease_summary`) — task states, scheduler
    counters, per-worker heartbeat age.  Pure, like
    :func:`render_frame`."""
    now = time.time() if now is None else now
    counters = summary.get("counters", {})
    by_status = summary.get("by_status", {})
    tasks = summary.get("tasks", {})
    workers = summary.get("workers", {})
    lines: List[str] = []
    lines.append(
        f"repro top — leases {path}  tasks {len(tasks)}  "
        + "  ".join(
            f"{status} {count}"
            for status, count in sorted(by_status.items())
        )
    )
    lines.append(
        f"scheduler: claims {counters.get('claims', 0)}  "
        f"steals {counters.get('steals', 0)}  "
        f"releases {counters.get('releases', 0)}  "
        f"completions {counters.get('completions', 0)}  "
        f"duplicates {counters.get('duplicates', 0)}"
    )
    if workers:
        beat = "  ".join(
            f"{worker} {max(0.0, now - last):.1f}s ago"
            for worker, last in sorted(workers.items())
        )
        lines.append(f"heartbeats: {beat}")
    active = [
        (key, state)
        for key, state in tasks.items()
        if state.get("status") in ("running", "expired", "released")
    ]
    if active:
        lines.append("")
        lines.append(
            f"{'task':<40} {'status':<10} {'worker':<14} "
            f"{'attempts':>8} {'stolen':>7}"
        )
        for key, state in active[:12]:
            lines.append(
                f"{key:<40} {str(state.get('status')):<10} "
                f"{str(state.get('worker') or '-'):<14} "
                f"{state.get('attempts', 0):>8} {state.get('stolen', 0):>7}"
            )
    return "\n".join(lines)


def run_lease_top(
    lease_path: str,
    ttl: float = 5.0,
    interval: float = 2.0,
    frames: Optional[int] = None,
    clear: bool = True,
    out=None,
) -> int:
    """Watch a scheduler's lease log (lock-free, torn-tail tolerant —
    never delays the workers) and render task/worker state per frame."""
    from repro.robust.leases import lease_summary, load_lease_records

    out = out if out is not None else sys.stdout
    rendered = 0
    while True:
        summary = lease_summary(load_lease_records(lease_path), ttl=ttl)
        frame = render_lease_frame(summary, lease_path)
        if clear and rendered > 0:
            out.write("\x1b[2J\x1b[H")
        out.write(frame + "\n")
        out.flush()
        rendered += 1
        if frames is not None and rendered >= frames:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


def run_top(
    socket_path: str,
    interval: float = 2.0,
    frames: Optional[int] = None,
    clear: bool = True,
    out=None,
) -> int:
    """Poll and render until interrupted (or for ``frames`` frames —
    ``frames=1`` is the non-interactive ``--once`` snapshot)."""
    out = out if out is not None else sys.stdout
    client = ServeClient(socket_path)
    previous: Optional[Sample] = None
    rendered = 0
    while True:
        sample = take_sample(client)
        frame = render_frame(sample, previous)
        if clear and rendered > 0:
            out.write("\x1b[2J\x1b[H")
        out.write(frame + "\n")
        out.flush()
        previous = sample
        rendered += 1
        if frames is not None and rendered >= frames:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
