"""The persistent cross-run knowledge store.

One JSONL file, written fsync-per-record through the torn-tail-tolerant
machinery shared with :mod:`repro.robust.checkpoint` (a SIGKILL
mid-write loses at most the entry in flight, and the torn tail is
truncated away before the next append).  Each entry is the complete
knowledge of one finished search::

    {"type": "store_header", "version": 1}
    {"type": "entry",
     "digest": sha256,                # program + client fingerprint
     "source": str | null,            # stable submission id (file path,
                                      # "bench:<name>:<analysis>:<i>", ...)
     "client": {...},                 # client fingerprint (see
                                      # session.describe_client)
     "config": [...],                 # config_key() of the search
     "queries": [qid, ...],
     "rounds": [...],                 # journal-style round records
     "results": {qid: {"verdict": str, "abstraction": [...] | null,
                       "cost": int | null, "iterations": int,
                       "annotation_digest": sha256 | null}},
     "witnesses": {qid: [{"abstraction": [...], "k": int | null,
                          "trace": [...], "clauses": [...]}, ...]},
     "sha256": hexdigest}             # content checksum over the rest

Lookup is two-tier, mirroring :class:`~repro.core.tracer.WarmStart`:

* :meth:`lookup` — exact ``(digest, config, query set)`` match: the
  recorded rounds replay bit-identically (verdicts, certificates, and
  journal records equal to a cold search, zero forward fixpoints);
* :meth:`lookup_seed` — same ``source`` and client kind but a changed
  digest (a lightly-edited program): the recorded witnesses seed the
  new search's viability stores after per-witness validation by the
  session.

Later entries shadow earlier ones for the same key (append-only file,
last-wins index), so re-recording after an edit needs no rewriting.
The store registers with the metrics registry as ``knowledge_store``;
its hit/miss counters surface like every other cache's.

**Shared mode** (``KnowledgeStore(path, shared=True)``) is what the
daemon's supervised worker pool uses: several processes append to one
file.  Every append takes an exclusive ``flock`` on ``path + ".lock"``,
re-syncs against what other writers appended meanwhile, truncates any
dead writer's torn tail, then writes and fsyncs its own record —
single-writer-at-a-time, so warm-tier hits stay bit-identical across
processes.  Lookups first :meth:`refresh` the in-memory index from the
file's tail (an ``os.stat`` when nothing changed); an inode change
means someone compacted the file, which triggers a full reload.

**Compaction** (:meth:`compact`, surfaced as ``repro store compact``)
rewrites the latest-wins survivors — the newest entry per exact key
and per ``(source, kind)`` seed key — to a temp file, fsyncs it *and*
the directory, then atomically renames over the original.  A SIGKILL
at any instant leaves either the complete old file or the complete new
one, never a torn hybrid; the fault sites ``store.compact.write`` /
``store.compact.rename`` / ``store.compact.done`` let the kill-matrix
test pin the kill to each window.  :func:`verify_store` re-checks the
version gate, record structure, and per-entry checksums offline.
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.pretty import pretty_command, pretty_program
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.robust import faults
from repro.robust.checkpoint import JsonlAppender, scan_jsonl

__all__ = [
    "KnowledgeStore",
    "canonical_program_text",
    "config_key",
    "entry_checksum",
    "program_digest",
    "verify_store",
]

STORE_VERSION = 1


def canonical_program_text(program) -> str:
    """A deterministic textual rendering of any client program shape:
    a structured :class:`~repro.lang.ast.Program` (the pretty-printer
    is the parser's concrete syntax), a single
    :class:`~repro.lang.cfg.Cfg`, or an interprocedural
    :class:`~repro.dataflow.interproc.ProcGraph` (each procedure's CFG
    rendered under its name, main first)."""
    procedures = getattr(program, "procedures", None)
    if procedures is not None and hasattr(program, "main"):
        parts = [f"main {program.main}"]
        for name in sorted(procedures):
            parts.append(f"proc {name}")
            parts.append(_cfg_text(procedures[name]))
        return "\n".join(parts)
    if hasattr(program, "edges") and hasattr(program, "entry"):
        return _cfg_text(program)
    return pretty_program(program)


def _cfg_text(cfg) -> str:
    lines = [f"entry {cfg.entry} exit {cfg.exit}"]
    for edge in cfg.edges:
        command = (
            "eps" if edge.command is None else pretty_command(edge.command)
        )
        lines.append(f"{edge.src} -[{command}]-> {edge.dst}")
    return "\n".join(lines)


def program_digest(program, client_info: dict) -> str:
    """SHA-256 over the canonical program text and the client
    fingerprint — the store key.  Two submissions share a digest
    exactly when the search they describe is the same: same program
    semantics, same analysis parameters."""
    digest = hashlib.sha256()
    digest.update(canonical_program_text(program).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(
        json.dumps(client_info, sort_keys=True, default=str).encode("utf-8")
    )
    return digest.hexdigest()


def config_key(config) -> Tuple:
    """The part of a :class:`~repro.core.tracer.TracerConfig` that a
    recorded search depends on.  ``engine`` is deliberately excluded:
    the interpreted and compiled engines are bit-identical (gated in
    CI), so knowledge recorded under one replays under the other."""
    return (
        config.k,
        config.k_min,
        config.max_iterations,
        config.max_cubes,
        config.max_steps,
        config.max_seconds,
        config.budget_check_every,
        config.strict,
    )


def entry_checksum(entry: dict) -> str:
    """Content checksum of one entry: SHA-256 over its canonical JSON
    with the ``sha256`` field itself excluded.  ``verify`` recomputes
    it to catch bit rot and hand-editing; entries recorded before the
    field existed simply lack it and verify structurally only."""
    body = {key: value for key, value in entry.items() if key != "sha256"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")
    ).hexdigest()


class _StoreLock:
    """Exclusive cross-process lock on ``path + ".lock"``.

    A separate lock file — never the store itself — so compaction can
    atomically replace the store file while holding the lock (locking
    the data file would leave the lock attached to the dead inode)."""

    def __init__(self, path: str):
        self.path = path + ".lock"
        self._fd: Optional[int] = None

    def __enter__(self) -> "_StoreLock":
        self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc) -> bool:
        fcntl.flock(self._fd, fcntl.LOCK_UN)
        os.close(self._fd)
        self._fd = None
        return False


def _fsync_dir(path: str) -> None:
    """Persist a rename: fsync the directory entry's parent."""
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _header_line() -> str:
    return (
        json.dumps({"type": "store_header", "version": STORE_VERSION},
                   sort_keys=True)
        + "\n"
    )


class KnowledgeStore:
    """Crash-safe on-disk knowledge of every search a session ran.

    Loading tolerates a torn trailing line (the crash the appender is
    built for) but raises on interior corruption, exactly like the
    checkpoint and journal layers it shares :func:`scan_jsonl` with.

    ``shared=True`` switches appends to flock-coordinated writes and
    lookups to tail-refreshing reads — the multi-process daemon mode
    (see the module doc).  The default single-process mode keeps the
    original :class:`~repro.robust.checkpoint.JsonlAppender` path.
    """

    def __init__(self, path: str, shared: bool = False):
        self.path = path
        self.shared = shared
        #: Exact-match index: (digest, config, query ids) -> entry.
        self._exact: Dict[Tuple, dict] = {}
        #: Seed index: (source, client kind) -> latest entry.
        self._by_source: Dict[Tuple[str, str], dict] = {}
        self.entries_loaded = 0
        #: Entry records physically in the file, superseded ones
        #: included — the compaction trigger's numerator comes from
        #: comparing this against the live index size.
        self.file_entries = 0
        self.compactions = 0
        self.hits = 0
        self.misses = 0
        self._offset = 0  # byte offset just past the last indexed line
        self._ino: Optional[int] = None
        self._appender: Optional[JsonlAppender] = None
        if shared:
            with _StoreLock(path):
                self._load_locked()
        else:
            self._load_locked()
            self._appender = JsonlAppender(path)
            if self._appender.fresh:
                self._appender.append(
                    {"type": "store_header", "version": STORE_VERSION}
                )
        self.entries_loaded = self.file_entries
        obs_metrics.register_cache("knowledge_store", self)

    def __len__(self) -> int:
        return len(self._exact)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def superseded_ratio(self) -> float:
        """Fraction of on-file entries shadowed by a later recording —
        the daemon's periodic-compaction trigger."""
        if not self.file_entries:
            return 0.0
        live = len(self._live_file_keys())
        return max(0, self.file_entries - live) / self.file_entries

    def _live_file_keys(self) -> set:
        # Live = latest for an exact key (forgotten entries still
        # occupy their file slot, so count by index key, not identity).
        return set(self._all_exact_keys)

    # -- loading and cross-process refresh --------------------------------

    def _reset_index(self) -> None:
        self._exact.clear()
        self._by_source.clear()
        self._all_exact_keys: set = set()
        self.file_entries = 0

    def _load_locked(self) -> None:
        """(Re)build the index from the whole file.  Under the lock in
        shared mode; single-process mode has no writers to race."""
        self._reset_index()
        records, intact = scan_jsonl(self.path)
        for record in records:
            self._ingest(record)
        self._offset = intact
        if self.shared:
            # Create-or-repair under the lock: write the header into a
            # fresh file, truncate a dead writer's torn tail away.
            size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
            if not records and size == 0:
                with open(self.path, "a") as handle:
                    handle.write(_header_line())
                    handle.flush()
                    os.fsync(handle.fileno())
                self._offset = len(_header_line())
            elif size > intact:
                with open(self.path, "r+b") as handle:
                    handle.truncate(intact)
        self._ino = os.stat(self.path).st_ino if os.path.exists(self.path) else None

    def _ingest(self, record: dict) -> None:
        rtype = record.get("type")
        if rtype == "store_header":
            version = record.get("version")
            if version != STORE_VERSION:
                raise ValueError(
                    f"{self.path}: unsupported store version {version!r}"
                )
        elif rtype == "entry":
            self._index(record)
            self.file_entries += 1
        # unknown record types are forward-compatible noise

    def refresh(self) -> int:
        """Shared mode: fold in entries other processes appended since
        the last look; returns how many new records were indexed.  An
        inode change (the file was compacted) or a shrink triggers a
        full reload.  No-op in single-process mode."""
        if not self.shared:
            return 0
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            return 0
        if stat.st_ino != self._ino or stat.st_size < self._offset:
            before = self.file_entries
            with _StoreLock(self.path):
                self._load_locked()
            return max(0, self.file_entries - before)
        if stat.st_size == self._offset:
            return 0
        return self._scan_tail()

    def _scan_tail(self) -> int:
        """Index complete lines appended past ``_offset``.  A trailing
        line without its newline (or mid-fsync garbage) is left alone —
        either its writer is about to finish it, or the next locked
        append will truncate it."""
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            data = handle.read()
        added = 0
        for line in data.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break
            try:
                record = json.loads(line)
            except ValueError:
                break
            if not isinstance(record, dict):
                break
            self._offset += len(line)
            self._ingest(record)
            added += 1
        return added

    # -- lookups -----------------------------------------------------------

    def _index(self, entry: dict) -> None:
        key = self._exact_key(
            entry.get("digest"),
            tuple(entry.get("config") or ()),
            entry.get("queries") or (),
        )
        self._exact[key] = entry
        self._all_exact_keys.add(key)
        source = entry.get("source")
        kind = (entry.get("client") or {}).get("kind")
        if source and kind:
            self._by_source[(source, kind)] = entry

    @staticmethod
    def _exact_key(digest, config, query_ids) -> Tuple:
        return (digest, tuple(config), tuple(query_ids))

    def lookup(
        self, digest: str, config: Tuple, query_ids: Sequence[str]
    ) -> Optional[dict]:
        """Replay-tier lookup: the entry recorded for exactly this
        ``(digest, config, query set)``, or ``None``.  Counts one hit
        or miss and emits a ``store_hit`` event on success."""
        self.refresh()
        entry = self._exact.get(self._exact_key(digest, config, query_ids))
        if entry is not None:
            self.hits += 1
            if obs.active():
                obs.event(
                    "store_hit",
                    tier="replay",
                    digest=digest[:12],
                    source=entry.get("source"),
                    queries=len(entry.get("queries") or ()),
                    rounds=len(entry.get("rounds") or ()),
                )
            return entry
        self.misses += 1
        return None

    def lookup_seed(
        self, source: Optional[str], client_kind: Optional[str]
    ) -> Optional[dict]:
        """Clause-tier lookup: the latest entry recorded for the same
        submission source and client kind (the lightly-edited-program
        path).  Does not count toward hit/miss — the exact lookup that
        preceded it already counted the miss; a seed hit emits its own
        ``store_hit`` event with ``tier="clauses"``."""
        if not source or not client_kind:
            return None
        self.refresh()
        entry = self._by_source.get((source, client_kind))
        if entry is not None and obs.active():
            obs.event(
                "store_hit",
                tier="clauses",
                digest=(entry.get("digest") or "")[:12],
                source=source,
                queries=len(entry.get("queries") or ()),
            )
        return entry

    # -- recording ---------------------------------------------------------

    def record(
        self,
        digest: str,
        source: Optional[str],
        client_info: dict,
        config: Tuple,
        query_ids: Sequence[str],
        rounds: List[dict],
        results: Dict[str, dict],
        witnesses: Dict[str, List[dict]],
    ) -> dict:
        """Append one finished search's knowledge (fsync'd before
        return) and index it for this process's own lookups."""
        entry = {
            "type": "entry",
            "digest": digest,
            "source": source,
            "client": dict(client_info),
            "config": list(config),
            "queries": list(query_ids),
            "rounds": list(rounds),
            "results": dict(results),
            "witnesses": dict(witnesses),
        }
        entry["sha256"] = entry_checksum(entry)
        if self.shared:
            self._append_shared(entry)
        else:
            self._appender.append(entry)
            self._index(entry)
            self.file_entries += 1
        return entry

    def _append_shared(self, entry: dict) -> None:
        """One locked append: sync against other writers, repair any
        torn tail, write+fsync, advance the local index."""
        line = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        with _StoreLock(self.path):
            try:
                stat = os.stat(self.path)
            except FileNotFoundError:
                stat = None
            if (
                stat is None
                or stat.st_ino != self._ino
                or stat.st_size < self._offset
            ):
                self._load_locked()
            else:
                self._scan_tail()
                if self._offset < stat.st_size:
                    # Whatever sits past the last intact line is a dead
                    # writer's torn tail (live writers finish their
                    # line before releasing the lock).
                    with open(self.path, "r+b") as handle:
                        handle.truncate(self._offset)
            with open(self.path, "ab") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
            self._offset += len(line)
            self._index(entry)
            self.file_entries += 1

    def forget(self, entry: dict) -> None:
        """Drop a stale entry from the in-memory index (it stays in the
        file, shadowed by whatever is recorded next), so a failed warm
        start is not retried forever."""
        key = self._exact_key(
            entry.get("digest"),
            tuple(entry.get("config") or ()),
            entry.get("queries") or (),
        )
        if self._exact.get(key) is entry:
            del self._exact[key]
        source = entry.get("source")
        kind = (entry.get("client") or {}).get("kind")
        if source and kind and self._by_source.get((source, kind)) is entry:
            del self._by_source[(source, kind)]

    # -- compaction --------------------------------------------------------

    def compact(self) -> dict:
        """Rewrite the file keeping only latest-wins survivors; returns
        ``{"entries_before", "entries_after", "dropped", "bytes_before",
        "bytes_after"}``.

        Crash-safe by construction: survivors go to ``path.compact.tmp``
        first, the temp file is fsync'd, then atomically renamed over
        the store (and the directory fsync'd).  A SIGKILL anywhere in
        between leaves the complete old file or the complete new one.
        Runs under the store lock, so live shared-mode writers simply
        wait; their next lookup notices the new inode and reloads."""
        with _StoreLock(self.path):
            records, _intact = scan_jsonl(self.path)
            entries = [r for r in records if r.get("type") == "entry"]
            for record in records:
                if record.get("type") == "store_header":
                    version = record.get("version")
                    if version != STORE_VERSION:
                        raise ValueError(
                            f"{self.path}: unsupported store version "
                            f"{version!r}"
                        )
            bytes_before = (
                os.path.getsize(self.path) if os.path.exists(self.path) else 0
            )
            last_exact: Dict[Tuple, int] = {}
            last_seed: Dict[Tuple[str, str], int] = {}
            for position, entry in enumerate(entries):
                last_exact[self._exact_key(
                    entry.get("digest"),
                    tuple(entry.get("config") or ()),
                    entry.get("queries") or (),
                )] = position
                source = entry.get("source")
                kind = (entry.get("client") or {}).get("kind")
                if source and kind:
                    last_seed[(source, kind)] = position
            keep = sorted(set(last_exact.values()) | set(last_seed.values()))
            tmp = self.path + ".compact.tmp"
            with open(tmp, "w") as handle:
                handle.write(_header_line())
                faults.inject("store.compact.write")
                for position in keep:
                    entry = dict(entries[position])
                    entry.setdefault("sha256", entry_checksum(entry))
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            faults.inject("store.compact.rename")
            os.replace(tmp, self.path)
            _fsync_dir(os.path.dirname(os.path.abspath(self.path)))
            faults.inject("store.compact.done")
            stats = {
                "entries_before": len(entries),
                "entries_after": len(keep),
                "dropped": len(entries) - len(keep),
                "bytes_before": bytes_before,
                "bytes_after": os.path.getsize(self.path),
            }
            if self.shared:
                self._load_locked()
        if not self.shared:
            # The appender's handle points at the replaced inode;
            # reopen on the new file and rebuild the index from it.
            self._appender.close()
            self._load_locked()
            self._appender = JsonlAppender(self.path)
        self.compactions += 1
        if obs.active():
            obs.event("store_compacted", **stats)
        return stats

    def stats(self) -> dict:
        """The ``repro store stats`` summary."""
        self.refresh()
        return {
            "path": self.path,
            "bytes": (
                os.path.getsize(self.path) if os.path.exists(self.path) else 0
            ),
            "file_entries": self.file_entries,
            "live_entries": len(self._exact),
            "sources": len(self._by_source),
            "superseded_ratio": round(self.superseded_ratio, 4),
            "compactions": self.compactions,
        }

    def close(self) -> None:
        if self._appender is not None:
            self._appender.close()

    def __enter__(self) -> "KnowledgeStore":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def verify_store(path: str) -> Tuple[List[str], dict]:
    """Offline integrity check behind ``repro store verify``.

    Returns ``(problems, summary)``.  Problems: a missing or
    unsupported header, interior (non-trailing) corruption, entries
    missing required fields, and entries whose recorded ``sha256``
    no longer matches their content.  A torn trailing line and
    entries recorded before checksums existed are *noted* in the
    summary, not problems — both are expected in healthy stores."""
    problems: List[str] = []
    summary = {
        "path": path,
        "bytes": 0,
        "records": 0,
        "entries": 0,
        "checksummed": 0,
        "legacy_entries": 0,
        "torn_tail": False,
    }
    if not os.path.exists(path):
        problems.append(f"{path}: no such file")
        return problems, summary
    with open(path, "rb") as handle:
        data = handle.read()
    summary["bytes"] = len(data)
    lines = data.splitlines(keepends=True)
    saw_header = False
    for index, line in enumerate(lines):
        is_last = index == len(lines) - 1
        if not line.endswith(b"\n"):
            if is_last:
                summary["torn_tail"] = True
                break
            problems.append(f"line {index + 1}: unterminated interior line")
            break
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        record = None
        try:
            parsed = json.loads(text)
            if isinstance(parsed, dict):
                record = parsed
        except ValueError:
            record = None
        if record is None:
            if is_last:
                summary["torn_tail"] = True
                break
            problems.append(
                f"line {index + 1}: corrupt interior record "
                "(not a trailing crash artifact)"
            )
            continue
        summary["records"] += 1
        rtype = record.get("type")
        if summary["records"] == 1:
            if rtype != "store_header":
                problems.append("line 1: first record is not a store_header")
            elif record.get("version") != STORE_VERSION:
                problems.append(
                    f"line 1: unsupported store version "
                    f"{record.get('version')!r}"
                )
            saw_header = True
            continue
        if rtype == "store_header":
            problems.append(f"line {index + 1}: duplicate store_header")
        elif rtype == "entry":
            summary["entries"] += 1
            digest = record.get("digest")
            if not (isinstance(digest, str) and len(digest) == 64):
                problems.append(
                    f"line {index + 1}: entry without a sha256 digest key"
                )
            for field, kind in (
                ("queries", list), ("rounds", list),
                ("results", dict), ("config", list),
            ):
                if not isinstance(record.get(field), kind):
                    problems.append(
                        f"line {index + 1}: entry field {field!r} "
                        f"is not a {kind.__name__}"
                    )
            recorded = record.get("sha256")
            if recorded is None:
                summary["legacy_entries"] += 1
            elif recorded != entry_checksum(record):
                problems.append(
                    f"line {index + 1}: entry checksum mismatch "
                    "(content altered after recording)"
                )
            else:
                summary["checksummed"] += 1
    if not saw_header and not summary["torn_tail"]:
        problems.append(f"{path}: empty store (no header record)")
    return problems, summary
