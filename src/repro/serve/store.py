"""The persistent cross-run knowledge store.

One JSONL file, written through the torn-tail-tolerant
:class:`~repro.robust.checkpoint.JsonlAppender` (fsync per record, a
SIGKILL mid-write loses at most the entry in flight, and the torn tail
is truncated away on the next open).  Each entry is the complete
knowledge of one finished search::

    {"type": "store_header", "version": 1}
    {"type": "entry",
     "digest": sha256,                # program + client fingerprint
     "source": str | null,            # stable submission id (file path,
                                      # "bench:<name>:<analysis>:<i>", ...)
     "client": {...},                 # client fingerprint (see
                                      # session.describe_client)
     "config": [...],                 # config_key() of the search
     "queries": [qid, ...],
     "rounds": [...],                 # journal-style round records
     "results": {qid: {"verdict": str, "abstraction": [...] | null,
                       "cost": int | null, "iterations": int,
                       "annotation_digest": sha256 | null}},
     "witnesses": {qid: [{"abstraction": [...], "k": int | null,
                          "trace": [...], "clauses": [...]}, ...]}}

Lookup is two-tier, mirroring :class:`~repro.core.tracer.WarmStart`:

* :meth:`lookup` — exact ``(digest, config, query set)`` match: the
  recorded rounds replay bit-identically (verdicts, certificates, and
  journal records equal to a cold search, zero forward fixpoints);
* :meth:`lookup_seed` — same ``source`` and client kind but a changed
  digest (a lightly-edited program): the recorded witnesses seed the
  new search's viability stores after per-witness validation by the
  session.

Later entries shadow earlier ones for the same key (append-only file,
last-wins index), so re-recording after an edit needs no rewriting.
The store registers with the metrics registry as ``knowledge_store``;
its hit/miss counters surface like every other cache's.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.pretty import pretty_command, pretty_program
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.robust.checkpoint import JsonlAppender, scan_jsonl

__all__ = [
    "KnowledgeStore",
    "canonical_program_text",
    "config_key",
    "program_digest",
]

STORE_VERSION = 1


def canonical_program_text(program) -> str:
    """A deterministic textual rendering of any client program shape:
    a structured :class:`~repro.lang.ast.Program` (the pretty-printer
    is the parser's concrete syntax), a single
    :class:`~repro.lang.cfg.Cfg`, or an interprocedural
    :class:`~repro.dataflow.interproc.ProcGraph` (each procedure's CFG
    rendered under its name, main first)."""
    procedures = getattr(program, "procedures", None)
    if procedures is not None and hasattr(program, "main"):
        parts = [f"main {program.main}"]
        for name in sorted(procedures):
            parts.append(f"proc {name}")
            parts.append(_cfg_text(procedures[name]))
        return "\n".join(parts)
    if hasattr(program, "edges") and hasattr(program, "entry"):
        return _cfg_text(program)
    return pretty_program(program)


def _cfg_text(cfg) -> str:
    lines = [f"entry {cfg.entry} exit {cfg.exit}"]
    for edge in cfg.edges:
        command = (
            "eps" if edge.command is None else pretty_command(edge.command)
        )
        lines.append(f"{edge.src} -[{command}]-> {edge.dst}")
    return "\n".join(lines)


def program_digest(program, client_info: dict) -> str:
    """SHA-256 over the canonical program text and the client
    fingerprint — the store key.  Two submissions share a digest
    exactly when the search they describe is the same: same program
    semantics, same analysis parameters."""
    digest = hashlib.sha256()
    digest.update(canonical_program_text(program).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(
        json.dumps(client_info, sort_keys=True, default=str).encode("utf-8")
    )
    return digest.hexdigest()


def config_key(config) -> Tuple:
    """The part of a :class:`~repro.core.tracer.TracerConfig` that a
    recorded search depends on.  ``engine`` is deliberately excluded:
    the interpreted and compiled engines are bit-identical (gated in
    CI), so knowledge recorded under one replays under the other."""
    return (
        config.k,
        config.k_min,
        config.max_iterations,
        config.max_cubes,
        config.max_steps,
        config.max_seconds,
        config.budget_check_every,
        config.strict,
    )


class KnowledgeStore:
    """Crash-safe on-disk knowledge of every search a session ran.

    Loading tolerates a torn trailing line (the crash the appender is
    built for) but raises on interior corruption, exactly like the
    checkpoint and journal layers it shares :func:`scan_jsonl` with.
    """

    def __init__(self, path: str):
        self.path = path
        #: Exact-match index: (digest, config, query ids) -> entry.
        self._exact: Dict[Tuple, dict] = {}
        #: Seed index: (source, client kind) -> latest entry.
        self._by_source: Dict[Tuple[str, str], dict] = {}
        self.entries_loaded = 0
        self.hits = 0
        self.misses = 0
        records, _intact = scan_jsonl(path)
        for record in records:
            rtype = record.get("type")
            if rtype == "store_header":
                version = record.get("version")
                if version != STORE_VERSION:
                    raise ValueError(
                        f"{path}: unsupported store version {version!r}"
                    )
            elif rtype == "entry":
                self._index(record)
                self.entries_loaded += 1
            # unknown record types are forward-compatible noise
        self._appender = JsonlAppender(path)
        if self._appender.fresh:
            self._appender.append(
                {"type": "store_header", "version": STORE_VERSION}
            )
        obs_metrics.register_cache("knowledge_store", self)

    def __len__(self) -> int:
        return len(self._exact)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _index(self, entry: dict) -> None:
        key = self._exact_key(
            entry.get("digest"),
            tuple(entry.get("config") or ()),
            entry.get("queries") or (),
        )
        self._exact[key] = entry
        source = entry.get("source")
        kind = (entry.get("client") or {}).get("kind")
        if source and kind:
            self._by_source[(source, kind)] = entry

    @staticmethod
    def _exact_key(digest, config, query_ids) -> Tuple:
        return (digest, tuple(config), tuple(query_ids))

    def lookup(
        self, digest: str, config: Tuple, query_ids: Sequence[str]
    ) -> Optional[dict]:
        """Replay-tier lookup: the entry recorded for exactly this
        ``(digest, config, query set)``, or ``None``.  Counts one hit
        or miss and emits a ``store_hit`` event on success."""
        entry = self._exact.get(self._exact_key(digest, config, query_ids))
        if entry is not None:
            self.hits += 1
            if obs.active():
                obs.event(
                    "store_hit",
                    tier="replay",
                    digest=digest[:12],
                    source=entry.get("source"),
                    queries=len(entry.get("queries") or ()),
                    rounds=len(entry.get("rounds") or ()),
                )
            return entry
        self.misses += 1
        return None

    def lookup_seed(
        self, source: Optional[str], client_kind: Optional[str]
    ) -> Optional[dict]:
        """Clause-tier lookup: the latest entry recorded for the same
        submission source and client kind (the lightly-edited-program
        path).  Does not count toward hit/miss — the exact lookup that
        preceded it already counted the miss; a seed hit emits its own
        ``store_hit`` event with ``tier="clauses"``."""
        if not source or not client_kind:
            return None
        entry = self._by_source.get((source, client_kind))
        if entry is not None and obs.active():
            obs.event(
                "store_hit",
                tier="clauses",
                digest=(entry.get("digest") or "")[:12],
                source=source,
                queries=len(entry.get("queries") or ()),
            )
        return entry

    def record(
        self,
        digest: str,
        source: Optional[str],
        client_info: dict,
        config: Tuple,
        query_ids: Sequence[str],
        rounds: List[dict],
        results: Dict[str, dict],
        witnesses: Dict[str, List[dict]],
    ) -> dict:
        """Append one finished search's knowledge (fsync'd before
        return) and index it for this process's own lookups."""
        entry = {
            "type": "entry",
            "digest": digest,
            "source": source,
            "client": dict(client_info),
            "config": list(config),
            "queries": list(query_ids),
            "rounds": list(rounds),
            "results": dict(results),
            "witnesses": dict(witnesses),
        }
        self._appender.append(entry)
        self._index(entry)
        return entry

    def forget(self, entry: dict) -> None:
        """Drop a stale entry from the in-memory index (it stays in the
        file, shadowed by whatever is recorded next), so a failed warm
        start is not retried forever."""
        key = self._exact_key(
            entry.get("digest"),
            tuple(entry.get("config") or ()),
            entry.get("queries") or (),
        )
        if self._exact.get(key) is entry:
            del self._exact[key]
        source = entry.get("source")
        kind = (entry.get("client") or {}).get("kind")
        if source and kind and self._by_source.get((source, kind)) is entry:
            del self._by_source[(source, kind)]

    def close(self) -> None:
        self._appender.close()

    def __enter__(self) -> "KnowledgeStore":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
