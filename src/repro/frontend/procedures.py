"""Procedure-level lowering: mini-Java IR -> ProcGraph (no inlining).

The alternative to :mod:`repro.frontend.inline`: each reachable method
becomes one procedure with procedure-local variable renaming
(``x__Cls_m``); calls stay calls (``CallProc``) with parameter and
return passing as explicit assignments at the call site; the
interprocedural tabulation engine then provides full context
sensitivity *by entry state* and supports recursion.

Soundness around recursion: procedures share one global variable
namespace, so a call that can transitively re-enter the caller's own
procedure clobbers the caller's frame.  After any such call the
caller's locals are *havocked* (assigned from an unknown global),
which is conservative for all three client analyses — exactly how
bounded-context production analyses treat recursive cycles.

Query plumbing matches the inliner: ``Observe(pc)`` + ``Invoke``
markers at call sites, shared query variables at field accesses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dataflow.interproc import ProcGraph
from repro.frontend.callgraph import CallGraph, build_callgraph
from repro.frontend.inline import query_var_for
from repro.frontend.program import (
    FrontProgram,
    MethodDef,
    SApiCall,
    SAssign,
    SAssignNull,
    SCall,
    SIf,
    SLoadField,
    SLoadGlobal,
    SNew,
    SReturn,
    SStoreField,
    SStoreGlobal,
    SThreadStart,
    SWhile,
    Stmt,
)
from repro.lang.ast import (
    Assign,
    AssignNull,
    CallProc,
    Invoke,
    LoadGlobal,
    LoadField,
    New,
    Observe,
    Program,
    Skip,
    Star,
    StoreField,
    StoreGlobal,
    ThreadStart,
    choice,
    seq,
)
from repro.lang.cfg import build_cfg

HAVOC_GLOBAL = "__havoc__"


@dataclass
class ProcResult:
    """The lowered procedure graph plus client-facing metadata
    (mirrors :class:`repro.frontend.inline.InlineResult`)."""

    graph: ProcGraph
    variables: FrozenSet[str]
    query_vars: FrozenSet[str]
    sites: FrozenSet[str]
    fields: FrozenSet[str]
    globals: FrozenSet[str]
    var_origin: Dict[str, Tuple[str, str, str]]
    call_points: Dict[str, Tuple[str, str, str, str]]
    access_points: Dict[str, Tuple[str, str, str, str]]
    recursive_procs: FrozenSet[str]
    command_count: int


def proc_name(cls: str, method: str) -> str:
    return f"{cls}.{method}"


class _Lowerer:
    def __init__(self, front: FrontProgram, callgraph: CallGraph):
        self.front = front
        self.cg = callgraph
        self.variables: Set[str] = set()
        self.query_vars: Set[str] = set()
        self.globals: Set[str] = set()
        self.var_origin: Dict[str, Tuple[str, str, str]] = {}
        self.call_points: Dict[str, Tuple[str, str, str, str]] = {}
        self.access_points: Dict[str, Tuple[str, str, str, str]] = {}
        self.proc_locals: Dict[str, Set[str]] = {}
        self.reaches: Dict[str, Set[str]] = {}

    def run(self) -> ProcResult:
        reachable = sorted(self.cg.reachable)
        self._compute_reachability(reachable)
        # Pre-scan every method's variables so recursion havoc (emitted
        # mid-body) covers locals that only appear later in the body.
        for cls, method_name in reachable:
            self._prescan(cls, self.front.method(cls, method_name))
        bodies: Dict[str, Program] = {}
        for cls, method_name in reachable:
            method = self.front.method(cls, method_name)
            bodies[proc_name(cls, method_name)] = self._lower_method(cls, method)
        main = proc_name(self.front.entry_class, self.front.entry_method)
        graph = ProcGraph(
            procedures={name: build_cfg(body) for name, body in bodies.items()},
            main=main,
        )
        from repro.lang.ast import atoms_of

        count = sum(1 for body in bodies.values() for _ in atoms_of(body))
        fields = sorted(
            {f for cls_def in self.front.classes.values() for f in cls_def.fields}
        )
        recursive = frozenset(
            name for name, closure in self.reaches.items() if name in closure
        )
        return ProcResult(
            graph=graph,
            variables=frozenset(self.variables),
            query_vars=frozenset(self.query_vars),
            sites=frozenset(self.front.site_class),
            fields=frozenset(fields),
            globals=frozenset(self.globals),
            var_origin=dict(self.var_origin),
            call_points=dict(self.call_points),
            access_points=dict(self.access_points),
            recursive_procs=recursive,
            command_count=count,
        )

    # -- call-graph reachability (for recursion havoc) ---------------------

    def _targets_of_pc(self, pc: str) -> List[str]:
        return sorted(
            proc_name(*target)
            for target in self.cg.call_targets.get(pc, frozenset())
        )

    def _compute_reachability(self, reachable) -> None:
        direct: Dict[str, Set[str]] = {}
        for cls, method_name in reachable:
            name = proc_name(cls, method_name)
            direct[name] = set()
            method = self.front.method(cls, method_name)
            from repro.frontend.program import walk_statements

            for stmt in walk_statements(method.body):
                if isinstance(stmt, (SCall, SThreadStart)):
                    direct[name].update(self._targets_of_pc(stmt.pc))
        # Transitive closure (the graphs are tiny).
        for name in direct:
            closure: Set[str] = set()
            frontier = set(direct[name])
            while frontier:
                closure |= frontier
                frontier = {
                    succ
                    for proc in frontier
                    for succ in direct.get(proc, ())
                } - closure
            self.reaches[name] = closure

    def _may_reenter(self, caller: str, pc: str) -> bool:
        """Whether the call at ``pc`` can transitively re-enter
        ``caller`` (and hence clobber its frame)."""
        for target in self._targets_of_pc(pc):
            if target == caller or caller in self.reaches.get(target, ()):
                return True
        return False

    # -- lowering -----------------------------------------------------------

    def _renamer(self, cls: str, method: str):
        suffix = re.sub(r"[^0-9A-Za-z_]", "_", f"{cls}_{method}")
        name = proc_name(cls, method)
        locals_ = self.proc_locals.setdefault(name, set())

        def rename(var: str) -> str:
            renamed = f"{var}__{suffix}"
            if renamed not in self.variables:
                self.variables.add(renamed)
                self.var_origin[renamed] = (cls, method, var)
            locals_.add(renamed)
            return renamed

        return rename

    def _is_app(self, cls: str) -> bool:
        return not self.front.classes[cls].is_library

    def _prescan(self, cls: str, method: MethodDef) -> None:
        """Rename every variable the method mentions (fills
        ``proc_locals`` before any havoc sequence is built)."""
        from repro.frontend.program import walk_statements

        rename = self._renamer(cls, method.name)
        rename("this")
        for param in method.params:
            rename(param)
        for stmt in walk_statements(method.body):
            for attr in ("lhs", "rhs", "base", "var"):
                value = getattr(stmt, attr, None)
                if isinstance(value, str):
                    rename(value)
            for arg in getattr(stmt, "args", ()):
                rename(arg)

    def _lower_method(self, cls: str, method: MethodDef) -> Program:
        rename = self._renamer(cls, method.name)
        # Touch this and the parameters so callers can bind them.
        rename("this")
        for param in method.params:
            rename(param)
        return self._lower_body(cls, method, method.body, rename)

    def _lower_body(self, cls, method, body, rename) -> Program:
        return seq(
            *(self._lower_stmt(cls, method, stmt, rename) for stmt in body)
        )

    def _lower_stmt(self, cls, method, stmt: Stmt, rename) -> Program:
        caller = proc_name(cls, method.name)
        if isinstance(stmt, SNew):
            return seq(New(rename(stmt.lhs), stmt.site))
        if isinstance(stmt, SAssign):
            return seq(Assign(rename(stmt.lhs), rename(stmt.rhs)))
        if isinstance(stmt, SAssignNull):
            return seq(AssignNull(rename(stmt.lhs)))
        if isinstance(stmt, SLoadGlobal):
            self.globals.add(stmt.glob)
            return seq(LoadGlobal(rename(stmt.lhs), stmt.glob))
        if isinstance(stmt, SStoreGlobal):
            self.globals.add(stmt.glob)
            return seq(StoreGlobal(stmt.glob, rename(stmt.rhs)))
        if isinstance(stmt, SLoadField):
            prelude, epilogue = self._access_wrap(cls, method, stmt, rename)
            return seq(
                *prelude,
                LoadField(rename(stmt.lhs), rename(stmt.base), stmt.fld),
                *epilogue,
            )
        if isinstance(stmt, SStoreField):
            prelude, epilogue = self._access_wrap(cls, method, stmt, rename)
            return seq(
                *prelude,
                StoreField(rename(stmt.base), stmt.fld, rename(stmt.rhs)),
                *epilogue,
            )
        if isinstance(stmt, SApiCall):
            return seq(
                *self._event_prelude(cls, method, stmt, stmt.base, stmt.method, rename)
            )
        if isinstance(stmt, SCall):
            return self._lower_call(cls, method, stmt, rename)
        if isinstance(stmt, SThreadStart):
            return self._lower_thread_start(cls, method, stmt, rename)
        if isinstance(stmt, SIf):
            return choice(
                self._lower_body(cls, method, stmt.then, rename),
                self._lower_body(cls, method, stmt.els, rename),
            )
        if isinstance(stmt, SWhile):
            return Star(self._lower_body(cls, method, stmt.body, rename))
        if isinstance(stmt, SReturn):
            return Skip()  # callers read the renamed return variable
        raise TypeError(f"unknown statement {stmt!r}")

    def _event_prelude(self, cls, method, stmt, base, method_name, rename):
        commands = [Observe(stmt.pc), Invoke(rename(base), method_name, stmt.pc)]
        if self._is_app(cls):
            self.call_points.setdefault(
                stmt.pc, (cls, method.name, base, method_name)
            )
        return commands

    def _access_wrap(self, cls, method, stmt, rename):
        if not self._is_app(cls):
            return [], []
        qvar = query_var_for(stmt.pc)
        self.query_vars.add(qvar)
        self.access_points.setdefault(
            stmt.pc, (cls, method.name, stmt.base, qvar)
        )
        return (
            [Assign(qvar, rename(stmt.base)), Observe(stmt.pc)],
            [AssignNull(qvar)],
        )

    def _return_var_of(self, target_cls: str, target_name: str) -> Optional[str]:
        callee = self.front.method(target_cls, target_name)
        if callee.body and isinstance(callee.body[-1], SReturn):
            return callee.body[-1].var
        return None

    def _lower_call(self, cls, method, stmt: SCall, rename) -> Program:
        caller = proc_name(cls, method.name)
        parts: List[Program] = [
            seq(*self._event_prelude(cls, method, stmt, stmt.base, stmt.method, rename))
        ]
        targets = sorted(self.cg.call_targets.get(stmt.pc, frozenset()))
        lhs_slot = rename(stmt.lhs) if stmt.lhs is not None else None
        if not targets:
            if lhs_slot is not None:
                parts.append(seq(AssignNull(lhs_slot)))
            return seq(*parts)
        havoc = self._may_reenter(caller, stmt.pc)
        receiver = rename(stmt.base)
        args = tuple(rename(a) for a in stmt.args)
        branches = []
        for target_cls, target_name in targets:
            callee_rename = self._renamer(target_cls, target_name)
            binding: List[Program] = [
                seq(Assign(callee_rename("this"), receiver))
            ]
            callee = self.front.method(target_cls, target_name)
            for param, arg in zip(callee.params, args):
                binding.append(seq(Assign(callee_rename(param), arg)))
            binding.append(seq(CallProc(proc_name(target_cls, target_name))))
            if havoc:
                binding.append(self._havoc_frame(caller, keep=lhs_slot))
            if lhs_slot is not None:
                ret = self._return_var_of(target_cls, target_name)
                if ret is None:
                    binding.append(seq(AssignNull(lhs_slot)))
                else:
                    binding.append(seq(Assign(lhs_slot, callee_rename(ret))))
            branches.append(seq(*binding))
        parts.append(choice(*branches))
        return seq(*parts)

    def _lower_thread_start(self, cls, method, stmt, rename) -> Program:
        caller = proc_name(cls, method.name)
        parts: List[Program] = [seq(ThreadStart(rename(stmt.var)))]
        targets = sorted(self.cg.call_targets.get(stmt.pc, frozenset()))
        havoc = self._may_reenter(caller, stmt.pc)
        receiver = rename(stmt.var)
        branches = []
        for target_cls, target_name in targets:
            callee_rename = self._renamer(target_cls, target_name)
            body: List[Program] = [
                seq(Assign(callee_rename("this"), receiver)),
                seq(CallProc(proc_name(target_cls, target_name))),
            ]
            if havoc:
                body.append(self._havoc_frame(caller, keep=None))
            branches.append(seq(*body))
        if branches:
            parts.append(choice(*branches))
        return seq(*parts)

    def _havoc_frame(self, caller: str, keep: Optional[str]) -> Program:
        """Conservatively forget the caller's frame after a call that
        may have re-entered it (recursion clobbers shared locals)."""
        self.globals.add(HAVOC_GLOBAL)
        return seq(
            *(
                LoadGlobal(local, HAVOC_GLOBAL)
                for local in sorted(self.proc_locals.get(caller, ()))
                if local != keep
            )
        )


def lower_procedures(
    front: FrontProgram, callgraph: Optional[CallGraph] = None
) -> ProcResult:
    """Lower a finalized frontend program to a procedure graph."""
    front.finalize()
    if callgraph is None:
        callgraph = build_callgraph(front)
    return _Lowerer(front, callgraph).run()
