"""Program statistics — the data behind Table 1.

The paper reports, per benchmark: classes, methods, bytecode size and
KLOC (each app/total), plus ``log2`` of the abstraction-family size for
both client analyses (pointer variables for type-state, allocation
sites for thread-escape, counted over reachable methods).  Bytecode/
KLOC have no direct analogue for our IR, so we report honest proxies:
IR statement counts and inlined-command counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend.callgraph import CallGraph, build_callgraph
from repro.frontend.inline import InlineResult, inline_program
from repro.frontend.program import FrontProgram, walk_statements


@dataclass(frozen=True)
class ProgramMetrics:
    """One benchmark's row of Table 1."""

    name: str
    app_classes: int
    total_classes: int
    app_methods: int
    total_methods: int
    app_statements: int
    total_statements: int
    reachable_methods: int
    inlined_commands: int
    typestate_log2_abstractions: int
    escape_log2_abstractions: int


def compute_metrics(
    name: str,
    program: FrontProgram,
    callgraph: Optional[CallGraph] = None,
    inlined: Optional[InlineResult] = None,
) -> ProgramMetrics:
    """Compute the Table 1 statistics for one program."""
    program.finalize()
    if callgraph is None:
        callgraph = build_callgraph(program)
    if inlined is None:
        inlined = inline_program(program, callgraph)
    app_classes = total_classes = 0
    app_methods = total_methods = 0
    app_statements = total_statements = 0
    for cls_name in sorted(program.classes):
        cls = program.classes[cls_name]
        total_classes += 1
        if not cls.is_library:
            app_classes += 1
        for method in cls.methods.values():
            total_methods += 1
            statements = sum(1 for _ in walk_statements(method.body))
            total_statements += statements
            if not cls.is_library:
                app_methods += 1
                app_statements += statements
    # Abstraction-family sizes count over *reachable* code, as in the
    # paper: pointer variables for type-state, allocation sites for
    # thread-escape.  After inlining these are exactly the renamed
    # variables and the sites the call graph can reach.
    reachable_sites = {
        site
        for site, cls in program.site_class.items()
        if _site_method_reachable(program, callgraph, site)
    }
    return ProgramMetrics(
        name=name,
        app_classes=app_classes,
        total_classes=total_classes,
        app_methods=app_methods,
        total_methods=total_methods,
        app_statements=app_statements,
        total_statements=total_statements,
        reachable_methods=len(callgraph.reachable),
        inlined_commands=inlined.command_count,
        typestate_log2_abstractions=len(inlined.variables),
        escape_log2_abstractions=len(reachable_sites),
    )


def _site_method_reachable(
    program: FrontProgram, callgraph: CallGraph, site: str
) -> bool:
    pc = program.site_pc[site]
    prefix = pc.split("/", 1)[0]
    cls, method = prefix.split(".", 1)
    return (cls, method) in callgraph.reachable
