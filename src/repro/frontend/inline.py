"""Context-sensitive inlining: mini-Java IR -> analysis language.

The paper's client analyses are fully flow- *and context-*sensitive.
We obtain context sensitivity the classic way for non-recursive call
graphs: every call site gets its own clone of the callee body, with
locals renamed per clone (``x`` in clone ``c7`` becomes ``x_c7``).
Parameter passing and returns become explicit assignments, so the
must-alias and escape information flows through calls precisely.

Query plumbing inserted during lowering:

* every call site (virtual or API) emits ``Observe(pc)`` followed by an
  ``Invoke`` marker carrying the original pc — the type-state client
  generates one query per such pc and reads the abstract state at the
  ``Observe``;
* every instance-field access emits ``q = base`` into a dedicated
  *query variable* shared by all clones of the pc, then ``Observe(pc)``
  — the thread-escape client queries the locality of ``q``, which by
  construction equals the locality of the (per-clone renamed) base.

Recursive calls are cut: the call becomes ``lhs = null`` and the cut is
counted in the result, mirroring how bounded context-cloning analyses
truncate recursion.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.frontend.callgraph import CallGraph
from repro.frontend.program import (
    FrontProgram,
    MethodDef,
    SApiCall,
    SAssign,
    SAssignNull,
    SCall,
    SIf,
    SLoadField,
    SLoadGlobal,
    SNew,
    SReturn,
    SStoreField,
    SStoreGlobal,
    SThreadStart,
    SWhile,
    Stmt,
)
from repro.lang.ast import (
    Assign,
    AssignNull,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    Program,
    Skip,
    Star,
    StoreField,
    StoreGlobal,
    ThreadStart,
    choice,
    seq,
)


@dataclass
class InlineResult:
    """The lowered program plus everything clients need around it."""

    program: Program
    variables: FrozenSet[str]
    query_vars: FrozenSet[str]
    sites: FrozenSet[str]
    fields: FrozenSet[str]
    globals: FrozenSet[str]
    var_origin: Dict[str, Tuple[str, str, str]]
    call_points: Dict[str, Tuple[str, str, str, str]]
    """pc -> (class, method, receiver local, invoked method) for every
    call site in *application* code (type-state query candidates)."""
    access_points: Dict[str, Tuple[str, str, str, str]]
    """pc -> (class, method, base local, query variable) for every
    instance-field access in application code (escape query candidates)."""
    recursion_cuts: int
    command_count: int


def query_var_for(pc: str) -> str:
    """The canonical query variable name for a field-access pc."""
    return "q_" + re.sub(r"[^0-9A-Za-z_]", "_", pc)


class _Inliner:
    def __init__(self, program: FrontProgram, callgraph: CallGraph):
        self.front = program
        self.cg = callgraph
        self.ctx_counter = 0
        self.variables: Set[str] = set()
        self.query_vars: Set[str] = set()
        self.globals: Set[str] = set()
        self.var_origin: Dict[str, Tuple[str, str, str]] = {}
        self.call_points: Dict[str, Tuple[str, str, str, str]] = {}
        self.access_points: Dict[str, Tuple[str, str, str, str]] = {}
        self.recursion_cuts = 0

    def run(self) -> InlineResult:
        entry = self.front.entry()
        body = self._inline_method(
            self.front.entry_class, entry, stack=(), bindings=None
        )
        fields = sorted(
            {f for cls in self.front.classes.values() for f in cls.fields}
        )
        from repro.lang.ast import atoms_of

        count = sum(1 for _ in atoms_of(body))
        return InlineResult(
            program=body,
            variables=frozenset(self.variables),
            query_vars=frozenset(self.query_vars),
            sites=frozenset(self.front.site_class),
            fields=frozenset(fields),
            globals=frozenset(self.globals),
            var_origin=dict(self.var_origin),
            call_points=dict(self.call_points),
            access_points=dict(self.access_points),
            recursion_cuts=self.recursion_cuts,
            command_count=count,
        )

    # -- naming --------------------------------------------------------------

    def _fresh_ctx(self) -> str:
        ctx = f"c{self.ctx_counter}"
        self.ctx_counter += 1
        return ctx

    def _renamer(self, cls: str, method: str, ctx: str, clone_vars: Set[str]):
        def rename(name: str) -> str:
            renamed = f"{name}_{ctx}"
            if renamed not in self.variables:
                self.variables.add(renamed)
                self.var_origin[renamed] = (cls, method, name)
            clone_vars.add(renamed)
            return renamed

        return rename

    def _is_app(self, cls: str) -> bool:
        return not self.front.classes[cls].is_library

    # -- lowering ------------------------------------------------------------

    def _inline_method(
        self,
        cls: str,
        method: MethodDef,
        stack: Tuple[Tuple[str, str], ...],
        bindings,
    ) -> Program:
        """Lower one method clone; ``bindings`` is the prelude program
        binding ``this``/params (``None`` for the entry method)."""
        ctx = self._fresh_ctx()
        clone_vars: Set[str] = set()
        rename = self._renamer(cls, method.name, ctx, clone_vars)
        parts: List[Program] = []
        if bindings is not None:
            receiver, args, _lhs_slot = bindings
            parts.append(seq(Assign(rename("this"), receiver)))
            for param, arg in zip(method.params, args):
                parts.append(seq(Assign(rename(param), arg)))
        parts.append(
            self._lower_body(cls, method, method.body, rename, stack)
        )
        if bindings is not None and bindings[2] is not None:
            lhs_slot = bindings[2]
            ret = self._return_var(method)
            if ret is None:
                parts.append(seq(AssignNull(lhs_slot)))
            else:
                parts.append(seq(Assign(lhs_slot, rename(ret))))
        if bindings is not None:
            # Kill the clone's locals on exit: they are dead beyond this
            # point, and nulling them keeps the disjunctive state space
            # of the forward analyses from multiplying across dead
            # bindings (the classic liveness trick).
            parts.append(seq(*(AssignNull(v) for v in sorted(clone_vars))))
        return seq(*parts)

    @staticmethod
    def _return_var(method: MethodDef) -> Optional[str]:
        if method.body and isinstance(method.body[-1], SReturn):
            return method.body[-1].var
        return None

    def _lower_body(self, cls, method, body, rename, stack) -> Program:
        parts = [self._lower_stmt(cls, method, stmt, rename, stack) for stmt in body]
        return seq(*parts)

    def _lower_stmt(self, cls, method, stmt: Stmt, rename, stack) -> Program:
        if isinstance(stmt, SNew):
            return seq(New(rename(stmt.lhs), stmt.site))
        if isinstance(stmt, SAssign):
            return seq(Assign(rename(stmt.lhs), rename(stmt.rhs)))
        if isinstance(stmt, SAssignNull):
            return seq(AssignNull(rename(stmt.lhs)))
        if isinstance(stmt, SLoadGlobal):
            self.globals.add(stmt.glob)
            return seq(LoadGlobal(rename(stmt.lhs), stmt.glob))
        if isinstance(stmt, SStoreGlobal):
            self.globals.add(stmt.glob)
            return seq(StoreGlobal(stmt.glob, rename(stmt.rhs)))
        if isinstance(stmt, SLoadField):
            prelude, epilogue = self._access_wrap(cls, method, stmt, stmt.base, rename)
            return seq(
                *prelude,
                LoadField(rename(stmt.lhs), rename(stmt.base), stmt.fld),
                *epilogue,
            )
        if isinstance(stmt, SStoreField):
            prelude, epilogue = self._access_wrap(cls, method, stmt, stmt.base, rename)
            return seq(
                *prelude,
                StoreField(rename(stmt.base), stmt.fld, rename(stmt.rhs)),
                *epilogue,
            )
        if isinstance(stmt, SApiCall):
            return seq(*self._event_prelude(cls, method, stmt, stmt.base, stmt.method, rename))
        if isinstance(stmt, SCall):
            return self._lower_call(cls, method, stmt, rename, stack)
        if isinstance(stmt, SThreadStart):
            return self._lower_thread_start(cls, method, stmt, rename, stack)
        if isinstance(stmt, SIf):
            return choice(
                self._lower_body(cls, method, stmt.then, rename, stack),
                self._lower_body(cls, method, stmt.els, rename, stack),
            )
        if isinstance(stmt, SWhile):
            return Star(self._lower_body(cls, method, stmt.body, rename, stack))
        if isinstance(stmt, SReturn):
            return Skip()  # handled at the call site
        raise TypeError(f"unknown statement {stmt!r}")

    def _event_prelude(self, cls, method, stmt, base, method_name, rename):
        """Observe + Invoke marker for a call-site query point."""
        commands = [Observe(stmt.pc), Invoke(rename(base), method_name, stmt.pc)]
        if self._is_app(cls):
            self.call_points.setdefault(
                stmt.pc, (cls, method.name, base, method_name)
            )
        return commands

    def _access_wrap(self, cls, method, stmt, base, rename):
        """Query-variable copy + Observe before a field access, and the
        query variable's kill after it (it is dead past the access)."""
        if not self._is_app(cls):
            return [], []
        qvar = query_var_for(stmt.pc)
        self.query_vars.add(qvar)
        self.access_points.setdefault(
            stmt.pc, (cls, method.name, base, qvar)
        )
        return [Assign(qvar, rename(base)), Observe(stmt.pc)], [AssignNull(qvar)]

    def _lower_call(self, cls, method, stmt: SCall, rename, stack) -> Program:
        parts: List[Program] = [
            seq(*self._event_prelude(cls, method, stmt, stmt.base, stmt.method, rename))
        ]
        targets = sorted(self.cg.call_targets.get(stmt.pc, frozenset()))
        lhs_slot = rename(stmt.lhs) if stmt.lhs is not None else None
        live_targets = []
        for target in targets:
            if target in stack or (cls, method.name) == target:
                self.recursion_cuts += 1
                continue
            live_targets.append(target)
        if not live_targets:
            if lhs_slot is not None:
                parts.append(seq(AssignNull(lhs_slot)))
            return seq(*parts)
        branches = []
        receiver = rename(stmt.base)
        args = tuple(rename(a) for a in stmt.args)
        for target_cls, target_name in live_targets:
            callee = self.front.method(target_cls, target_name)
            branches.append(
                self._inline_method(
                    target_cls,
                    callee,
                    stack + ((cls, method.name),),
                    (receiver, args, lhs_slot),
                )
            )
        parts.append(choice(*branches))
        return seq(*parts)

    def _lower_thread_start(self, cls, method, stmt, rename, stack) -> Program:
        parts: List[Program] = [seq(ThreadStart(rename(stmt.var)))]
        targets = sorted(self.cg.call_targets.get(stmt.pc, frozenset()))
        receiver = rename(stmt.var)
        branches = []
        for target in targets:
            if target in stack or (cls, method.name) == target:
                self.recursion_cuts += 1
                continue
            target_cls, target_name = target
            callee = self.front.method(target_cls, target_name)
            branches.append(
                self._inline_method(
                    target_cls,
                    callee,
                    stack + ((cls, method.name),),
                    (receiver, (), None),
                )
            )
        if branches:
            # The thread body runs concurrently; analysing it after the
            # start is a sound linearisation for our disjunctive clients.
            parts.append(choice(*branches))
        return seq(*parts)


def inline_program(program: FrontProgram, callgraph: Optional[CallGraph] = None) -> InlineResult:
    """Inline a finalized frontend program into the analysis language."""
    from repro.frontend.callgraph import build_callgraph

    program.finalize()
    if callgraph is None:
        callgraph = build_callgraph(program)
    return _Inliner(program, callgraph).run()
