"""The mini-Java intermediate representation.

A :class:`FrontProgram` is a set of classes; each class declares fields
and virtual methods; method bodies are statement lists with the usual
heap operations, virtual calls, non-deterministic branching/looping,
API calls (type-state events on library objects whose bodies are
opaque), and thread starts.

``finalize`` assigns stable identifiers: every allocation gets a site
id ``h<n>``, every statement a program-counter label
``<Class>.<method>/<n>`` — the unit at which queries are generated,
shared by all inlined copies of the statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class FrontendError(ValueError):
    """Raised on malformed frontend programs."""


@dataclass
class Stmt:
    """Base class of IR statements; ``pc`` is set by ``finalize``."""

    def __post_init__(self) -> None:
        self.pc: str = ""


@dataclass
class SNew(Stmt):
    """``lhs = new cls`` — ``site`` is assigned by ``finalize``."""

    lhs: str
    cls: str
    site: str = ""


@dataclass
class SAssign(Stmt):
    lhs: str
    rhs: str


@dataclass
class SAssignNull(Stmt):
    lhs: str


@dataclass
class SLoadField(Stmt):
    lhs: str
    base: str
    fld: str


@dataclass
class SStoreField(Stmt):
    base: str
    fld: str
    rhs: str


@dataclass
class SLoadGlobal(Stmt):
    lhs: str
    glob: str


@dataclass
class SStoreGlobal(Stmt):
    glob: str
    rhs: str


@dataclass
class SCall(Stmt):
    """``lhs = base.method(args)`` — virtual, resolved by 0-CFA."""

    lhs: Optional[str]
    base: str
    method: str
    args: Tuple[str, ...] = ()


@dataclass
class SApiCall(Stmt):
    """``base.method()`` on a library object: a type-state event with
    no body to inline."""

    base: str
    method: str


@dataclass
class SThreadStart(Stmt):
    """``start(var)`` — publishes ``var`` and runs its ``run`` method
    on a new thread."""

    var: str


@dataclass
class SIf(Stmt):
    """Non-deterministic branch (conditions are abstracted away)."""

    then: List[Stmt]
    els: List[Stmt] = field(default_factory=list)


@dataclass
class SWhile(Stmt):
    """Non-deterministic loop."""

    body: List[Stmt]


@dataclass
class SReturn(Stmt):
    """Return a variable (or null); only legal as a method's final
    top-level statement."""

    var: Optional[str] = None


@dataclass
class MethodDef:
    """A method; ``this`` is an implicit first parameter of virtual
    methods and is available in the body."""

    name: str
    params: Tuple[str, ...] = ()
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ClassDef:
    name: str
    fields: Tuple[str, ...] = ()
    methods: Dict[str, MethodDef] = field(default_factory=dict)
    is_library: bool = False


@dataclass
class FrontProgram:
    """A whole program with an entry method (a static main)."""

    classes: Dict[str, ClassDef] = field(default_factory=dict)
    entry_class: str = "Main"
    entry_method: str = "main"
    site_class: Dict[str, str] = field(default_factory=dict)
    site_pc: Dict[str, str] = field(default_factory=dict)
    finalized: bool = False

    def add_class(self, cls: ClassDef) -> ClassDef:
        if cls.name in self.classes:
            raise FrontendError(f"duplicate class {cls.name!r}")
        self.classes[cls.name] = cls
        return cls

    def entry(self) -> MethodDef:
        return self.method(self.entry_class, self.entry_method)

    def method(self, cls: str, name: str) -> MethodDef:
        try:
            return self.classes[cls].methods[name]
        except KeyError:
            raise FrontendError(f"no such method {cls}.{name}") from None

    def methods(self) -> Iterator[Tuple[str, MethodDef]]:
        """Yield ``(class_name, method)`` pairs for every method."""
        for cls_name in sorted(self.classes):
            for meth_name in sorted(self.classes[cls_name].methods):
                yield cls_name, self.classes[cls_name].methods[meth_name]

    def finalize(self) -> "FrontProgram":
        """Assign site ids and pc labels; validate the program."""
        if self.finalized:
            return self
        if self.entry_class not in self.classes:
            raise FrontendError(f"entry class {self.entry_class!r} missing")
        self.entry()  # validates the entry method exists
        site_counter = 0
        for cls_name, method in self.methods():
            counter = [0]
            for stmt, depth in _walk(method.body):
                stmt.pc = f"{cls_name}.{method.name}/{counter[0]}"
                counter[0] += 1
                if isinstance(stmt, SNew):
                    if stmt.cls not in self.classes:
                        raise FrontendError(
                            f"allocation of unknown class {stmt.cls!r} at {stmt.pc}"
                        )
                    if not stmt.site:
                        stmt.site = f"h{site_counter}"
                        site_counter += 1
                    self.site_class[stmt.site] = stmt.cls
                    self.site_pc[stmt.site] = stmt.pc
                if isinstance(stmt, SReturn) and depth > 0:
                    raise FrontendError(
                        f"return inside a branch/loop at {stmt.pc} is unsupported"
                    )
            for stmt in method.body[:-1]:
                if isinstance(stmt, SReturn):
                    raise FrontendError(
                        f"return must be the final statement ({cls_name}.{method.name})"
                    )
        self.finalized = True
        return self

    def app_classes(self) -> List[str]:
        return [name for name, cls in sorted(self.classes.items()) if not cls.is_library]

    def app_sites(self) -> List[str]:
        """Allocation sites occurring in application (non-library) code."""
        return sorted(
            site
            for site, pc in self.site_pc.items()
            if not self.classes[_pc_class(pc)].is_library
        )


def _pc_class(pc: str) -> str:
    return pc.split(".", 1)[0]


def _walk(body: Sequence[Stmt], depth: int = 0) -> Iterator[Tuple[Stmt, int]]:
    """Yield every statement with its nesting depth, in syntax order."""
    for stmt in body:
        yield stmt, depth
        if isinstance(stmt, SIf):
            yield from _walk(stmt.then, depth + 1)
            yield from _walk(stmt.els, depth + 1)
        elif isinstance(stmt, SWhile):
            yield from _walk(stmt.body, depth + 1)


def walk_statements(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Public flat iterator over a statement tree."""
    for stmt, _depth in _walk(body):
        yield stmt
