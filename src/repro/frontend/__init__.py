"""Mini-Java front end.

The paper's implementation analyses JVM bytecode through Chord; this
front end plays that role for the reproduction: an object-oriented IR
(classes, fields, virtual methods, allocation sites, globals, thread
starts), a 0-CFA call-graph/points-to analysis, and a
context-sensitive inliner lowering whole programs to the analysis
language of :mod:`repro.lang` — which makes the two client dataflow
analyses fully context-sensitive, as in the paper.
"""

from repro.frontend.program import (
    ClassDef,
    FrontendError,
    FrontProgram,
    MethodDef,
    SApiCall,
    SAssign,
    SAssignNull,
    SCall,
    SIf,
    SLoadField,
    SLoadGlobal,
    SNew,
    SReturn,
    SStoreField,
    SStoreGlobal,
    SThreadStart,
    SWhile,
)
from repro.frontend.callgraph import CallGraph, build_callgraph
from repro.frontend.mayalias import MayAliasOracle
from repro.frontend.inline import InlineResult, inline_program
from repro.frontend.procedures import ProcResult, lower_procedures, proc_name
from repro.frontend.metrics import ProgramMetrics, compute_metrics

__all__ = [
    "CallGraph",
    "ClassDef",
    "FrontProgram",
    "FrontendError",
    "InlineResult",
    "MayAliasOracle",
    "MethodDef",
    "ProcResult",
    "ProgramMetrics",
    "SApiCall",
    "SAssign",
    "SAssignNull",
    "SCall",
    "SIf",
    "SLoadField",
    "SLoadGlobal",
    "SNew",
    "SReturn",
    "SStoreField",
    "SStoreGlobal",
    "SThreadStart",
    "SWhile",
    "build_callgraph",
    "compute_metrics",
    "inline_program",
    "lower_procedures",
    "proc_name",
]
