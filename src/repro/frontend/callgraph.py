"""0-CFA call-graph and points-to analysis.

The paper's implementation uses Chord's 0-CFA call graph both to
resolve virtual calls and as the may-alias oracle of the type-state
client (Section 6, condition (i)).  This module reproduces that role:
a context-insensitive, flow-insensitive, field-based (one summary per
field name) inclusion analysis computed to a fixpoint, growing the set
of reachable methods from the entry as call targets are discovered.

Points-to keys:

* ``("var", cls, method, name)`` — a local (or parameter/``this``);
* ``("glob", name)`` — a global variable;
* ``("field", name)`` — the summary of field ``name``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.frontend.program import (
    FrontProgram,
    MethodDef,
    SApiCall,
    SAssign,
    SAssignNull,
    SCall,
    SLoadField,
    SLoadGlobal,
    SNew,
    SReturn,
    SStoreField,
    SStoreGlobal,
    SThreadStart,
    walk_statements,
)

VarKey = Tuple[str, ...]


@dataclass
class CallGraph:
    """Result of the 0-CFA analysis."""

    program: FrontProgram
    points_to: Dict[VarKey, FrozenSet[str]]
    reachable: FrozenSet[Tuple[str, str]]
    call_targets: Dict[str, FrozenSet[Tuple[str, str]]]
    """Per call-site pc: the resolved ``(class, method)`` targets."""

    def pts_var(self, cls: str, method: str, name: str) -> FrozenSet[str]:
        return self.points_to.get(("var", cls, method, name), frozenset())

    def reachable_methods(self) -> List[Tuple[str, str]]:
        return sorted(self.reachable)


class _Solver:
    def __init__(self, program: FrontProgram):
        self.program = program
        self.pts: Dict[VarKey, Set[str]] = {}
        self.reachable: Set[Tuple[str, str]] = set()
        self.call_targets: Dict[str, Set[Tuple[str, str]]] = {}
        self.changed = True

    def get(self, key: VarKey) -> Set[str]:
        return self.pts.setdefault(key, set())

    def add(self, key: VarKey, sites: Set[str]) -> None:
        bucket = self.get(key)
        before = len(bucket)
        bucket |= sites
        if len(bucket) != before:
            self.changed = True

    def reach(self, cls: str, method: str) -> None:
        if (cls, method) not in self.reachable:
            self.reachable.add((cls, method))
            self.changed = True

    def solve(self) -> CallGraph:
        program = self.program
        self.reach(program.entry_class, program.entry_method)
        while self.changed:
            self.changed = False
            for cls, method in sorted(self.reachable):
                self._process(cls, program.method(cls, method))
        return CallGraph(
            program=program,
            points_to={k: frozenset(v) for k, v in self.pts.items()},
            reachable=frozenset(self.reachable),
            call_targets={
                pc: frozenset(targets) for pc, targets in self.call_targets.items()
            },
        )

    def _process(self, cls: str, method: MethodDef) -> None:
        var = lambda name: ("var", cls, method.name, name)
        for stmt in walk_statements(method.body):
            if isinstance(stmt, SNew):
                self.add(var(stmt.lhs), {stmt.site})
            elif isinstance(stmt, SAssign):
                self.add(var(stmt.lhs), self.get(var(stmt.rhs)))
            elif isinstance(stmt, SAssignNull):
                pass
            elif isinstance(stmt, SLoadField):
                self.add(var(stmt.lhs), self.get(("field", stmt.fld)))
            elif isinstance(stmt, SStoreField):
                self.add(("field", stmt.fld), self.get(var(stmt.rhs)))
            elif isinstance(stmt, SLoadGlobal):
                self.add(var(stmt.lhs), self.get(("glob", stmt.glob)))
            elif isinstance(stmt, SStoreGlobal):
                self.add(("glob", stmt.glob), self.get(var(stmt.rhs)))
            elif isinstance(stmt, SCall):
                self._process_call(cls, method, stmt)
            elif isinstance(stmt, SThreadStart):
                self._process_thread_start(cls, method, stmt)
            elif isinstance(stmt, (SApiCall, SReturn)):
                pass

    def _targets_of(self, base_sites: Set[str], method_name: str):
        for site in sorted(base_sites):
            target_cls = self.program.site_class[site]
            if method_name in self.program.classes[target_cls].methods:
                yield target_cls, method_name

    def _process_call(self, cls: str, method: MethodDef, stmt: SCall) -> None:
        base_sites = self.get(("var", cls, method.name, stmt.base))
        targets = self.call_targets.setdefault(stmt.pc, set())
        for target in self._targets_of(base_sites, stmt.method):
            if target not in targets:
                targets.add(target)
                self.changed = True
            self.reach(*target)
            target_cls, target_name = target
            callee = self.program.method(target_cls, target_name)
            self.add(
                ("var", target_cls, target_name, "this"),
                {
                    site
                    for site in base_sites
                    if self.program.site_class[site] == target_cls
                },
            )
            for param, arg in zip(callee.params, stmt.args):
                self.add(
                    ("var", target_cls, target_name, param),
                    self.get(("var", cls, method.name, arg)),
                )
            if stmt.lhs is not None:
                ret = self._return_var(callee)
                if ret is not None:
                    self.add(
                        ("var", cls, method.name, stmt.lhs),
                        self.get(("var", target_cls, target_name, ret)),
                    )

    def _process_thread_start(self, cls: str, method: MethodDef, stmt) -> None:
        base_sites = self.get(("var", cls, method.name, stmt.var))
        targets = self.call_targets.setdefault(stmt.pc, set())
        for target in self._targets_of(base_sites, "run"):
            if target not in targets:
                targets.add(target)
                self.changed = True
            self.reach(*target)
            target_cls, _name = target
            self.add(
                ("var", target_cls, "run", "this"),
                {
                    site
                    for site in base_sites
                    if self.program.site_class[site] == target_cls
                },
            )

    @staticmethod
    def _return_var(callee: MethodDef):
        if callee.body and isinstance(callee.body[-1], SReturn):
            return callee.body[-1].var
        return None


def build_callgraph(program: FrontProgram) -> CallGraph:
    """Run 0-CFA on a finalized program."""
    program.finalize()
    return _Solver(program).solve()
