"""May-alias oracle derived from the 0-CFA points-to results.

The type-state analysis consults this oracle to decide whether a call
``v.m()`` is an event for the tracked allocation site (condition (i) of
Section 6).  After inlining, variables are renamed per context; the
oracle resolves renamed names back to their 0-CFA points-to sets via
the inliner's origin map.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.frontend.callgraph import CallGraph


class MayAliasOracle:
    """``may_point(var, site)`` for inlined (renamed) variables."""

    def __init__(
        self,
        callgraph: CallGraph,
        var_origin: Dict[str, Tuple[str, str, str]],
    ):
        self._callgraph = callgraph
        self._var_origin = var_origin

    def points_to(self, renamed_var: str) -> FrozenSet[str]:
        origin = self._var_origin.get(renamed_var)
        if origin is None:
            return frozenset()
        cls, method, name = origin
        return self._callgraph.pts_var(cls, method, name)

    def may_point(self, renamed_var: str, site: str) -> bool:
        return site in self.points_to(renamed_var)

    def for_site(self, site: str):
        """A ``var -> bool`` predicate specialised to one site, in the
        shape the type-state analysis expects."""
        return lambda var: self.may_point(var, site)
