"""TRACER — the iterative forward-backward analysis (Algorithm 1).

The single-query algorithm is the paper's Algorithm 1:

1. pick a minimum abstraction ``p`` from the viable set (MinCostSAT
   over the accumulated clauses; initially everything is viable and
   the bottom abstraction is picked);
2. run the forward analysis instantiated with ``p``; if the query
   holds, return ``p`` — it is a *minimum* abstraction proving the
   query;
3. otherwise take an abstract counterexample trace, run the backward
   meta-analysis to get a sufficient condition for failure, and remove
   the abstractions it denotes from the viable set;
4. if the viable set becomes empty, the query is *impossible* — no
   abstraction in the family proves it.

The multi-query driver implements the grouping optimisation of
Section 6: queries whose sets of unviable abstractions coincide are
kept in one group and share forward runs; a group splits when the
meta-analysis derives different failure clauses for its members.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.core.formula import Formula, FormulaExplosion
from repro.core.meta import BackwardMetaAnalysis, backward_trace
from repro.core.parametric import ParametricAnalysis
from repro.core.stats import QueryRecord, QueryStatus
from repro.core.viability import ParamTheory, ViabilityStore
from repro.lang.ast import Trace

Query = Hashable


class TracerClient:
    """Everything TRACER needs to know about a client analysis.

    A client binds a program, a parametric forward analysis, a backward
    meta-analysis, and a query vocabulary together.
    """

    analysis: ParametricAnalysis
    meta: BackwardMetaAnalysis

    def fail_condition(self, query: Query) -> Formula:
        """``not(q)`` — the condition under which ``query`` fails."""
        raise NotImplementedError

    def counterexamples(
        self, queries: Sequence[Query], p: FrozenSet[str]
    ) -> Dict[Query, Optional[Trace]]:
        """Run the ``p``-instantiated forward analysis once and report,
        for every query, ``None`` (proved) or a counterexample trace —
        a sequence of atomic commands from program entry to the query
        point ending in a state satisfying ``fail_condition``."""
        raise NotImplementedError


@dataclass(frozen=True)
class TracerConfig:
    """Knobs of the search.

    ``k`` is the beam width of the meta-analysis under-approximation
    (``None`` disables the beam entirely); the paper uses ``k = 5`` for
    the evaluation and studies ``k`` in Figure 13.  ``max_iterations``
    and ``max_seconds`` bound the per-query effort; exceeding either
    marks the query ``EXHAUSTED`` (the paper's unresolved bucket).
    """

    k: Optional[int] = 5
    max_iterations: int = 60
    max_seconds: Optional[float] = None
    max_cubes: Optional[int] = 200_000


class ProgressError(RuntimeError):
    """The meta-analysis failed to eliminate the current abstraction —
    a soundness bug (Theorem 3.1 guarantees elimination)."""


@dataclass
class _Group:
    """One group of queries sharing an identical unviable set."""

    store: ViabilityStore
    queries: List[Query]


class Tracer:
    """Single-query and grouped multi-query TRACER driver."""

    def __init__(self, client: TracerClient, config: TracerConfig = TracerConfig()):
        self.client = client
        self.config = config

    def solve(self, query: Query) -> QueryRecord:
        """Resolve a single query (Algorithm 1)."""
        return self.solve_all([query])[query]

    def solve_all(self, queries: Sequence[Query]) -> Dict[Query, QueryRecord]:
        """Resolve many queries with the Section 6 grouping optimisation."""
        return run_query_group(self.client, queries, self.config)


def run_query_group(
    client: TracerClient,
    queries: Sequence[Query],
    config: TracerConfig = TracerConfig(),
) -> Dict[Query, QueryRecord]:
    """The grouped TRACER driver; see :class:`Tracer`."""
    theory = client.meta.theory
    if not isinstance(theory, ParamTheory):
        raise TypeError("the meta-analysis theory must be a ParamTheory")
    d_init = client.analysis.initial_state()
    records: Dict[Query, QueryRecord] = {}
    iterations: Dict[Query, int] = {q: 0 for q in queries}
    elapsed: Dict[Query, float] = {q: 0.0 for q in queries}
    forward_runs: Dict[Query, int] = {q: 0 for q in queries}
    max_disjuncts: Dict[Query, int] = {q: 0 for q in queries}
    groups: List[_Group] = [
        _Group(store=ViabilityStore(theory, d_init), queries=list(queries))
    ]

    def resolve(query: Query, status: QueryStatus, p=None) -> None:
        records[query] = QueryRecord(
            query_id=str(query),
            status=status,
            iterations=iterations[query],
            abstraction=p,
            abstraction_cost=(
                client.analysis.param_space.cost(p) if p is not None else None
            ),
            time_seconds=elapsed[query],
            max_disjuncts=max_disjuncts[query],
            forward_runs=forward_runs[query],
        )

    while groups:
        next_groups: List[_Group] = []
        for group in groups:
            started = time.perf_counter()
            p = group.store.choose_minimum()
            if p is None:
                _charge(group.queries, started, elapsed)
                for query in group.queries:
                    resolve(query, QueryStatus.IMPOSSIBLE)
                continue
            witnesses = client.counterexamples(group.queries, p)
            survivors: List[Query] = []
            for query in group.queries:
                iterations[query] += 1
                forward_runs[query] += 1
                if witnesses[query] is None:
                    resolve(query, QueryStatus.PROVEN, p)
                else:
                    survivors.append(query)
            # Backward meta-analysis per failing query; split the group
            # by the clause sets learned.
            splits: Dict[Tuple, _Group] = {}
            for query in survivors:
                trace = witnesses[query]
                try:
                    result = backward_trace(
                        client.meta,
                        client.analysis,
                        trace,
                        p,
                        d_init,
                        client.fail_condition(query),
                        k=config.k,
                        max_cubes=config.max_cubes,
                    )
                except FormulaExplosion:
                    # The meta-analysis formula outgrew the budget (the
                    # analogue of the paper's k=None memory blow-ups):
                    # give up on this query rather than on the run.
                    resolve(query, QueryStatus.EXHAUSTED)
                    continue
                max_disjuncts[query] = max(
                    max_disjuncts[query], result.max_disjuncts
                )
                probe = group.store.copy()
                added = probe.add_failure_condition(result.condition)
                if not probe.excludes(p):
                    raise ProgressError(
                        f"query {query!r}: abstraction {sorted(p)} was not "
                        "eliminated by its own counterexample"
                    )
                signature = _clause_signature(added)
                bucket = splits.get(signature)
                if bucket is None:
                    bucket = _Group(store=probe, queries=[])
                    splits[signature] = bucket
                bucket.queries.append(query)
            _charge(group.queries, started, elapsed)
            for bucket in splits.values():
                live: List[Query] = []
                for query in bucket.queries:
                    if iterations[query] >= config.max_iterations or (
                        config.max_seconds is not None
                        and elapsed[query] >= config.max_seconds
                    ):
                        resolve(query, QueryStatus.EXHAUSTED)
                    else:
                        live.append(query)
                if live:
                    bucket.queries = live
                    next_groups.append(bucket)
        groups = next_groups
    return records


def _charge(queries: Sequence[Query], started: float, elapsed: Dict) -> None:
    """Attribute a group round's wall time equally to its queries."""
    if not queries:
        return
    share = (time.perf_counter() - started) / len(queries)
    for query in queries:
        elapsed[query] += share


def _clause_signature(clauses) -> Tuple:
    return tuple(
        sorted(
            tuple(sorted(((str(v), s) for v, s in clause)))
            for clause in clauses
        )
    )
