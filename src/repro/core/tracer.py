"""TRACER — the iterative forward-backward analysis (Algorithm 1).

The single-query algorithm is the paper's Algorithm 1:

1. pick a minimum abstraction ``p`` from the viable set (MinCostSAT
   over the accumulated clauses; initially everything is viable and
   the bottom abstraction is picked);
2. run the forward analysis instantiated with ``p``; if the query
   holds, return ``p`` — it is a *minimum* abstraction proving the
   query;
3. otherwise take an abstract counterexample trace, run the backward
   meta-analysis to get a sufficient condition for failure, and remove
   the abstractions it denotes from the viable set;
4. if the viable set becomes empty, the query is *impossible* — no
   abstraction in the family proves it.

The multi-query driver implements the grouping optimisation of
Section 6: queries whose sets of unviable abstractions coincide are
kept in one group and share forward runs; a group splits when the
meta-analysis derives different failure clauses for its members.

Forward runs dominate the cost of the loop (each is a full disjunctive
collecting run over the program), and after a group splits its
descendants frequently re-select an abstraction a sibling has already
run.  :class:`ForwardRunCache` memoises forward fixpoints per
``(client, abstraction)`` so those re-selections are served from
memory; the cache is bounded (LRU) and its hits are recorded per query
in :class:`~repro.core.stats.QueryRecord`.
"""

from __future__ import annotations

import inspect
import itertools
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.formula import Formula, FormulaExplosion, evaluate
from repro.core.meta import BackwardMetaAnalysis, backward_trace
from repro.core.parametric import ParametricAnalysis
from repro.core.stats import QueryRecord, QueryStatus
from repro.core.viability import ParamTheory, ViabilityStore
from repro.lang.ast import Trace
from repro.lang.pretty import pretty_command
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.robust import budget as robust_budget
from repro.robust import faults as robust_faults
from repro.robust.budget import Budget, BudgetExceeded
from repro.robust.certify import (
    CertificateStore,
    QueryEvidence,
    annotation_digest,
    build_certificate,
)
from repro.robust.clausebus import ClauseFeedMismatch
from repro.robust.degrade import run_with_degradation
from repro.robust.journal import (
    JournalMismatch,
    SearchJournal,
    clause_from_jsonable,
    clause_to_jsonable,
    trace_to_jsonable,
)

Query = Hashable

#: Source of per-client cache tokens; see :meth:`TracerClient.cache_key`.
_client_tokens = itertools.count()


class TracerClient:
    """Everything TRACER needs to know about a client analysis.

    A client binds a program, a parametric forward analysis, a backward
    meta-analysis, and a query vocabulary together.  Concrete clients
    implement :meth:`fail_condition` and :meth:`run_forward`; the
    default :meth:`counterexamples` then works for any query type with
    a ``label`` attribute naming the ``Observe`` point it guards.
    """

    analysis: ParametricAnalysis
    meta: BackwardMetaAnalysis

    def fail_condition(self, query: Query) -> Formula:
        """``not(q)`` — the condition under which ``query`` fails."""
        raise NotImplementedError

    def run_forward(self, p: FrozenSet[str]):
        """One forward fixpoint of the ``p``-instantiated analysis,
        exposing ``states_before_observe(label)`` and ``trace_to``."""
        raise NotImplementedError

    def _kernel_codec(self):
        """The bitset :class:`~repro.dataflow.bitset.StateCodec` for the
        compiled forward kernel, or ``None`` when the client has no
        bitset encoding (``use_engine("compiled")`` then stays on the
        interpreted engine).  Clients with finite state universes
        override this; see :mod:`repro.core.kernel`."""
        return None

    def use_engine(self, mode: str) -> str:
        """Select the forward engine: ``"interpreted"`` (the client's
        own engine, the default) or ``"compiled"`` (the bitset kernel
        of :mod:`repro.core.kernel` wrapping it).

        Returns the mode actually in effect — a client without a
        kernel codec, or whose engine is not the intraprocedural
        collecting engine, silently stays interpreted (the two engines
        are bit-identical, so this is a pure performance decision).
        The kernel engine instance is memoized on the client, keeping
        its compiled-step caches warm across switches."""
        if mode not in ("interpreted", "compiled"):
            raise ValueError(f"unknown engine: {mode!r}")
        base = getattr(self, "_base_engine", None)
        if base is None:
            base = getattr(self, "engine", None)
            if base is None:
                return "interpreted"
            self._base_engine = base
        if mode == "compiled":
            kernel = getattr(self, "_kernel_engine", None)
            if kernel is None:
                codec = self._kernel_codec()
                if codec is None or getattr(base, "cfg", None) is None:
                    kernel = False
                else:
                    from repro.core.kernel import KernelEngine

                    kernel = KernelEngine(
                        base, codec, self.analysis.semantics
                    )
                self._kernel_engine = kernel
            if kernel:
                self.engine = kernel
                return "compiled"
        self.engine = base
        return "interpreted"

    def cache_key(self) -> Hashable:
        """A key identifying this client's forward semantics in a
        :class:`ForwardRunCache`.

        Two clients may share a key only if ``run_forward`` agrees on
        every abstraction.  The default is a token unique per client
        instance, which is always sound; clients may prepend a
        descriptive prefix (see the bundled clients)."""
        token = getattr(self, "_cache_token", None)
        if token is None:
            token = self._cache_token = next(_client_tokens)
        return token

    def selfcheck_space(self):
        """Enumeration universe for the selfcheck validators
        (:mod:`repro.core.selfcheck`): ``(primitives, pairs)`` where
        ``pairs`` is a sequence of ``(p, d)`` samples.

        The bundled clients return the exhaustive product for small
        universes (making :func:`~repro.core.selfcheck.check_wp` a
        proof for the universe) and a bounded deterministic sample
        beyond that.  Optional — only ``repro selfcheck`` needs it."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement selfcheck_space()"
        )

    def counterexamples(
        self,
        queries: Sequence[Query],
        p: FrozenSet[str],
        cache: "Optional[ForwardRunCache]" = None,
    ) -> Dict[Query, Optional[Trace]]:
        """Run the ``p``-instantiated forward analysis once and report,
        for every query, ``None`` (proved) or a counterexample trace —
        a sequence of atomic commands from program entry to the query
        point ending in a state satisfying ``fail_condition``.

        When ``cache`` is given, the forward fixpoint is fetched
        through it (and stored on a miss)."""
        with obs.span("forward_run", phase="forward") as forward_span:
            robust_faults.inject("forward_run")
            if cache is not None:
                misses_before = cache.misses
                result = cache.fetch(self, p)
                forward_span.set(cached=cache.misses == misses_before)
            else:
                result = self.run_forward(p)
        theory = self.meta.theory
        out: Dict[Query, Optional[Trace]] = {}
        with obs.span("extract", phase="forward") as extract_span:
            robust_faults.inject("extract")
            for query in queries:
                fail = self.fail_condition(query)
                witness: Optional[Trace] = None
                for node, state in result.states_before_observe(query.label):
                    if evaluate(fail, theory, p, state):
                        witness = result.trace_to(node, state)
                        break
                out[query] = witness
            extract_span.set(
                witnesses=sum(1 for w in out.values() if w is not None)
            )
        return out


class ForwardRunCache:
    """Bounded LRU of forward fixpoint results.

    Keys are ``(client.cache_key(), abstraction)``; one cache may be
    shared by many clients (the bench harness shares one per benchmark
    evaluation, bounding total retained state).  Forward results are
    immutable once computed, so sharing a cached result between query
    groups is safe.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        # The cache owns its counters; readers (harness, export,
        # tables) pull totals from the registry, never keep copies.
        obs_metrics.register_cache("forward_run", self)

    def fetch(self, client: TracerClient, p: FrozenSet[str]):
        """Return the forward result for ``(client, p)``, running the
        client's forward analysis on a miss."""
        key = (client.cache_key(), p)
        entries = self._entries
        result = entries.get(key)
        if result is not None:
            entries.move_to_end(key)
            self.hits += 1
            return result
        self.misses += 1
        result = client.run_forward(p)
        entries[key] = result
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
        return result

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class TracerConfig:
    """Knobs of the search.

    ``k`` is the beam width of the meta-analysis under-approximation
    (``None`` disables the beam entirely); the paper uses ``k = 5`` for
    the evaluation and studies ``k`` in Figure 13.  ``max_iterations``
    and ``max_seconds`` bound the per-query effort; exceeding either
    marks the query ``EXHAUSTED`` (the paper's unresolved bucket).
    ``forward_cache_size`` bounds the per-driver forward-run cache
    (entries, LRU); ``0`` or ``None`` disables forward-run caching.

    Robustness knobs (see ``docs/ROBUSTNESS.md``):

    * ``max_seconds`` is enforced *cooperatively*: a budget installed
      around each round trips inside the forward worklist and each
      backward step (every ``budget_check_every`` ticks), so a single
      runaway fixpoint resolves to ``EXHAUSTED`` near the deadline
      instead of blowing the contract;
    * ``max_steps`` is the deterministic analogue — a per-query budget
      of transfer-function applications / backward commands;
    * on :class:`~repro.core.formula.FormulaExplosion` the backward
      pass retries with the beam halved down to ``k_min`` before the
      query is declared ``EXHAUSTED`` (each shrink emits a ``degraded``
      trace event);
    * ``strict=False`` contains :class:`ProgressError` and unexpected
      client exceptions to the failing query (``degraded`` event +
      ``EXHAUSTED``; the rest of the group survives); ``strict=True``
      re-raises them, which is the right default for debugging a
      client.
    """

    k: Optional[int] = 5
    max_iterations: int = 60
    max_seconds: Optional[float] = None
    max_cubes: Optional[int] = 200_000
    forward_cache_size: Optional[int] = 64
    max_steps: Optional[int] = None
    k_min: int = 1
    strict: bool = True
    budget_check_every: int = 64
    #: Forward engine: ``"interpreted"`` runs the client's own engine;
    #: ``"compiled"`` selects the bitset kernel (bit-identical results;
    #: clients without kernel support silently stay interpreted).
    engine: str = "interpreted"


class ProgressError(RuntimeError):
    """The meta-analysis failed to eliminate the current abstraction —
    a soundness bug (Theorem 3.1 guarantees elimination)."""


class WarmStart:
    """Prior knowledge seeding a new search — the PR 5 journal replay
    generalised from "resume one crashed search" to "seed any new
    search" (see :mod:`repro.serve.store` for where the knowledge
    comes from).

    Two tiers, mutually exclusive:

    * **replay** (``rounds`` non-empty): the recorded CEGAR rounds of a
      completed search over the *same* program digest, query set, and
      config are re-enacted through the journal replay machinery —
      clauses feed back into the viability stores, counters and
      charges are restored, refuted abstractions are never re-run, and
      every round is integrity-checked against the evolving store
      (:class:`~repro.robust.journal.JournalMismatch` on divergence).
      Verdicts, certificates, and journal records are bit-identical to
      a cold search; no forward fixpoint runs at all (``digests`` lets
      the certificate path reuse the recorded annotation digests
      instead of re-running the proving fixpoint).

    * **clauses** (``clauses`` non-empty): per-query clause sets from a
      prior — possibly different — search seed the initial viability
      stores.  Queries are pre-partitioned by seeded clause signature
      (a clause learned for one query must never constrain a
      different query's store, or minimality breaks), and each clause
      is validated against the current parameter space by
      :meth:`~repro.core.viability.ViabilityStore.warm_start` before
      it constrains anything.  Verdicts and minimal abstractions are
      preserved when the seeded clauses are sound for this program;
      iteration counts shrink.

    ``queries`` is the query-id list the knowledge was recorded for;
    :meth:`begin` rejects a mismatched search the same way a resumed
    journal would.
    """

    def __init__(
        self,
        rounds: Sequence[dict] = (),
        clauses: Optional[Dict[str, Sequence]] = None,
        digests: Optional[Dict[str, Tuple[Tuple[str, ...], str]]] = None,
        queries: Optional[Sequence[str]] = None,
    ):
        self.rounds = list(rounds)
        self.clauses = dict(clauses or {})
        self.digests = dict(digests or {})
        self.queries = list(queries) if queries is not None else None
        self.replayed_rounds = 0
        self.seeded_clauses = 0
        self.dropped_clauses = 0
        self._cursor = 0
        self._replaying = bool(self.rounds)

    @property
    def replaying(self) -> bool:
        return self._replaying

    def begin(self, query_ids: Sequence[str]) -> None:
        if self.queries is not None and list(query_ids) != self.queries:
            raise JournalMismatch(
                f"warm-start knowledge was recorded for queries "
                f"{self.queries!r}, not {list(query_ids)!r}"
            )

    def replay_round(self, query_ids: Sequence[str]) -> Optional[dict]:
        """Mirror of :meth:`SearchJournal.replay_round`: the next
        recorded round if it matches the group about to run; ``None``
        once the knowledge is exhausted (the search goes live)."""
        if not self._replaying:
            return None
        if self._cursor >= len(self.rounds):
            self._replaying = False
            return None
        record = self.rounds[self._cursor]
        if record.get("queries") != list(query_ids):
            raise JournalMismatch(
                f"warm-start round {record.get('round')} was recorded for "
                f"group {record.get('queries')!r}, but the search reached "
                f"group {list(query_ids)!r}"
            )
        self._cursor += 1
        self.replayed_rounds += 1
        return record

    def stored_digest(self, query_id: str, p: FrozenSet[str]) -> Optional[str]:
        """The recorded annotation digest for ``query_id``, provided
        the recorded proving abstraction matches ``p`` — replay-tier
        certificates reuse it instead of re-running the proving
        forward fixpoint (the digest is a deterministic function of
        ``(program, p)``, so reuse is exact, not approximate)."""
        entry = self.digests.get(query_id)
        if entry is None:
            return None
        abstraction, digest = entry
        if tuple(sorted(p)) != tuple(abstraction):
            return None
        return digest


@dataclass
class _Group:
    """One group of queries sharing an identical unviable set."""

    store: ViabilityStore
    queries: List[Query]


class Tracer:
    """Single-query and grouped multi-query TRACER driver."""

    def __init__(
        self,
        client: TracerClient,
        config: TracerConfig = TracerConfig(),
        forward_cache: Optional[ForwardRunCache] = None,
        journal: Optional[SearchJournal] = None,
        certificates: Optional[CertificateStore] = None,
        warm_start: Optional[WarmStart] = None,
        clause_feed=None,
    ):
        self.client = client
        self.config = config
        self.forward_cache = forward_cache
        self.journal = journal
        self.certificates = certificates
        self.warm_start = warm_start
        self.clause_feed = clause_feed

    def solve(self, query: Query) -> QueryRecord:
        """Resolve a single query (Algorithm 1)."""
        return self.solve_all([query])[query]

    def solve_all(self, queries: Sequence[Query]) -> Dict[Query, QueryRecord]:
        """Resolve many queries with the Section 6 grouping optimisation."""
        return run_query_group(
            self.client,
            queries,
            self.config,
            forward_cache=self.forward_cache,
            journal=self.journal,
            certificates=self.certificates,
            warm_start=self.warm_start,
            clause_feed=self.clause_feed,
        )


def _cache_aware(client: TracerClient) -> bool:
    """Whether the client's ``counterexamples`` accepts a ``cache``
    argument (clients predating the forward-run cache may not).

    The two-argument signature is deprecated: it silently opts the
    client out of forward-run caching.  Accept a ``cache`` keyword (and
    ignore it if you must) instead."""
    try:
        aware = "cache" in inspect.signature(client.counterexamples).parameters
    except (TypeError, ValueError):
        aware = False
    if not aware:
        warnings.warn(
            "TracerClient.counterexamples without a 'cache' parameter is "
            "deprecated; accept counterexamples(queries, p, cache=None) to "
            "enable forward-run caching",
            DeprecationWarning,
            stacklevel=3,
        )
    return aware


def run_query_group(
    client: TracerClient,
    queries: Sequence[Query],
    config: TracerConfig = TracerConfig(),
    forward_cache: Optional[ForwardRunCache] = None,
    clock: Callable[[], float] = time.perf_counter,
    journal: Optional[SearchJournal] = None,
    certificates: Optional[CertificateStore] = None,
    warm_start: Optional[WarmStart] = None,
    clause_feed=None,
) -> Dict[Query, QueryRecord]:
    """The grouped TRACER driver; see :class:`Tracer`.

    ``forward_cache`` overrides the driver-local cache (pass one to
    share fixpoints across several drivers); by default a fresh cache
    of ``config.forward_cache_size`` entries is used.  ``clock`` is the
    time source for per-query accounting (injectable for tests).

    ``journal`` records one crash-safe JSONL line per executed round
    (see :class:`~repro.robust.journal.SearchJournal`); opened with
    ``resume=True`` its recorded rounds are *replayed* before the
    search goes live — clauses feed back into the viability stores, no
    already-refuted abstraction is re-run, and counters/charges are
    restored from the record, so the resumed verdicts (and certificate
    evidence) are identical to an uninterrupted run's.  ``certificates``
    collects one verdict certificate per resolved query (see
    :mod:`repro.robust.certify`).

    ``warm_start`` seeds the search with knowledge from a *prior*
    search (see :class:`WarmStart`): replay-tier knowledge re-enacts
    the recorded rounds through the same machinery as journal resume
    (and writes them through to a live ``journal``, so the resulting
    journal file is bit-identical to a cold run's); clause-tier
    knowledge pre-partitions the initial groups and seeds each group's
    viability store with validated clauses.  A journal opened with
    ``resume=True`` takes precedence — its recorded rounds already are
    this exact search's knowledge — and ``warm_start`` is ignored.

    ``clause_feed`` plugs the search into a cross-worker clause bus
    (see :class:`~repro.robust.clausebus.ClauseFeed`): each successful
    round is published as it is recorded, and before solving a round
    the feed is drained — a sibling worker's publication of this exact
    ``(scope, round, queries)`` is replayed through the same
    re-validation machinery as journal resume (every imported clause
    re-proved against this process's own viability store) instead of
    re-running the forward fixpoint.  Records stay bit-identical to an
    uninterrupted run's: drained rounds restore charges and counters
    from the record, and abstractions they would have left in the
    forward cache are remembered so later live rounds report the same
    ``cached`` flag the uninterrupted search would.  A drained record
    that fails re-validation raises
    :class:`~repro.robust.clausebus.ClauseFeedMismatch` — callers
    retry the whole group cold rather than trust the import.
    """
    theory = client.meta.theory
    if not isinstance(theory, ParamTheory):
        raise TypeError("the meta-analysis theory must be a ParamTheory")
    select_engine = getattr(client, "use_engine", None)
    if select_engine is not None:
        select_engine(config.engine)
    if forward_cache is None and config.forward_cache_size:
        forward_cache = ForwardRunCache(config.forward_cache_size)
    if forward_cache is not None and not _cache_aware(client):
        forward_cache = None
    d_init = client.analysis.initial_state()
    records: Dict[Query, QueryRecord] = {}
    iterations: Dict[Query, int] = {q: 0 for q in queries}
    elapsed: Dict[Query, float] = {q: 0.0 for q in queries}
    steps_used: Dict[Query, float] = {q: 0.0 for q in queries}
    forward_runs: Dict[Query, int] = {q: 0 for q in queries}
    cached_runs: Dict[Query, int] = {q: 0 for q in queries}
    max_disjuncts: Dict[Query, int] = {q: 0 for q in queries}
    warm = warm_start
    if warm is not None and journal is not None and journal.replaying:
        # A resumed journal already *is* this exact search's knowledge;
        # replaying both would double-apply clauses.
        warm = None
    if warm is not None:
        warm.begin([str(q) for q in queries])
    groups: List[_Group] = [
        _Group(store=ViabilityStore(theory, d_init), queries=list(queries))
    ]
    if warm is not None and not warm.rounds and warm.clauses:
        # Clause tier: partition the initial groups by seeded clause
        # signature — a clause learned for one query must never enter
        # another query's store (it could mask that query's minimum) —
        # and validate every clause against the current parameter
        # space before it constrains anything.
        space = client.analysis.param_space
        universe = getattr(space, "universe", None)
        if universe is None:
            universe = getattr(space, "keys", None)
        buckets: "OrderedDict[Tuple, _Group]" = OrderedDict()
        for query in queries:
            seed = [
                clause_from_jsonable(c)
                for c in warm.clauses.get(str(query), [])
            ]
            store = ViabilityStore(theory, d_init)
            seeded, dropped = store.warm_start(seed, universe)
            warm.seeded_clauses += len(seeded)
            warm.dropped_clauses += len(dropped)
            signature = _clause_signature(seeded)
            bucket = buckets.get(signature)
            if bucket is None:
                bucket = _Group(store=store, queries=[])
                buckets[signature] = bucket
            bucket.queries.append(query)
        groups = list(buckets.values())
        if obs.active():
            obs.event(
                "warm_start",
                mode="clauses",
                queries=len(queries),
                groups=len(groups),
                seeded=warm.seeded_clauses,
                dropped=warm.dropped_clauses,
            )
    elif warm is not None and warm.rounds:
        if obs.active():
            obs.event(
                "warm_start",
                mode="replay",
                queries=len(queries),
                rounds=len(warm.rounds),
            )
    budgeted = config.max_seconds is not None or config.max_steps is not None
    evidence: Dict[Query, QueryEvidence] = {q: QueryEvidence() for q in queries}
    #: Survivor traces/clauses are serialised only when someone will
    #: read them (the journal, or certificate evidence).
    recording = (
        journal is not None
        or certificates is not None
        or clause_feed is not None
    )
    if journal is not None:
        journal.begin([str(q) for q in queries])
    #: Abstractions of bus-drained rounds: the uninterrupted search ran
    #: them live and left their fixpoints in its forward cache, so a
    #: later live round re-choosing one must still report ``cached``.
    feed_phantom: set = set()

    def digest_for(p: FrozenSet[str], label: str) -> str:
        if forward_cache is not None:
            result = forward_cache.fetch(client, p)
        else:
            result = client.run_forward(p)
        return annotation_digest(result, label)

    def make_budget(members: Sequence[Query]) -> Optional[Budget]:
        """A cooperative budget for work shared by ``members`` (or for
        one query's own backward pass).  Shared work is charged in
        equal shares, so the member with the least headroom going over
        implies every member is over — a budget sized on the minimum
        headroom exhausts the whole group exactly when the contract
        says it should."""
        if not budgeted:
            return None
        remaining_time = None
        if config.max_seconds is not None:
            remaining_time = config.max_seconds - min(
                elapsed[q] for q in members
            )
        remaining_steps = None
        if config.max_steps is not None:
            remaining_steps = config.max_steps - min(
                steps_used[q] for q in members
            )
        return Budget(
            max_seconds=remaining_time,
            max_steps=remaining_steps,
            clock=clock,
            check_every=config.budget_check_every,
        )

    def resolve(query: Query, status: QueryStatus, p=None, store=None) -> None:
        record = QueryRecord(
            query_id=str(query),
            status=status,
            iterations=iterations[query],
            abstraction=p,
            abstraction_cost=(
                client.analysis.param_space.cost(p) if p is not None else None
            ),
            time_seconds=elapsed[query],
            max_disjuncts=max_disjuncts[query],
            forward_runs=forward_runs[query],
            forward_cache_hits=cached_runs[query],
        )
        records[query] = record
        if obs.active():
            obs.event(
                "query_resolved",
                query=record.query_id,
                status=record.status.value,
                iterations=record.iterations,
                abstraction=sorted(p) if p is not None else None,
                abstraction_cost=record.abstraction_cost,
                time_seconds=record.time_seconds,
                max_disjuncts=record.max_disjuncts,
                forward_runs=record.forward_runs,
                forward_cache_hits=record.forward_cache_hits,
            )
        if certificates is not None:
            digest = None
            if status is QueryStatus.PROVEN and p is not None:
                if warm is not None:
                    # Replay tier: reuse the recorded annotation digest
                    # (checked against the proving abstraction) so the
                    # warm run performs zero forward fixpoints even
                    # with certification on.
                    digest = warm.stored_digest(str(query), p)
                if digest is None:
                    digest = digest_for(p, query.label)
            certificate = build_certificate(
                client,
                query,
                status,
                p,
                store.clauses if store is not None else (),
                evidence[query],
                iterations[query],
                config,
                digest,
            )
            certificates.add(certificate)
            if obs.active():
                obs.event(
                    "certificate_emitted",
                    query=str(query),
                    verdict=status.value,
                    clauses=len(certificate["clauses"]),
                    witnesses=len(certificate["witnesses"]),
                )

    def cap_reason(query: Query) -> Optional[str]:
        if iterations[query] >= config.max_iterations:
            return "iterations"
        if (
            config.max_seconds is not None
            and elapsed[query] >= config.max_seconds
        ):
            return "seconds"
        if (
            config.max_steps is not None
            and steps_used[query] >= config.max_steps
        ):
            return "steps"
        return None

    def settle_buckets(
        splits: Dict[Tuple, _Group], sink: List[_Group]
    ) -> List[str]:
        """End-of-round cap check, shared by the live and the replay
        paths (the charges are replayed exactly, so both compute the
        same answer); returns the ids of the queries exhausted."""
        exhausted_ids: List[str] = []
        for bucket in splits.values():
            live: List[Query] = []
            for query in bucket.queries:
                reason = cap_reason(query)
                if reason is not None:
                    evidence[query].provenance.append(
                        {"kind": "cap", "reason": reason}
                    )
                    resolve(query, QueryStatus.EXHAUSTED, store=bucket.store)
                    exhausted_ids.append(str(query))
                else:
                    live.append(query)
            if live:
                bucket.queries = live
                sink.append(bucket)
        return exhausted_ids

    def apply_replay(
        group: _Group, rec: dict, next_groups: List[_Group]
    ) -> None:
        """Re-enact one recorded round without re-running any analysis:
        restore the charges and counters, feed the recorded clauses
        back into the viability stores, and integrity-check the record
        against the store as we go (see :mod:`repro.robust.journal`)."""
        members = list(group.queries)
        by_id = {str(q): q for q in members}
        outcome = rec.get("outcome")
        _charge(members, float(rec.get("seconds", 0.0)), elapsed)
        _charge(members, float(rec.get("steps", 0.0)), steps_used)
        if obs.active():
            obs.event(
                "journal_replayed",
                round=rec.get("round"),
                queries=len(members),
                outcome=outcome,
            )
        if outcome in ("budget", "error"):
            reason = rec.get("reason")
            for query in members:
                if outcome == "budget":
                    evidence[query].provenance.append(
                        {"kind": "budget", "phase": "forward", "reason": reason}
                    )
                else:
                    evidence[query].provenance.append(
                        {"kind": "error", "phase": "forward", "error": reason}
                    )
                resolve(query, QueryStatus.EXHAUSTED, store=group.store)
            return
        if outcome == "impossible":
            if group.store.choose_minimum() is not None:
                raise JournalMismatch(
                    "journal records an impossible round but the replayed "
                    "store still has viable abstractions"
                )
            for query in members:
                resolve(query, QueryStatus.IMPOSSIBLE, store=group.store)
            return
        if outcome != "ok":
            raise JournalMismatch(f"unknown recorded round outcome {outcome!r}")
        recorded_p = frozenset(rec.get("abstraction") or ())
        p = group.store.choose_minimum()
        if p != recorded_p:
            raise JournalMismatch(
                f"journal records abstraction {sorted(recorded_p)} but the "
                "replayed store chooses "
                f"{sorted(p) if p is not None else None}"
            )
        cached = bool(rec.get("cached"))
        for query in members:
            iterations[query] += 1
            forward_runs[query] += 1
            if cached:
                cached_runs[query] += 1
        try:
            for qid in rec.get("proven", []):
                resolve(by_id[qid], QueryStatus.PROVEN, p, store=group.store)
            splits: Dict[Tuple, _Group] = {}
            for entry in rec.get("survivors", []):
                query = by_id[entry["query"]]
                elapsed[query] += float(entry.get("seconds", 0.0))
                steps_used[query] += float(entry.get("steps", 0.0))
                for from_k, to_k in entry.get("degraded", []):
                    evidence[query].provenance.append(
                        {"kind": "degraded", "from_k": from_k, "to_k": to_k}
                    )
                entry_outcome = entry.get("outcome")
                if entry_outcome == "clauses":
                    max_disjuncts[query] = max(
                        max_disjuncts[query],
                        int(entry.get("max_disjuncts", 0)),
                    )
                    clauses = [
                        clause_from_jsonable(c)
                        for c in entry.get("clauses", [])
                    ]
                    probe = group.store.copy()
                    added = probe.add_clauses(clauses)
                    if not probe.excludes(p):
                        raise JournalMismatch(
                            f"replayed clauses for query {entry['query']!r} "
                            "do not eliminate the recorded abstraction"
                        )
                    evidence[query].witnesses.append(
                        {
                            "abstraction": sorted(p),
                            "k": entry.get("k"),
                            "trace": entry.get("trace", []),
                            "clauses": entry.get("clauses", []),
                        }
                    )
                    signature = _clause_signature(added)
                    bucket = splits.get(signature)
                    if bucket is None:
                        bucket = _Group(store=probe, queries=[])
                        splits[signature] = bucket
                    bucket.queries.append(query)
                elif entry_outcome == "budget":
                    evidence[query].provenance.append(
                        {
                            "kind": "budget",
                            "phase": "backward",
                            "reason": entry.get("reason"),
                        }
                    )
                    resolve(query, QueryStatus.EXHAUSTED, store=group.store)
                elif entry_outcome == "explosion":
                    evidence[query].provenance.append(
                        {"kind": "explosion", "phase": "backward"}
                    )
                    resolve(query, QueryStatus.EXHAUSTED, store=group.store)
                elif entry_outcome == "error":
                    evidence[query].provenance.append(
                        {
                            "kind": "error",
                            "phase": "backward",
                            "error": entry.get("reason"),
                        }
                    )
                    resolve(query, QueryStatus.EXHAUSTED, store=group.store)
                else:
                    raise JournalMismatch(
                        f"unknown recorded survivor outcome {entry_outcome!r}"
                    )
        except KeyError as error:
            raise JournalMismatch(
                f"journal names query {error.args[0]!r}, which is not in "
                "the replayed group"
            )
        exhausted_ids = settle_buckets(splits, next_groups)
        if rec.get("exhausted", []) != exhausted_ids:
            raise JournalMismatch(
                f"replay exhausted {exhausted_ids!r} at end of round, "
                f"journal records {rec.get('exhausted')!r}"
            )

    round_index = 0
    with obs.span("query_group", queries=len(queries)):
        while groups:
            next_groups: List[_Group] = []
            for group in groups:
                round_index += 1
                if journal is not None and journal.replaying:
                    rec = journal.replay_round(
                        [str(q) for q in group.queries]
                    )
                    if rec is not None:
                        if rec.get("round") != round_index:
                            raise JournalMismatch(
                                f"journal records round {rec.get('round')!r} "
                                f"where the search reached round {round_index}"
                            )
                        with obs.span(
                            "replay_round",
                            phase="synthesis",
                            round=round_index,
                        ):
                            apply_replay(group, rec, next_groups)
                        continue
                elif warm is not None and warm.replaying:
                    rec = warm.replay_round([str(q) for q in group.queries])
                    if rec is not None:
                        if rec.get("round") != round_index:
                            raise JournalMismatch(
                                f"warm-start knowledge records round "
                                f"{rec.get('round')!r} where the search "
                                f"reached round {round_index}"
                            )
                        with obs.span(
                            "replay_round",
                            phase="synthesis",
                            round=round_index,
                        ):
                            apply_replay(group, rec, next_groups)
                        if journal is not None:
                            # Write the replayed round through, so a
                            # warm-started journal is bit-identical to
                            # the cold search's journal.
                            journal.record_round(rec)
                        continue
                elif clause_feed is not None:
                    rec = clause_feed.drain(
                        round_index, [str(q) for q in group.queries]
                    )
                    if rec is not None:
                        with obs.span(
                            "replay_round",
                            phase="synthesis",
                            round=round_index,
                            source="bus",
                        ):
                            try:
                                apply_replay(group, rec, next_groups)
                            except JournalMismatch as exc:
                                raise ClauseFeedMismatch(str(exc)) from exc
                        if rec.get("abstraction"):
                            feed_phantom.add(frozenset(rec["abstraction"]))
                        if journal is not None:
                            journal.record_round(rec)
                        if obs.active():
                            obs.event(
                                "clause_imported",
                                round=round_index,
                                queries=len(group.queries),
                                clauses=sum(
                                    len(entry.get("clauses", []))
                                    for entry in rec.get("survivors", [])
                                ),
                            )
                        continue
                with obs.span(
                    "iteration",
                    round=round_index,
                    group_size=len(group.queries),
                ) as iteration_span:
                    started = clock()
                    round_budget = make_budget(group.queries)
                    failure: Optional[Tuple[str, BaseException]] = None
                    p = None
                    witnesses: Dict[Query, Optional[Trace]] = {}
                    round_was_cached = False
                    try:
                        with robust_budget.budget_scope(round_budget):
                            with obs.span(
                                "choose", phase="synthesis"
                            ) as choose_span:
                                robust_faults.inject("choose")
                                p = group.store.choose_minimum()
                                choose_span.set(viable=p is not None)
                            if p is not None:
                                if obs.active():
                                    iteration_span.set(
                                        abstraction_cost=(
                                            client.analysis.param_space.cost(p)
                                        )
                                    )
                                with obs.span(
                                    "counterexamples", phase="forward"
                                ):
                                    if forward_cache is not None:
                                        hits_before = forward_cache.hits
                                        witnesses = client.counterexamples(
                                            group.queries,
                                            p,
                                            cache=forward_cache,
                                        )
                                        round_was_cached = (
                                            forward_cache.hits > hits_before
                                        )
                                    else:
                                        witnesses = client.counterexamples(
                                            group.queries, p
                                        )
                    except BudgetExceeded as exc:
                        failure = ("budget", exc)
                    except Exception as exc:
                        # Unexpected client failure during selection or
                        # the forward phase.  In strict mode it is the
                        # caller's bug to see; in lenient mode it costs
                        # this group its round budget, never the run.
                        if config.strict:
                            raise
                        failure = ("error", exc)
                    if (
                        not round_was_cached
                        and p is not None
                        and forward_cache is not None
                        and frozenset(p) in feed_phantom
                    ):
                        # A bus-drained round already ran this
                        # abstraction's fixpoint in the publishing
                        # worker; the uninterrupted search would have
                        # hit its forward cache here.
                        round_was_cached = True
                    # Selection + forward-run time (and budget steps)
                    # is shared by every member; charge it *before*
                    # resolving so queries proven this round carry
                    # their share but none of the backward time below.
                    round_seconds = clock() - started
                    round_steps = (
                        round_budget.steps if round_budget is not None else 0.0
                    )
                    _charge(group.queries, round_seconds, elapsed)
                    if round_budget is not None:
                        _charge(group.queries, round_steps, steps_used)
                    round_record = {
                        "round": round_index,
                        "queries": [str(q) for q in group.queries],
                        "outcome": "ok",
                        "reason": None,
                        "abstraction": sorted(p) if p is not None else None,
                        "cached": round_was_cached,
                        "seconds": round_seconds,
                        "steps": round_steps,
                        "proven": [],
                        "survivors": [],
                        "exhausted": [],
                    }
                    if failure is not None:
                        kind, exc = failure
                        if kind == "budget":
                            reason = exc.reason
                            obs.event(
                                "budget_exceeded",
                                phase="forward",
                                reason=exc.reason,
                                queries=len(group.queries),
                            )
                        else:
                            reason = repr(exc)
                            obs.event(
                                "degraded",
                                reason="forward_error",
                                error=repr(exc),
                                queries=len(group.queries),
                            )
                        iteration_span.set(outcome=kind)
                        for query in group.queries:
                            if kind == "budget":
                                evidence[query].provenance.append(
                                    {
                                        "kind": "budget",
                                        "phase": "forward",
                                        "reason": reason,
                                    }
                                )
                            else:
                                evidence[query].provenance.append(
                                    {
                                        "kind": "error",
                                        "phase": "forward",
                                        "error": reason,
                                    }
                                )
                            resolve(
                                query, QueryStatus.EXHAUSTED, store=group.store
                            )
                        if journal is not None:
                            round_record["outcome"] = kind
                            round_record["reason"] = reason
                            journal.record_round(round_record)
                        continue
                    if p is None:
                        for query in group.queries:
                            resolve(
                                query,
                                QueryStatus.IMPOSSIBLE,
                                store=group.store,
                            )
                        if journal is not None:
                            round_record["outcome"] = "impossible"
                            journal.record_round(round_record)
                        continue
                    survivors: List[Query] = []
                    for query in group.queries:
                        iterations[query] += 1
                        forward_runs[query] += 1
                        if round_was_cached:
                            cached_runs[query] += 1
                        if witnesses[query] is None:
                            if obs.detail_enabled():
                                obs.event(
                                    "iteration_detail",
                                    query=str(query),
                                    index=iterations[query],
                                    proven=True,
                                    abstraction=sorted(p),
                                )
                            round_record["proven"].append(str(query))
                            resolve(
                                query,
                                QueryStatus.PROVEN,
                                p,
                                store=group.store,
                            )
                        else:
                            survivors.append(query)
                    iteration_span.set(
                        cached=round_was_cached,
                        proven=len(group.queries) - len(survivors),
                        survivors=len(survivors),
                    )
                    # Backward meta-analysis per failing query; split
                    # the group by the clause sets learned.  Each
                    # survivor is charged its own backward pass, not an
                    # equal share of the round.
                    splits: Dict[Tuple, _Group] = {}
                    for query in survivors:
                        trace = witnesses[query]
                        entry = {
                            "query": str(query),
                            "outcome": None,
                            "reason": None,
                            "seconds": 0.0,
                            "steps": 0.0,
                            "k": None,
                            "max_disjuncts": 0,
                            "degraded": [],
                            "trace": (
                                trace_to_jsonable(trace) if recording else []
                            ),
                            "clauses": [],
                        }
                        round_record["survivors"].append(entry)
                        with obs.span(
                            "backward", phase="backward", query=str(query)
                        ) as backward_span:
                            backward_started = clock()
                            query_budget = make_budget([query])

                            def charge_backward(
                                _query=query,
                                _started=backward_started,
                                _budget=query_budget,
                                _entry=entry,
                            ) -> None:
                                seconds = clock() - _started
                                elapsed[_query] += seconds
                                _entry["seconds"] = seconds
                                if _budget is not None:
                                    steps_used[_query] += _budget.steps
                                    _entry["steps"] = _budget.steps

                            def attempt(width, _trace=trace, _query=query):
                                robust_faults.inject("backward")
                                return backward_trace(
                                    client.meta,
                                    client.analysis,
                                    _trace,
                                    p,
                                    d_init,
                                    client.fail_condition(_query),
                                    k=width,
                                    max_cubes=config.max_cubes,
                                )

                            def on_degrade(
                                failed_k, next_k, _query=query, _entry=entry
                            ):
                                _entry["degraded"].append([failed_k, next_k])
                                evidence[_query].provenance.append(
                                    {
                                        "kind": "degraded",
                                        "from_k": failed_k,
                                        "to_k": next_k,
                                    }
                                )
                                obs.event(
                                    "degraded",
                                    reason="formula_explosion",
                                    query=str(_query),
                                    from_k=failed_k,
                                    to_k=next_k,
                                )

                            try:
                                with robust_budget.budget_scope(query_budget):
                                    result, used_k = run_with_degradation(
                                        attempt,
                                        config.k,
                                        config.k_min,
                                        on_degrade,
                                    )
                                max_disjuncts[query] = max(
                                    max_disjuncts[query], result.max_disjuncts
                                )
                                probe = group.store.copy()
                                added = probe.add_failure_condition(
                                    result.condition
                                )
                                if not probe.excludes(p):
                                    raise ProgressError(
                                        f"query {query!r}: abstraction "
                                        f"{sorted(p)} was not eliminated by "
                                        "its own counterexample"
                                    )
                            except BudgetExceeded as exc:
                                charge_backward()
                                entry["outcome"] = "budget"
                                entry["reason"] = exc.reason
                                evidence[query].provenance.append(
                                    {
                                        "kind": "budget",
                                        "phase": "backward",
                                        "reason": exc.reason,
                                    }
                                )
                                backward_span.set(outcome="budget")
                                obs.event(
                                    "budget_exceeded",
                                    phase="backward",
                                    reason=exc.reason,
                                    query=str(query),
                                )
                                resolve(
                                    query,
                                    QueryStatus.EXHAUSTED,
                                    store=group.store,
                                )
                                continue
                            except FormulaExplosion:
                                # The meta-analysis formula outgrew the
                                # budget even at the narrowest beam of
                                # the degradation ladder (the analogue
                                # of the paper's k=None memory
                                # blow-ups): give up on this query
                                # rather than on the run.
                                charge_backward()
                                entry["outcome"] = "explosion"
                                evidence[query].provenance.append(
                                    {"kind": "explosion", "phase": "backward"}
                                )
                                backward_span.set(outcome="explosion")
                                resolve(
                                    query,
                                    QueryStatus.EXHAUSTED,
                                    store=group.store,
                                )
                                continue
                            except Exception as exc:
                                # ProgressError or an unexpected client
                                # failure: fatal in strict mode,
                                # contained to this query otherwise.
                                if config.strict:
                                    raise
                                charge_backward()
                                entry["outcome"] = "error"
                                entry["reason"] = repr(exc)
                                evidence[query].provenance.append(
                                    {
                                        "kind": "error",
                                        "phase": "backward",
                                        "error": repr(exc),
                                    }
                                )
                                backward_span.set(outcome="error")
                                obs.event(
                                    "degraded",
                                    reason="backward_error",
                                    query=str(query),
                                    error=repr(exc),
                                )
                                resolve(
                                    query,
                                    QueryStatus.EXHAUSTED,
                                    store=group.store,
                                )
                                continue
                            if used_k != config.k:
                                backward_span.set(degraded_to=used_k)
                            if obs.active():
                                backward_span.set(
                                    steps=len(trace),
                                    max_disjuncts=result.max_disjuncts,
                                    step_disjuncts=[
                                        len(f.cubes) for f in result.intermediate
                                    ],
                                    subsumption_drops=result.subsumption_drops,
                                    beam_prunes=result.beam_prunes,
                                    clauses=len(added),
                                )
                            if obs.detail_enabled():
                                states = client.analysis.trace_states(
                                    trace, p, d_init
                                )
                                obs.event(
                                    "iteration_detail",
                                    query=str(query),
                                    index=iterations[query],
                                    proven=False,
                                    abstraction=sorted(p),
                                    commands=[pretty_command(c) for c in trace],
                                    forward_states=[str(s) for s in states],
                                    backward_formulas=[
                                        str(f) for f in result.intermediate
                                    ],
                                )
                            entry["outcome"] = "clauses"
                            entry["k"] = used_k
                            entry["max_disjuncts"] = result.max_disjuncts
                            entry["clauses"] = [
                                clause_to_jsonable(c) for c in added
                            ]
                            if recording:
                                evidence[query].witnesses.append(
                                    {
                                        "abstraction": sorted(p),
                                        "k": used_k,
                                        "trace": entry["trace"],
                                        "clauses": entry["clauses"],
                                    }
                                )
                            signature = _clause_signature(added)
                            bucket = splits.get(signature)
                            if bucket is None:
                                bucket = _Group(store=probe, queries=[])
                                splits[signature] = bucket
                            bucket.queries.append(query)
                            charge_backward()
                    round_record["exhausted"] = settle_buckets(
                        splits, next_groups
                    )
                    if journal is not None:
                        journal.record_round(round_record)
                    if clause_feed is not None:
                        before = clause_feed.published
                        clause_feed.publish(round_record)
                        if clause_feed.published > before:
                            if obs.active():
                                obs.event(
                                    "clause_published",
                                    round=round_index,
                                    queries=len(group.queries),
                                    clauses=sum(
                                        len(entry.get("clauses", []))
                                        for entry in round_record["survivors"]
                                    ),
                                )
            groups = next_groups
    return records


def _charge(queries: Sequence[Query], amount: float, elapsed: Dict) -> None:
    """Attribute ``amount`` seconds of shared work equally to ``queries``."""
    if not queries:
        return
    share = amount / len(queries)
    for query in queries:
        elapsed[query] += share


def _clause_signature(clauses) -> Tuple:
    return tuple(
        sorted(
            tuple(sorted(((str(v), s) for v, s in clause)))
            for clause in clauses
        )
    )
