"""The paper's contribution: parametric analysis + TRACER + meta-analysis.

Sub-modules:

* :mod:`repro.core.formula` — boolean formulas over client primitives,
  DNF normal form, ``simplify`` and ``dropk`` (Figure 8).
* :mod:`repro.core.parametric` — the parametric-analysis interface
  ``(P, <=, D, [[.]]p)`` of Section 3.2 and parameter spaces.
* :mod:`repro.core.meta` — the backward meta-analysis ``B[t]``
  (Figure 7) with the generic under-approximation operator of
  Section 4.1.
* :mod:`repro.core.minsat` — branch-and-bound minimum-cost SAT used to
  pick a cheapest viable abstraction.
* :mod:`repro.core.viability` — the ``viable`` constraint store of
  Algorithm 1.
* :mod:`repro.core.tracer` — Algorithm 1 (TRACER) plus the multi-query
  group driver of Section 6.
* :mod:`repro.core.stats` — per-query resolution records and aggregates.
"""

from repro.core.formula import (
    And,
    Bottom,
    Cube,
    Dnf,
    FALSE,
    Formula,
    FormulaExplosion,
    Lit,
    Literal,
    Or,
    Primitive,
    TRUE,
    Theory,
    Top,
    conj,
    cube_entails,
    disj,
    drop_k,
    evaluate,
    evaluate_cube,
    lit,
    merge_cubes,
    neg,
    nlit,
    simplify,
    to_dnf,
    wp_substitute,
)
from repro.core.meta import BackwardMetaAnalysis, MetaResult, backward_trace
from repro.core.narrate import IterationTranscript, SearchTranscript, narrate
from repro.core.selfcheck import (
    Violation,
    check_soundness_on_trace,
    check_transfer_total,
    check_wp,
)
from repro.core.synthesis import FootprintModel, SynthesizedMeta, synthesize_wp
from repro.core.minsat import Clause, MinCostSat, PosLit, NegLit
from repro.core.parametric import (
    MapParamSpace,
    ParamSpace,
    ParametricAnalysis,
    SubsetParamSpace,
)
from repro.core.stats import EvalAggregate, QueryRecord, QueryStatus, summarize_records
from repro.core.lru import LruCache
from repro.core.tracer import (
    ForwardRunCache,
    Tracer,
    TracerClient,
    TracerConfig,
    run_query_group,
)
from repro.core.viability import ViabilityStore

__all__ = [
    "And",
    "BackwardMetaAnalysis",
    "Bottom",
    "Clause",
    "Cube",
    "Dnf",
    "EvalAggregate",
    "FALSE",
    "Formula",
    "IterationTranscript",
    "FormulaExplosion",
    "FootprintModel",
    "ForwardRunCache",
    "Lit",
    "LruCache",
    "Literal",
    "MapParamSpace",
    "MetaResult",
    "MinCostSat",
    "NegLit",
    "Or",
    "ParamSpace",
    "ParametricAnalysis",
    "PosLit",
    "Primitive",
    "QueryRecord",
    "QueryStatus",
    "SearchTranscript",
    "SubsetParamSpace",
    "SynthesizedMeta",
    "TRUE",
    "Theory",
    "Top",
    "Tracer",
    "TracerClient",
    "TracerConfig",
    "ViabilityStore",
    "Violation",
    "backward_trace",
    "check_soundness_on_trace",
    "check_transfer_total",
    "check_wp",
    "conj",
    "cube_entails",
    "disj",
    "drop_k",
    "evaluate",
    "evaluate_cube",
    "lit",
    "merge_cubes",
    "narrate",
    "neg",
    "nlit",
    "run_query_group",
    "simplify",
    "synthesize_wp",
    "summarize_records",
    "to_dnf",
    "wp_substitute",
]
