"""Guarded-update IR: single-source transfer semantics.

A client describes each atomic command *once* as a finite case-split
table — a list of :class:`Case` objects ``(guard, effect)`` where the
guard is a :class:`~repro.core.formula.Formula` over the client's
primitives and the effect is either a finite set of location updates
(:class:`Updates`) or a client-specific special effect.  From that
single table the framework derives

* the forward transfer function ``[[a]]p(d)`` — evaluate the guards on
  ``(p, d)``, apply the winning case's effect — and
* the primitive weakest precondition ``wp_primitive`` of requirement
  (2) of Section 4 — a guard-by-guard disjunction of each case's
  precondition for the primitive,

so forward/backward consistency holds *by construction* instead of
being maintained by hand in mirrored ``analysis.py`` / ``meta.py``
case splits.

The pieces:

* :class:`ValueExpr` — the right-hand sides of updates (:class:`Const`,
  :class:`Read`, :class:`MapRead`, :class:`BoolExpr`).  Each knows its
  boolean precondition ``value_expr == v`` as a formula, how to compile
  itself to a fast closure, and whether it *preserves* a location's
  primitive (used to produce compact, factored wp formulas).
* :class:`Effect` / :class:`Updates` — what a case does to the state.
  Clients with non-finite-map effects (e.g. "escape everything")
  subclass :class:`Effect` directly.
* :class:`SemanticsBinding` — the Location <-> Primitive binding layer:
  which primitive talks about which location, how to read/write a
  location on the concrete state representation, and how to test a
  primitive quickly.
* :class:`GuardedSemantics` — owns the per-program compiled dispatch
  cache (command -> resolved case table, built once) shared by forward
  runs and wp derivation, with hit/miss counters for the report.

Tables are validated at compile time: the guards must be *total* and
*pairwise disjoint* relative to the binding's theory
(:func:`check_table`), so the derived transfer function is a function
and the derived wp is exact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.formula import (
    And,
    Bottom,
    FALSE,
    Formula,
    Lit,
    Literal,
    Or,
    Primitive,
    Theory,
    Top,
    TRUE,
    conj,
    disj,
    merge_cubes,
    neg,
    simplify,
    to_dnf,
)
from repro.obs import metrics as obs_metrics

#: A location is any hashable token naming one independently-updatable
#: component of the abstract state, e.g. ``("var", "u")`` or ``("err",)``.
Location = Tuple


def _dispatch_counters(semantics: "GuardedSemantics"):
    from repro.core.stats import CacheCounters

    return CacheCounters(
        hits=semantics.dispatch_hits, misses=semantics.dispatch_misses
    )


class TableError(ValueError):
    """A case table failed the totality or disjointness check."""


def _collect_primitives(formula: Formula, seen: Dict[Primitive, None]) -> None:
    if isinstance(formula, Lit):
        seen.setdefault(formula.literal.prim)
    elif isinstance(formula, (And, Or)):
        for arg in formula.args:
            _collect_primitives(arg, seen)


# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


class ValueExpr:
    """Right-hand side of a location update.

    ``precondition(value, binding)`` must be the exact formula denoting
    ``{(p, d) | expr(p, d) == value}``; ``compile(binding)`` a closure
    computing the value on ``(p, d)``; ``preserves(location, value,
    binding)`` whether the primitive ``location == value`` entails its
    own precondition (i.e. the update cannot falsify it) — a sound
    syntactic check used only to pick a more compact wp shape.
    """

    __slots__ = ()

    def precondition(self, value, binding: "SemanticsBinding") -> Formula:
        raise NotImplementedError

    def compile(self, binding: "SemanticsBinding") -> Callable:
        raise NotImplementedError

    def preserves(self, location: Location, value, binding) -> bool:
        return False

    def param_primitives(self, binding) -> Optional[Tuple[Primitive, ...]]:
        """The parameter primitives the compiled closure may consult,
        or ``None`` when unknown.  Drives cross-abstraction sharing of
        bound steps: two abstractions agreeing on these primitives get
        the same specialised closure."""
        return None


class Const(ValueExpr):
    """The constant ``value``."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"Const({self.value!r})"

    def precondition(self, value, binding):
        return TRUE if value == self.value else FALSE

    def compile(self, binding):
        value = self.value
        return lambda p, d: value

    def preserves(self, location, value, binding):
        return value == self.value

    def param_primitives(self, binding):
        return ()


class Read(ValueExpr):
    """The current value of another (or the same) location."""

    __slots__ = ("location",)

    def __init__(self, location: Location):
        self.location = location

    def __repr__(self):
        return f"Read({self.location!r})"

    def precondition(self, value, binding):
        return binding.location_literal(self.location, value)

    def compile(self, binding):
        return binding.compile_read(self.location)

    def preserves(self, location, value, binding):
        return location == self.location

    def param_primitives(self, binding):
        return ()


class MapRead(ValueExpr):
    """A finite function of another location's value.

    ``mapping`` is given as an iterable of ``(input, output)`` pairs
    covering every possible input value.
    """

    __slots__ = ("location", "mapping")

    def __init__(self, location: Location, mapping):
        self.location = location
        self.mapping = tuple(mapping)

    def __repr__(self):
        return f"MapRead({self.location!r}, {self.mapping!r})"

    def precondition(self, value, binding):
        return disj(
            *(
                binding.location_literal(self.location, w)
                for w, out in self.mapping
                if out == value
            )
        )

    def compile(self, binding):
        read = binding.compile_read(self.location)
        table = dict(self.mapping)
        return lambda p, d: table[read(p, d)]

    def preserves(self, location, value, binding):
        return location == self.location and dict(self.mapping).get(value) == value

    def param_primitives(self, binding):
        return ()


class BoolExpr(ValueExpr):
    """A boolean value given directly as a formula over primitives."""

    __slots__ = ("formula",)

    def __init__(self, formula: Formula):
        self.formula = formula

    def __repr__(self):
        return f"BoolExpr({self.formula!r})"

    def precondition(self, value, binding):
        return self.formula if value else neg(self.formula)

    def compile(self, binding):
        return binding.compile_formula(self.formula)

    def preserves(self, location, value, binding):
        if value is not True:
            return False
        target = binding.location_literal(location, True)
        if self.formula == target:
            return True
        return isinstance(self.formula, Or) and target in self.formula.args

    def param_primitives(self, binding):
        seen: Dict[Primitive, None] = {}
        _collect_primitives(self.formula, seen)
        return tuple(
            prim for prim in seen if binding.location_of(prim) is None
        )


# ---------------------------------------------------------------------------
# Effects
# ---------------------------------------------------------------------------


class Effect:
    """What one case of a table does to the abstract state.

    ``value_expr_at(location, binding)`` returns the :class:`ValueExpr`
    the effect writes at ``location``, or ``None`` when the location is
    left unchanged — this is the single hook the generic wp derivation
    needs.  ``compile(binding)`` returns a closure ``(p, d) -> d'``.
    """

    __slots__ = ()

    def value_expr_at(self, location: Location, binding) -> Optional[ValueExpr]:
        raise NotImplementedError

    def compile(self, binding: "SemanticsBinding") -> Callable:
        raise NotImplementedError

    def param_primitives(self, binding) -> Optional[Tuple[Primitive, ...]]:
        """The parameter primitives the compiled effect may consult, or
        ``None`` when unknown.  ``None`` is always sound but disables
        cross-abstraction sharing of the bound step for the table."""
        return None


class Updates(Effect):
    """A finite map of simultaneous location updates.

    All right-hand sides are evaluated on the *pre* state, then stored —
    so ``Updates.of({a: Read(b), b: Read(a)})`` swaps.
    """

    __slots__ = ("writes",)

    def __init__(self, writes: Tuple[Tuple[Location, ValueExpr], ...]):
        self.writes = writes

    @classmethod
    def of(cls, mapping: Dict[Location, ValueExpr]) -> "Updates":
        return cls(tuple(sorted(mapping.items(), key=lambda kv: repr(kv[0]))))

    def __repr__(self):
        return f"Updates({self.writes!r})"

    def value_expr_at(self, location, binding):
        for loc, expr in self.writes:
            if loc == location:
                return expr
        return None

    def compile(self, binding):
        if not self.writes:
            return lambda p, d: d
        if len(self.writes) == 1:
            (loc, expr), = self.writes
            value = expr.compile(binding)
            write = binding.compile_write(loc)
            return lambda p, d: write(d, value(p, d))
        values = tuple(expr.compile(binding) for _, expr in self.writes)
        store = binding.compile_store(tuple(loc for loc, _ in self.writes))
        return lambda p, d: store(d, tuple(v(p, d) for v in values))

    def param_primitives(self, binding):
        out: Dict[Primitive, None] = {}
        for _loc, expr in self.writes:
            prims = expr.param_primitives(binding)
            if prims is None:
                return None
            for prim in prims:
                out.setdefault(prim)
        return tuple(out)


#: The effect that leaves the state unchanged.
IDENTITY = Updates(())


class Case:
    """One row of a case table: ``(guard, effect)``."""

    __slots__ = ("guard", "effect")

    def __init__(self, guard: Formula, effect: Effect):
        self.guard = guard
        self.effect = effect

    def __repr__(self):
        return f"Case({self.guard!r}, {self.effect!r})"


Table = Sequence[Case]


# ---------------------------------------------------------------------------
# The binding layer
# ---------------------------------------------------------------------------


class SemanticsBinding:
    """Location <-> Primitive binding for one client.

    Ties three vocabularies together: the client's *primitives* (what
    formulas talk about), its *locations* (what updates write), and its
    concrete *state representation* (what the compiled closures touch).
    """

    theory: Theory

    # -- primitives -> locations ------------------------------------------

    def location_of(self, prim: Primitive) -> Optional[Location]:
        """The location ``prim`` observes, or ``None`` for primitives
        (e.g. parameter atoms) no command ever writes."""
        raise NotImplementedError

    def prim_value(self, prim: Primitive):
        """The value ``v`` such that ``prim`` asserts ``location == v``.
        Boolean-location clients keep the default ``True``."""
        return True

    # -- locations -> primitives ------------------------------------------

    def location_literal(self, location: Location, value) -> Formula:
        """The formula asserting ``location == value``."""
        raise NotImplementedError

    # -- locations -> state representation --------------------------------

    def compile_read(self, location: Location) -> Callable:
        """A closure ``(p, d) -> value`` reading ``location``."""
        raise NotImplementedError

    def compile_write(self, location: Location) -> Callable:
        """A closure ``(d, value) -> d'`` writing ``location``."""
        raise NotImplementedError

    def compile_store(self, locations: Tuple[Location, ...]) -> Callable:
        """A closure ``(d, values) -> d'`` writing several locations at
        once.  The default chains :meth:`compile_write`; clients with a
        tuple-backed state can build the new tuple in one pass."""
        writes = tuple(self.compile_write(loc) for loc in locations)

        def store(d, values):
            for write, value in zip(writes, values):
                d = write(d, value)
            return d

        return store

    # -- primitives -> state representation --------------------------------

    def compile_primitive_test(self, prim: Primitive) -> Callable:
        """A closure ``(p, d) -> bool`` testing ``prim``; the default
        defers to the theory, clients override with index-based tests."""
        theory = self.theory
        return lambda p, d: theory.holds(prim, p, d)

    def compile_primitive_test_bound(self, prim: Primitive, p) -> Callable:
        """A closure ``d -> bool`` testing ``prim`` under a fixed
        abstraction.  The default binds :meth:`compile_primitive_test`;
        clients override to drop the extra call frame on the hot path."""
        test = self.compile_primitive_test(prim)
        return lambda d: test(p, d)

    def compile_formula(self, formula: Formula) -> Callable:
        """A closure ``(p, d) -> bool`` evaluating ``formula``."""
        if isinstance(formula, Top):
            return lambda p, d: True
        if isinstance(formula, Bottom):
            return lambda p, d: False
        if isinstance(formula, Lit):
            test = self.compile_primitive_test(formula.literal.prim)
            if formula.literal.positive:
                return test
            return lambda p, d: not test(p, d)
        if isinstance(formula, And):
            parts = tuple(self.compile_formula(a) for a in formula.args)
            return lambda p, d: all(part(p, d) for part in parts)
        if isinstance(formula, Or):
            parts = tuple(self.compile_formula(a) for a in formula.args)
            return lambda p, d: any(part(p, d) for part in parts)
        raise TypeError(f"not a formula: {formula!r}")

    def bind_formula(self, formula: Formula, p):
        """Partially evaluate ``formula`` under a fixed abstraction.

        Parameter literals (``location_of(prim) is None``) fold to
        constants — their tests must not read the state — and constant
        subformulas propagate, so the result is ``True``, ``False``, or
        a closure ``d -> bool`` over the residual state literals only.
        """
        if isinstance(formula, Top):
            return True
        if isinstance(formula, Bottom):
            return False
        if isinstance(formula, Lit):
            prim = formula.literal.prim
            if self.location_of(prim) is None:
                value = bool(self.compile_primitive_test(prim)(p, None))
                return value if formula.literal.positive else not value
            test = self.compile_primitive_test_bound(prim, p)
            if formula.literal.positive:
                return test
            return lambda d: not test(d)
        if isinstance(formula, And):
            parts = []
            for a in formula.args:
                part = self.bind_formula(a, p)
                if part is False:
                    return False
                if part is not True:
                    parts.append(part)
            if not parts:
                return True
            if len(parts) == 1:
                return parts[0]
            parts = tuple(parts)
            return lambda d: all(part(d) for part in parts)
        if isinstance(formula, Or):
            parts = []
            for a in formula.args:
                part = self.bind_formula(a, p)
                if part is True:
                    return True
                if part is not False:
                    parts.append(part)
            if not parts:
                return False
            if len(parts) == 1:
                return parts[0]
            parts = tuple(parts)
            return lambda d: any(part(d) for part in parts)
        raise TypeError(f"not a formula: {formula!r}")


# ---------------------------------------------------------------------------
# Table validation
# ---------------------------------------------------------------------------


def _guard_primitives(table: Table) -> Tuple[Primitive, ...]:
    seen: Dict[Primitive, None] = {}
    for case in table:
        _collect_primitives(case.guard, seen)
    return tuple(seen)


def _partial_guard(
    formula: Formula, assignment: Dict[Primitive, bool]
) -> Optional[bool]:
    """Three-valued evaluation under a partial assignment: ``True`` /
    ``False`` when every completion agrees, ``None`` when undecided."""
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Lit):
        literal = formula.literal
        value = assignment.get(literal.prim)
        if value is None:
            return None
        return value if literal.positive else not value
    if isinstance(formula, And):
        undecided = False
        for arg in formula.args:
            result = _partial_guard(arg, assignment)
            if result is False:
                return False
            if result is None:
                undecided = True
        return None if undecided else True
    if isinstance(formula, Or):
        undecided = False
        for arg in formula.args:
            result = _partial_guard(arg, assignment)
            if result is True:
                return True
            if result is None:
                undecided = True
        return None if undecided else False
    raise TypeError(f"not a formula: {formula!r}")


def _eval_guard(formula: Formula, assignment: Dict[Primitive, bool]) -> bool:
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Lit):
        value = assignment[formula.literal.prim]
        return value if formula.literal.positive else not value
    if isinstance(formula, And):
        return all(_eval_guard(a, assignment) for a in formula.args)
    if isinstance(formula, Or):
        return any(_eval_guard(a, assignment) for a in formula.args)
    raise TypeError(f"not a formula: {formula!r}")


#: Guard-primitive count beyond which the exhaustive check is refused.
MAX_GUARD_PRIMITIVES = 12


def check_table(table: Table, theory: Theory, command=None) -> None:
    """Check the guards are total and pairwise disjoint.

    Explores the boolean assignments to the guards' primitives that are
    consistent under ``theory`` and demands exactly one guard hold on
    each.  The exploration recurses one primitive at a time, pruning a
    whole subtree as soon as the partial assignment is inconsistent
    (``normalize_cube`` returns ``None``) — with exclusive-value
    theories this visits a small fraction of the 2^n raw assignments.
    """
    # Fast paths for the two shapes almost every table takes: a single
    # unconditional case, and a two-way split on one literal.  Both are
    # partitions by construction, so the enumeration below is skipped.
    if len(table) == 1 and isinstance(table[0].guard, Top):
        return
    if len(table) == 2:
        first, second = table[0].guard, table[1].guard
        if (
            isinstance(first, Lit)
            and isinstance(second, Lit)
            and first.literal.prim == second.literal.prim
            and first.literal.positive != second.literal.positive
        ):
            return
    prims = _guard_primitives(table)
    group_of = getattr(theory, "group_of", None)
    if group_of is not None and len(prims) > 1:
        # Bucket primitives by their exclusive-value group so each
        # group is decided over consecutive levels: the cube then
        # collapses eagerly under normalisation and the subtree skip
        # below fires as early as possible.
        try:
            buckets: Dict[object, List[Primitive]] = {}
            for prim in prims:
                buckets.setdefault(group_of(prim)[0], []).append(prim)
            prims = tuple(p for bucket in buckets.values() for p in bucket)
        except Exception:
            pass  # unknown primitives: keep discovery order
    if len(prims) > MAX_GUARD_PRIMITIVES:
        raise TableError(
            f"table for {command!r} has {len(prims)} guard primitives; "
            f"the totality check enumerates up to 2^n assignments and "
            f"refuses n > {MAX_GUARD_PRIMITIVES}"
        )
    count = len(prims)
    assignment: Dict[Primitive, bool] = {}

    def check_leaf() -> None:
        matches = [
            i for i, case in enumerate(table)
            if _eval_guard(case.guard, assignment)
        ]
        if len(matches) == 1:
            return
        detail = "no guard holds" if not matches else (
            f"guards {matches} overlap"
        )
        raise TableError(
            f"table for {command!r} is not a partition: {detail} under "
            f"{{{', '.join(str(Literal(pr, v)) for pr, v in assignment.items())}}}"
        )

    guards = tuple(case.guard for case in table)

    def recurse(i: int, cube: frozenset, active: Tuple[int, ...], true_count: int) -> None:
        if i == count:
            check_leaf()
            return
        prim = prims[i]
        for value in (True, False):
            # ``cube`` is kept in normalised form, so each step
            # normalises a small canonical set plus one literal rather
            # than the whole raw assignment.
            extended = theory.normalize_cube(cube | {Literal(prim, value)})
            if extended is None:
                continue  # inconsistent under the theory; unreachable
            assignment[prim] = value
            # Re-evaluate the still-undecided guards; once exactly one
            # guard is decided true and all others false, every
            # consistent completion of the cube passes — skip the
            # whole subtree.  Failures fall through to the leaf check
            # so error messages name a complete assignment.
            undecided = []
            decided_true = true_count
            for index in active:
                result = _partial_guard(guards[index], assignment)
                if result is True:
                    decided_true += 1
                elif result is None:
                    undecided.append(index)
            if decided_true == 1 and not undecided:
                assignment.pop(prim, None)
                continue
            recurse(i + 1, extended, tuple(undecided), decided_true)
        assignment.pop(prim, None)

    recurse(0, frozenset(), tuple(range(len(guards))), 0)


# ---------------------------------------------------------------------------
# Compiled commands
# ---------------------------------------------------------------------------


def _identity_step(d):
    return d


class CompiledCommand:
    """One command's resolved case table: compiled guards + effects for
    the forward direction, a per-primitive wp memo for the backward,
    and a per-abstraction cache of specialised ``d -> d'`` steps."""

    __slots__ = (
        "cases",
        "binding",
        "_apply",
        "_wp_memo",
        "_all_identity",
        "_effects",
        "_param_prims",
        "_bound",
    )

    def __init__(self, table: Table, binding: SemanticsBinding, command=None):
        check_table(table, binding.theory, command)
        # Cases whose guard is unsatisfiable can never fire.
        self.cases = tuple(
            case for case in table if not isinstance(case.guard, Bottom)
        )
        self.binding = binding
        self._wp_memo: Dict[Primitive, Formula] = {}
        self._all_identity = all(
            isinstance(case.effect, Updates) and not case.effect.writes
            for case in self.cases
        )
        self._effects = tuple(
            case.effect.compile(binding) for case in self.cases
        )
        self._param_prims = self._collect_param_prims()
        self._bound: Dict[object, Callable] = {}
        # The generic (p, d) applier is compiled on first use: the
        # engines go through :meth:`bind`, so many commands never pay
        # for it.
        self._apply: Optional[Callable] = None

    def _collect_param_prims(self) -> Optional[Tuple[Primitive, ...]]:
        """Every parameter primitive the table's guards or effects may
        consult, or ``None`` when an effect's footprint is unknown."""
        binding = self.binding
        seen: Dict[Primitive, None] = {}
        for prim in _guard_primitives(self.cases):
            if binding.location_of(prim) is None:
                seen.setdefault(prim)
        for case in self.cases:
            prims = case.effect.param_primitives(binding)
            if prims is None:
                return None
            for prim in prims:
                if binding.location_of(prim) is None:
                    seen.setdefault(prim)
        return tuple(seen)

    # -- forward -----------------------------------------------------------

    def _compile_apply(self) -> Callable:
        binding = self.binding
        if self._all_identity:
            return lambda p, d: d
        if len(self.cases) == 1 and isinstance(self.cases[0].guard, Top):
            return self._effects[0]
        compiled = tuple(
            (
                None if isinstance(case.guard, Top)
                else binding.compile_formula(case.guard),
                effect,
            )
            for case, effect in zip(self.cases, self._effects)
        )

        def apply(p, d):
            for guard, effect in compiled:
                if guard is None or guard(p, d):
                    return effect(p, d)
            raise TableError("no guard matched; table totality was violated")

        return apply

    def apply(self, p, d):
        fn = self._apply
        if fn is None:
            fn = self._apply = self._compile_apply()
        return fn(p, d)

    def specialisation_key(self, p) -> object:
        """The cache key identifying ``p``'s specialisation of this
        table: its *parameter footprint* — the truth values of the
        parameter primitives the table consults — when known, else
        ``p`` itself.  Abstractions sharing a footprint share one
        specialised step; the compiled bitset kernel keys its
        per-command functions on the same value."""
        prims = self._param_prims
        if prims is None:
            return p
        if prims:
            theory = self.binding.theory
            return tuple(theory.holds(prim, p, None) for prim in prims)
        return ()

    def bind(self, p) -> Callable:
        """A specialised step ``d -> d'`` for the fixed abstraction.

        Guards are partially evaluated under ``p`` — parameter literals
        fold to constants, dead cases drop out, and a guard that folds
        to true truncates the chain (disjointness makes the rest
        unreachable).  Specialisations are cached by the table's
        parameter footprint, so a ``p``-independent command shares one
        closure across every abstraction."""
        if self._all_identity:
            return _identity_step
        key = self.specialisation_key(p)
        fn = self._bound.get(key)
        if fn is None:
            fn = self._bound[key] = self._compile_bound(p)
        return fn

    def _compile_bound(self, p) -> Callable:
        binding = self.binding
        rows = []
        for case, effect in zip(self.cases, self._effects):
            guard = binding.bind_formula(case.guard, p)
            if guard is False:
                continue
            identity = (
                isinstance(case.effect, Updates) and not case.effect.writes
            )
            rows.append((None if guard is True else guard, effect, identity))
            if guard is True:
                break
        if not rows:
            raise TableError("no guard satisfiable; table totality was violated")
        # Totality (checked at table-construction time) means exactly
        # one surviving guard holds on every state, so once the earlier
        # guards have failed the last one must hold: elide its test.
        last_guard, last_effect, last_identity = rows[-1]
        rows[-1] = (None, last_effect, last_identity)
        if len(rows) == 1 and rows[0][0] is None:
            _guard, effect, identity = rows[0]
            if identity:
                return _identity_step
            return lambda d: effect(p, d)
        if len(rows) == 2 and rows[1][0] is None:
            # The ubiquitous two-way split (e.g. an err-guarded
            # identity in front of the real effect): branch directly.
            guard1, effect1, identity1 = rows[0]
            _guard2, effect2, identity2 = rows[1]
            if identity1:

                def step2(d):
                    if guard1(d):
                        return d
                    return effect2(p, d)

                return step2
            if identity2:

                def step2(d):
                    if guard1(d):
                        return effect1(p, d)
                    return d

                return step2

            def step2(d):
                if guard1(d):
                    return effect1(p, d)
                return effect2(p, d)

            return step2
        rows = tuple(rows)

        def step(d):
            for guard, effect, identity in rows:
                if guard is None or guard(d):
                    return d if identity else effect(p, d)
            raise TableError("no guard matched; table totality was violated")

        return step

    # -- backward ----------------------------------------------------------

    def wp_primitive(self, prim: Primitive) -> Formula:
        cached = self._wp_memo.get(prim)
        if cached is None:
            cached = self._wp_memo[prim] = self._derive_wp(prim)
        return cached

    def _derive_wp(self, prim: Primitive) -> Formula:
        """Guard-by-guard wp derivation.

        By totality/disjointness, ``wp(prim) = \\/_i (g_i & pre_i)``
        where ``pre_i`` is case ``i``'s precondition for ``prim``.
        When every case *preserves* the primitive (cannot falsify it),
        the equivalent factored form ``prim | \\/ (g_i & pre_i)`` over
        the non-trivial cases is emitted instead — it canonicalises to
        the compact cube sets hand-written metas used.  The result is
        DNF-normalised, simplified, and merged so the downstream beam
        (``drop_k``) sees the same syntax as before.
        """
        binding = self.binding
        theory = binding.theory
        location = binding.location_of(prim)
        if location is None:
            # Never written by any command: wp is the primitive itself.
            return Lit(Literal(prim, True))
        value = binding.prim_value(prim)
        rows: List[Tuple[Formula, Formula, bool]] = []
        all_identity = True
        for case in self.cases:
            expr = case.effect.value_expr_at(location, binding)
            if expr is None:
                rows.append((case.guard, Lit(Literal(prim, True)), True))
                continue
            all_identity = False
            rows.append(
                (
                    case.guard,
                    expr.precondition(value, binding),
                    expr.preserves(location, value, binding),
                )
            )
        if all_identity:
            return Lit(Literal(prim, True))
        identity = Lit(Literal(prim, True))
        if all(preserving for _, _, preserving in rows):
            raw = disj(
                identity,
                *(
                    conj(guard, pre)
                    for guard, pre, _ in rows
                    if pre != identity
                ),
            )
        else:
            raw = disj(*(conj(guard, pre) for guard, pre, _ in rows))
        dnf = merge_cubes(simplify(to_dnf(raw, theory), theory), theory)
        return dnf.to_formula()


# ---------------------------------------------------------------------------
# The semantics object
# ---------------------------------------------------------------------------


class BoundStep:
    """A ``(command, d) -> d'`` step with the abstraction ``p`` bound.

    Forward engines treat this as a plain callable; engines aware of the
    :meth:`for_command` protocol pre-resolve the dispatch per distinct
    command and skip the per-step cache lookup entirely.  Resolved
    steps are memoized on the instance — and instances are cached per
    abstraction by :meth:`GuardedSemantics.bound_step` — so resolution
    happens once per ``(p, command)`` over the client's lifetime, not
    once per engine run.
    """

    __slots__ = ("_semantics", "_p", "_resolved")

    def __init__(self, semantics: "GuardedSemantics", p):
        self._semantics = semantics
        self._p = p
        self._resolved: Dict[object, Callable] = {}

    def __call__(self, command, d):
        return self.for_command(command)(d)

    def for_command(self, command) -> Callable:
        """A closure ``d -> d'`` with the dispatch already resolved and
        the guards specialised to the bound abstraction."""
        fn = self._resolved.get(command)
        if fn is None:
            fn = self._resolved[command] = self._semantics.compiled(
                command
            ).bind(self._p)
        return fn


class GuardedSemantics:
    """A client's transfer semantics, defined once as case tables.

    Subclasses implement :meth:`table_for`.  The compiled dispatch
    cache (command -> :class:`CompiledCommand`) is built lazily, once
    per distinct command per program, and shared by the forward runs of
    *every* abstraction and by the backward wp derivation.
    """

    #: Registry suffix naming this client's dispatch cache; concrete
    #: semantics override it (``"typestate"``, ``"escape"``, ...).
    metrics_name: str = "semantics"

    def __init__(self, binding: SemanticsBinding):
        self.binding = binding
        self._compiled: Dict[object, CompiledCommand] = {}
        self._bound_steps: Dict[object, BoundStep] = {}
        self.dispatch_hits = 0
        self.dispatch_misses = 0
        obs_metrics.register_cache(
            f"dispatch.{self.metrics_name}", self, _dispatch_counters
        )

    # -- client hook -------------------------------------------------------

    def table_for(self, command) -> Table:
        """The case table of ``command``."""
        raise NotImplementedError

    # -- dispatch ----------------------------------------------------------

    def compiled(self, command) -> CompiledCommand:
        entry = self._compiled.get(command)
        if entry is None:
            self.dispatch_misses += 1
            entry = CompiledCommand(
                self.table_for(command), self.binding, command
            )
            self._compiled[command] = entry
        else:
            self.dispatch_hits += 1
        return entry

    # -- derived semantics -------------------------------------------------

    def transfer(self, command, p, d):
        """The forward transfer ``[[command]]p(d)``."""
        return self.compiled(command).apply(p, d)

    def wp_primitive(self, command, prim: Primitive) -> Formula:
        """The exact weakest precondition of ``[[command]]p`` w.r.t.
        ``prim`` (requirement (2) of Section 4), derived from the table."""
        return self.compiled(command).wp_primitive(prim)

    def bound_step(self, p) -> BoundStep:
        """The forward step function with abstraction ``p`` bound.

        One instance per abstraction: repeat runs under the same ``p``
        (and, via the parameter-footprint cache underneath, under any
        ``p`` agreeing on a command's parameter primitives) reuse the
        already-specialised per-command closures."""
        step = self._bound_steps.get(p)
        if step is None:
            step = self._bound_steps[p] = BoundStep(self, p)
        return step
