"""Per-query resolution records and evaluation aggregates.

These are the raw materials of the paper's evaluation section: every
table and figure (Tables 2-4, Figures 12-14) is an aggregation of
:class:`QueryRecord` values produced by TRACER.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple


class QueryStatus(enum.Enum):
    """Outcome of TRACER on one query (the three bars of Figure 12)."""

    PROVEN = "proven"
    IMPOSSIBLE = "impossible"
    EXHAUSTED = "exhausted"  # budget ran out — the paper's "unresolved"


@dataclass
class QueryRecord:
    """Everything TRACER learned about one query."""

    query_id: str
    status: QueryStatus
    iterations: int
    abstraction: Optional[FrozenSet[str]] = None
    abstraction_cost: Optional[int] = None
    time_seconds: float = 0.0
    max_disjuncts: int = 0
    forward_runs: int = 0
    #: How many of this query's rounds were served by a cached forward
    #: fixpoint instead of a fresh run (the forward-run cache).
    forward_cache_hits: int = 0

    @property
    def proven(self) -> bool:
        return self.status is QueryStatus.PROVEN

    @property
    def impossible(self) -> bool:
        return self.status is QueryStatus.IMPOSSIBLE


@dataclass(frozen=True)
class CacheCounters:
    """Hit/miss counters of one memo cache (forward-run, wp memo,
    compiled dispatch)."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def __add__(self, other: "CacheCounters") -> "CacheCounters":
        return CacheCounters(
            hits=self.hits + other.hits, misses=self.misses + other.misses
        )


@dataclass(frozen=True)
class MinMaxAvg:
    """The min/max/avg triple the paper's tables report."""

    minimum: int
    maximum: int
    average: float

    def __str__(self) -> str:
        return f"{self.minimum}/{self.maximum}/{self.average:.1f}"


def min_max_avg(values: Sequence[float]) -> Optional[MinMaxAvg]:
    if not values:
        return None
    return MinMaxAvg(
        minimum=min(values),
        maximum=max(values),
        average=sum(values) / len(values),
    )


@dataclass
class EvalAggregate:
    """Aggregate statistics over one benchmark x one client analysis."""

    total: int
    proven: int
    impossible: int
    exhausted: int
    iterations_proven: Optional[MinMaxAvg]
    iterations_impossible: Optional[MinMaxAvg]
    time_proven: Optional[MinMaxAvg]
    time_impossible: Optional[MinMaxAvg]
    abstraction_sizes: Optional[MinMaxAvg]
    total_time_seconds: float
    groups: "GroupStats"
    #: Query-rounds total and how many were served by the forward-run
    #: cache (summed over records; see QueryRecord.forward_cache_hits).
    forward_runs: int = 0
    forward_cache_hits: int = 0

    @property
    def resolved(self) -> int:
        return self.proven + self.impossible

    @property
    def resolved_fraction(self) -> float:
        return self.resolved / self.total if self.total else 0.0

    @property
    def forward_cache_hit_rate(self) -> float:
        """Fraction of query-rounds whose forward fixpoint came from
        the cache."""
        return (
            self.forward_cache_hits / self.forward_runs
            if self.forward_runs
            else 0.0
        )


@dataclass(frozen=True)
class GroupStats:
    """Cheapest-abstraction reuse statistics (Table 4): queries proven
    with the *same* cheapest abstraction form a group."""

    group_count: int
    minimum: int
    maximum: int
    average: float


def group_stats(records: Iterable[QueryRecord]) -> GroupStats:
    groups: Dict[FrozenSet[str], int] = {}
    for record in records:
        if record.status is QueryStatus.PROVEN and record.abstraction is not None:
            groups[record.abstraction] = groups.get(record.abstraction, 0) + 1
    if not groups:
        return GroupStats(0, 0, 0, 0.0)
    sizes = list(groups.values())
    return GroupStats(
        group_count=len(groups),
        minimum=min(sizes),
        maximum=max(sizes),
        average=sum(sizes) / len(sizes),
    )


def summarize_records(records: Sequence[QueryRecord]) -> EvalAggregate:
    """Fold raw query records into the aggregate the tables consume."""
    proven = [r for r in records if r.status is QueryStatus.PROVEN]
    impossible = [r for r in records if r.status is QueryStatus.IMPOSSIBLE]
    exhausted = [r for r in records if r.status is QueryStatus.EXHAUSTED]
    return EvalAggregate(
        total=len(records),
        proven=len(proven),
        impossible=len(impossible),
        exhausted=len(exhausted),
        iterations_proven=min_max_avg([r.iterations for r in proven]),
        iterations_impossible=min_max_avg([r.iterations for r in impossible]),
        time_proven=min_max_avg([r.time_seconds for r in proven]),
        time_impossible=min_max_avg([r.time_seconds for r in impossible]),
        abstraction_sizes=min_max_avg(
            [r.abstraction_cost for r in proven if r.abstraction_cost is not None]
        ),
        total_time_seconds=sum(r.time_seconds for r in records),
        groups=group_stats(records),
        forward_runs=sum(r.forward_runs for r in records),
        forward_cache_hits=sum(r.forward_cache_hits for r in records),
    )


def size_distribution(records: Iterable[QueryRecord]) -> Dict[int, int]:
    """Histogram of cheapest-abstraction sizes over proven queries
    (the data behind Figure 14)."""
    histogram: Dict[int, int] = {}
    for record in records:
        if record.status is QueryStatus.PROVEN and record.abstraction_cost is not None:
            histogram[record.abstraction_cost] = (
                histogram.get(record.abstraction_cost, 0) + 1
            )
    return dict(sorted(histogram.items()))
