"""Self-checking utilities for client analyses.

Writing the backward transfer functions of a meta-analysis by hand is,
in the paper's own words, "tedious and error-prone" (Section 8).  This
module productises the validation strategy our test suite uses so that
*downstream* clients can machine-check their own analyses:

* :func:`check_wp` — requirement (2) of Section 4: for every supplied
  ``(p, d)`` pair, ``wp(command, prim)`` must hold exactly when
  ``prim`` holds of the transferred state;
* :func:`check_transfer_total` — the forward transfer function must be
  total and deterministic over the supplied pairs (the property that
  makes wp a boolean homomorphism);
* :func:`check_soundness_on_trace` — Theorem 3 on one counterexample
  trace: the current pair is covered by ``B[t]``'s result, and every
  covered abstraction indeed fails.

All functions return a list of :class:`Violation` (empty = passed), so
they slot directly into client test suites.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.formula import Formula, Primitive, evaluate
from repro.core.meta import BackwardMetaAnalysis, backward_trace
from repro.core.parametric import ParametricAnalysis
from repro.lang.ast import AtomicCommand, Trace


@dataclass(frozen=True)
class Violation:
    """One counterexample to a client-analysis contract."""

    kind: str
    command: Optional[AtomicCommand]
    prim: Optional[Primitive]
    p: object
    d: object
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] command={self.command!r} prim={self.prim!r} "
            f"p={sorted(self.p) if isinstance(self.p, frozenset) else self.p!r} "
            f"d={self.d!r}: {self.detail}"
        )


def sample_subsets(universe: Iterable[str], limit: int = 6) -> List[frozenset]:
    """A deterministic subset sample of ``universe``: exhaustive (all
    ``2^n`` subsets) while ``n <= limit``, otherwise the bottom set,
    every singleton, and the full set — enough to exercise both
    polarities of every parameter variable without exploding."""
    items = sorted(universe)
    if len(items) <= limit:
        return [
            frozenset(combo)
            for r in range(len(items) + 1)
            for combo in itertools.combinations(items, r)
        ]
    sample = [frozenset()]
    sample.extend(frozenset([item]) for item in items)
    sample.append(frozenset(items))
    return sample


def sample_pairs(
    params: Sequence[object],
    states: Iterable[object],
    limit: int = 4096,
) -> List[Tuple[object, object]]:
    """Pair up abstractions and states for :func:`check_wp` /
    :func:`check_transfer_total`, truncating the product at ``limit``
    (states vary in the outer loop so a truncated sample still covers
    many states).  Below the limit this is the full product — and the
    checks are then exhaustive proofs for the universe."""
    pairs: List[Tuple[object, object]] = []
    for d in states:
        for p in params:
            pairs.append((p, d))
            if len(pairs) >= limit:
                return pairs
    return pairs


def check_wp(
    analysis: ParametricAnalysis,
    meta: BackwardMetaAnalysis,
    commands: Iterable[AtomicCommand],
    prims: Sequence[Primitive],
    pairs: Sequence[Tuple[object, object]],
    max_violations: int = 10,
) -> List[Violation]:
    """Check requirement (2) of Section 4 over the given pairs.

    ``pairs`` is a sequence of ``(p, d)`` samples; passing the full
    cartesian product of a small universe makes the check exhaustive
    (and hence a proof for that universe).
    """
    theory = meta.theory
    violations: List[Violation] = []
    for command in commands:
        for prim in prims:
            pre = meta.wp_primitive(command, prim)
            for p, d in pairs:
                post = analysis.transfer(command, p, d)
                expected = theory.holds(prim, p, post)
                actual = evaluate(pre, theory, p, d)
                if expected != actual:
                    violations.append(
                        Violation(
                            kind="wp-mismatch",
                            command=command,
                            prim=prim,
                            p=p,
                            d=d,
                            detail=(
                                f"wp evaluates to {actual} but the primitive "
                                f"is {expected} of the post-state {post!r}"
                            ),
                        )
                    )
                    if len(violations) >= max_violations:
                        return violations
    return violations


def check_transfer_total(
    analysis: ParametricAnalysis,
    commands: Iterable[AtomicCommand],
    pairs: Sequence[Tuple[object, object]],
    max_violations: int = 10,
) -> List[Violation]:
    """Check the forward transfer is total (never raises) and
    deterministic (equal inputs give equal outputs) over ``pairs``."""
    violations: List[Violation] = []
    for command in commands:
        for p, d in pairs:
            try:
                first = analysis.transfer(command, p, d)
                second = analysis.transfer(command, p, d)
            except Exception as error:  # totality violation
                violations.append(
                    Violation(
                        kind="transfer-partial",
                        command=command,
                        prim=None,
                        p=p,
                        d=d,
                        detail=f"transfer raised {error!r}",
                    )
                )
                if len(violations) >= max_violations:
                    return violations
                continue
            if first != second:
                violations.append(
                    Violation(
                        kind="transfer-nondeterministic",
                        command=command,
                        prim=None,
                        p=p,
                        d=d,
                        detail=f"two runs gave {first!r} and {second!r}",
                    )
                )
                if len(violations) >= max_violations:
                    return violations
    return violations


def check_soundness_on_trace(
    analysis: ParametricAnalysis,
    meta: BackwardMetaAnalysis,
    trace: Trace,
    p: object,
    d_init: object,
    fail_condition: Formula,
    other_params: Iterable[object],
    k: Optional[int] = 5,
    max_violations: int = 10,
    max_cubes: Optional[int] = None,
) -> List[Violation]:
    """Check Theorem 3 on one counterexample trace.

    ``other_params`` is the set of abstractions to test clause (2)
    against (pass the whole family for an exhaustive check).
    ``max_cubes`` caps the backward DNF like the driver's
    ``TracerConfig.max_cubes`` — certificate checking passes the
    recorded cap so the replay matches the original derivation."""
    theory = meta.theory
    final = analysis.run_trace(trace, p, d_init)
    if not evaluate(fail_condition, theory, p, final):
        return [
            Violation(
                kind="not-a-counterexample",
                command=None,
                prim=None,
                p=p,
                d=d_init,
                detail="the final state does not satisfy the fail condition",
            )
        ]
    extra = {} if max_cubes is None else {"max_cubes": max_cubes}
    result = backward_trace(
        meta, analysis, trace, p, d_init, fail_condition, k=k, **extra
    )
    violations: List[Violation] = []
    if not evaluate(result.condition, theory, p, d_init):
        violations.append(
            Violation(
                kind="theorem3.1",
                command=None,
                prim=None,
                p=p,
                d=d_init,
                detail="the current (p, dI) is not covered by B[t]'s result",
            )
        )
    for p0 in other_params:
        if evaluate(result.condition, theory, p0, d_init):
            final0 = analysis.run_trace(trace, p0, d_init)
            if not evaluate(fail_condition, theory, p0, final0):
                violations.append(
                    Violation(
                        kind="theorem3.2",
                        command=None,
                        prim=None,
                        p=p0,
                        d=d_init,
                        detail=(
                            "covered abstraction does not fail along the "
                            f"trace (final state {final0!r})"
                        ),
                    )
                )
                if len(violations) >= max_violations:
                    return violations
    return violations
