"""Boolean formulas over analysis primitives, and the DNF machinery.

This module implements the formula domain ``M`` of a *disjunctive
meta-analysis* (Section 4.1 of the paper):

* formulas are built from client-declared :class:`Primitive` atoms with
  negation, conjunction, and disjunction;
* :func:`to_dnf` converts to disjunctive normal form, sorting disjuncts
  by syntactic size (``toDNF`` of Figure 8);
* :func:`simplify` removes disjuncts subsumed by earlier, shorter ones
  (``simplify`` of Figure 8);
* :func:`drop_k` is the beam under-approximation (``dropk`` of
  Figure 8): it keeps the ``k - 1`` smallest disjuncts plus the
  smallest disjunct containing the current ``(p, d)``, guaranteeing the
  current abstraction stays eliminated.

Meaning is given by a client :class:`Theory`, which evaluates
primitives on pairs ``(p, d)`` of abstraction and abstract state
(the ``gamma`` function of Section 4), decides which primitives depend
only on the abstraction component, and supplies semantic rewrites that
keep cubes small (mutual exclusion between primitives and literal
entailment).  All rewrites performed here except ``drop_k`` are
semantics-preserving; ``drop_k`` only ever shrinks ``gamma``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.lru import LruCache
from repro.obs import metrics as obs_metrics

#: Distinguishes "absent" from a cached ``None`` (an unsatisfiable cube).
_CACHE_MISS = object()


class FormulaExplosion(RuntimeError):
    """Raised when DNF conversion exceeds the configured cube budget."""


class Primitive:
    """Base class for primitive formulas (``PForm`` in the paper).

    Subclasses should be frozen dataclasses.  ``sort_key`` induces the
    deterministic order used when sorting literals and cubes; the
    default key is derived from the dataclass fields.
    """

    __slots__ = ()

    def sort_key(self) -> Tuple:
        fields = getattr(self, "__dataclass_fields__", None)
        if fields is None:
            return (type(self).__name__, repr(self))
        return (type(self).__name__,) + tuple(
            str(getattr(self, name)) for name in fields
        )


class Literal:
    """A primitive or its negation.

    Implemented as a hash-caching value class: literals live in
    frozensets that are unioned, compared, and re-hashed constantly on
    the meta-analysis hot path, so the hash is computed once."""

    __slots__ = ("prim", "positive", "_hash")

    def __init__(self, prim: Primitive, positive: bool = True):
        self.prim = prim
        self.positive = positive
        self._hash = hash((prim, positive))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and self.positive == other.positive
            and self.prim == other.prim
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Literal({self.prim!r}, {self.positive})"

    def negate(self) -> "Literal":
        return Literal(self.prim, not self.positive)

    def sort_key(self) -> Tuple:
        return self.prim.sort_key() + (not self.positive,)

    def __str__(self) -> str:
        return str(self.prim) if self.positive else f"!{self.prim}"


Cube = FrozenSet[Literal]


def cube_sort_key(cube: Cube) -> Tuple:
    return (len(cube), tuple(sorted(lit.sort_key() for lit in cube)))


def pretty_cube(cube: Cube) -> str:
    if not cube:
        return "true"
    return " & ".join(str(l) for l in sorted(cube, key=Literal.sort_key))


# ---------------------------------------------------------------------------
# Formula AST (negation-normal-form friendly)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Top:
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom:
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Lit:
    literal: Literal

    def __str__(self) -> str:
        return str(self.literal)


@dataclass(frozen=True)
class And:
    args: Tuple["Formula", ...]

    def __str__(self) -> str:
        return "(" + " & ".join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class Or:
    args: Tuple["Formula", ...]

    def __str__(self) -> str:
        return "(" + " | ".join(str(a) for a in self.args) + ")"


Formula = object  # Union[Top, Bottom, Lit, And, Or]

TRUE = Top()
FALSE = Bottom()


def lit(prim: Primitive) -> Formula:
    """The formula asserting ``prim``."""
    return Lit(Literal(prim, True))


def nlit(prim: Primitive) -> Formula:
    """The formula asserting the negation of ``prim``."""
    return Lit(Literal(prim, False))


def conj(*args: Formula) -> Formula:
    """Smart conjunction: flattens, drops ``true``, absorbs ``false``."""
    flat: List[Formula] = []
    for arg in args:
        if isinstance(arg, Bottom):
            return FALSE
        if isinstance(arg, Top):
            continue
        if isinstance(arg, And):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*args: Formula) -> Formula:
    """Smart disjunction: flattens, drops ``false``, absorbs ``true``."""
    flat: List[Formula] = []
    for arg in args:
        if isinstance(arg, Top):
            return TRUE
        if isinstance(arg, Bottom):
            continue
        if isinstance(arg, Or):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(formula: Formula) -> Formula:
    """Negation, pushed to the literals (classical duality)."""
    if isinstance(formula, Top):
        return FALSE
    if isinstance(formula, Bottom):
        return TRUE
    if isinstance(formula, Lit):
        return Lit(formula.literal.negate())
    if isinstance(formula, And):
        return disj(*(neg(a) for a in formula.args))
    if isinstance(formula, Or):
        return conj(*(neg(a) for a in formula.args))
    raise TypeError(f"not a formula: {formula!r}")


# ---------------------------------------------------------------------------
# Theories
# ---------------------------------------------------------------------------


class Theory:
    """Client-supplied semantics of primitives.

    The base implementation knows nothing about the primitives beyond
    syntactic identity; clients override the hooks to plug in domain
    knowledge (mutual exclusion, entailment), which keeps the cubes the
    meta-analysis manipulates small and canonical.
    """

    def holds(self, prim: Primitive, p: object, d: object) -> bool:
        """Whether ``(p, d)`` is in ``gamma(prim)``."""
        raise NotImplementedError

    def is_param(self, prim: Primitive) -> bool:
        """Whether ``gamma(prim)`` depends only on the abstraction ``p``."""
        raise NotImplementedError

    def lit_entails(self, a: Literal, b: Literal) -> bool:
        """Whether ``gamma(a) <= gamma(b)``.  Must be sound; syntactic
        equality is the (complete-enough per Figure 9) default."""
        return a == b

    def cube_entails_literal(self, stronger: Cube, b: Literal) -> bool:
        """Whether the conjunction ``stronger`` entails literal ``b``.

        The default scans for an entailing literal; theories with
        structured primitives override this with set lookups, which
        turns cube subsumption from quadratic to linear."""
        return b in stronger or any(self.lit_entails(a, b) for a in stronger)

    def literals_exhaust(self, literals: FrozenSet[Literal]) -> bool:
        """Whether the disjunction of ``literals`` covers every pair,
        i.e. ``union of gamma(l) = P x D``.  Used by :func:`merge_cubes`
        to drop a literal whose siblings enumerate all cases.  The
        default recognises complementary pairs; exclusive-value
        theories also recognise a full positive value sweep."""
        return any(l.negate() in literals for l in literals)

    def normalize_cube(self, literals: Cube) -> Optional[Cube]:
        """Semantics-preserving canonicalisation of a conjunction.

        Returns ``None`` when the conjunction is unsatisfiable.  The
        default detects complementary literal pairs; clients may also
        resolve exclusive-value groups and drop entailed literals.
        """
        for l in literals:
            if l.negate() in literals:
                return None
        return literals

    #: Bound on the per-theory normalisation memo; crossing it evicts
    #: one cold entry at a time (LRU) rather than the whole working set.
    NORMALIZE_CACHE_SIZE = 500_000

    def normalize_cached(self, literals: Cube) -> Optional[Cube]:
        """Memoised :meth:`normalize_cube` — the DNF machinery
        re-normalises the same cubes constantly on long traces."""
        cache = getattr(self, "_normalize_cache", None)
        if cache is None:
            cache = self._normalize_cache = LruCache(self.NORMALIZE_CACHE_SIZE)
        result = cache.get(literals, _CACHE_MISS)
        if result is _CACHE_MISS:
            result = self.normalize_cube(literals)
            cache.put(literals, result)
        return result

    #: Bounds on the per-theory :func:`to_dnf` / :func:`simplify` memos.
    #: The backward pass converts and simplifies the same post-state
    #: formulas once per trace suffix; both operations are pure
    #: functions of (hashable) formula identity, so results are shared
    #: across iterations and queries of one theory instance.
    DNF_CACHE_SIZE = 100_000
    SIMPLIFY_CACHE_SIZE = 100_000

    def _dnf_memo(self) -> LruCache:
        cache = getattr(self, "_dnf_cache", None)
        if cache is None:
            cache = self._dnf_cache = LruCache(self.DNF_CACHE_SIZE)
            obs_metrics.register_cache(
                f"dnf_memo.{type(self).__name__}", cache
            )
        return cache

    def _simplify_memo(self) -> LruCache:
        cache = getattr(self, "_simplify_cache", None)
        if cache is None:
            cache = self._simplify_cache = LruCache(self.SIMPLIFY_CACHE_SIZE)
            obs_metrics.register_cache(
                f"simplify_memo.{type(self).__name__}", cache
            )
        return cache


class ExclusiveValueTheory(Theory):
    """A theory whose primitives assert ``location = value`` facts.

    Many dataflow abstract domains (including the thread-escape domain
    of Figure 5) map each *location* to exactly one of a small set of
    *values*.  Primitives then come in exhaustive, mutually exclusive
    groups: one per location, one primitive per value.  Subclasses
    provide :meth:`group_of`; this class derives cube normalisation:

    * two distinct positive values for one location -> ``false``;
    * a positive value makes every negative literal of the same group
      redundant (or contradictory);
    * all-but-one value negated -> replaced by the remaining positive;
    * all values negated -> ``false``.
    """

    def group_of(self, prim: Primitive) -> Optional[Tuple[object, object, Tuple]]:
        """Return ``(group_key, value, all_values)`` or ``None``."""
        raise NotImplementedError

    def make_primitive(self, group_key: object, value: object) -> Primitive:
        """Build the primitive asserting ``group_key = value``."""
        raise NotImplementedError

    #: Bound on the primitive-group memo (one entry per distinct
    #: primitive, so this only matters for very large universes).
    GROUP_CACHE_SIZE = 65_536

    def _group_cached(self, prim: Primitive):
        cache = getattr(self, "_group_cache", None)
        if cache is None:
            cache = self._group_cache = LruCache(self.GROUP_CACHE_SIZE)
        result = cache.get(prim, _CACHE_MISS)
        if result is _CACHE_MISS:
            result = self.group_of(prim)
            cache.put(prim, result)
        return result

    def normalize_cube(self, literals: Cube) -> Optional[Cube]:
        groups: Dict[object, Dict[object, bool]] = {}
        values_of: Dict[object, Tuple] = {}
        rest: List[Literal] = []
        for l in literals:
            info = self._group_cached(l.prim)
            if info is None:
                if l.negate() in literals:
                    return None
                rest.append(l)
                continue
            key, value, all_values = info
            bucket = groups.setdefault(key, {})
            if value in bucket and bucket[value] != l.positive:
                return None
            bucket[value] = l.positive
            values_of[key] = all_values
        out: List[Literal] = list(rest)
        for key, bucket in groups.items():
            all_values = values_of[key]
            positives = [v for v, sign in bucket.items() if sign]
            negatives = [v for v, sign in bucket.items() if not sign]
            if len(positives) >= 2:
                return None
            if positives:
                value = positives[0]
                if value in negatives:
                    return None
                out.append(Literal(self.make_primitive(key, value), True))
                continue
            remaining = [v for v in all_values if v not in negatives]
            if not remaining:
                return None
            if len(remaining) == 1:
                out.append(Literal(self.make_primitive(key, remaining[0]), True))
            else:
                out.extend(
                    Literal(self.make_primitive(key, v), False) for v in negatives
                )
        return frozenset(out)

    def lit_entails(self, a: Literal, b: Literal) -> bool:
        if a == b:
            return True
        ga = self._group_cached(a.prim)
        gb = self._group_cached(b.prim)
        if ga is None or gb is None or ga[0] != gb[0]:
            return False
        # Same exclusive group: `loc = v` entails `loc != w` for w != v.
        if a.positive and not b.positive and ga[1] != gb[1]:
            return True
        return False

    def cube_entails_literal(self, stronger: Cube, b: Literal) -> bool:
        if b in stronger:
            return True
        info = self._group_cached(b.prim)
        if info is None or b.positive:
            # Positive exclusive-value literals are entailed only by
            # themselves (normalised cubes carry at most one positive
            # value per group).
            return False
        key, value, all_values = info
        return any(
            Literal(self.make_primitive(key, other), True) in stronger
            for other in all_values
            if other != value
        )

    def literals_exhaust(self, literals: FrozenSet[Literal]) -> bool:
        if super().literals_exhaust(literals):
            return True
        by_group: Dict[object, set] = {}
        values_of: Dict[object, Tuple] = {}
        for l in literals:
            if not l.positive:
                continue
            info = self._group_cached(l.prim)
            if info is None:
                continue
            key, value, all_values = info
            by_group.setdefault(key, set()).add(value)
            values_of[key] = all_values
        return any(
            by_group[key] >= set(values_of[key]) for key in by_group
        )


# ---------------------------------------------------------------------------
# DNF conversion and the Figure 8 operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Dnf:
    """A formula in disjunctive normal form: a disjunction of cubes.

    Invariants: cubes are normalised by the theory that produced the
    Dnf, sorted by syntactic size (then deterministically), and the
    empty disjunction is ``false`` while a single empty cube is
    ``true``.
    """

    cubes: Tuple[Cube, ...]

    @property
    def is_false(self) -> bool:
        return not self.cubes

    @property
    def is_true(self) -> bool:
        return len(self.cubes) == 1 and not self.cubes[0]

    def __str__(self) -> str:
        if self.is_false:
            return "false"
        return " | ".join(f"({pretty_cube(c)})" for c in self.cubes)

    def to_formula(self) -> Formula:
        return disj(*(conj(*(Lit(l) for l in cube)) for cube in self.cubes))


def _sorted_cubes(cubes: Iterable[Cube]) -> Tuple[Cube, ...]:
    unique = sorted(set(cubes), key=cube_sort_key)
    return tuple(unique)


def to_dnf(
    formula: Formula, theory: Theory, max_cubes: Optional[int] = None
) -> Dnf:
    """Convert ``formula`` to DNF, normalising every cube via ``theory``.

    ``max_cubes`` bounds the number of cubes live at any point during
    the conversion; exceeding it raises :class:`FormulaExplosion`.
    The result's cubes are sorted by size, matching ``toDNF`` of
    Figure 8.

    Successful conversions are memoised per theory, keyed on the
    (hashable) formula plus the budget — the budget must be in the key
    because whether a conversion explodes depends on the *intermediate*
    cube counts it allows.  Explosions are never cached: a later call
    with a larger budget must get its chance to succeed.
    """
    cache = theory._dnf_memo()
    key = (formula, max_cubes)
    result = cache.get(key, _CACHE_MISS)
    if result is _CACHE_MISS:
        cubes = _dnf_cubes(formula, theory, max_cubes)
        result = Dnf(_sorted_cubes(cubes))
        cache.put(key, result)
    return result


def _dnf_cubes(
    formula: Formula, theory: Theory, max_cubes: Optional[int]
) -> List[Cube]:
    if isinstance(formula, Top):
        return [frozenset()]
    if isinstance(formula, Bottom):
        return []
    if isinstance(formula, Lit):
        normalized = theory.normalize_cached(frozenset([formula.literal]))
        return [] if normalized is None else [normalized]
    if isinstance(formula, Or):
        out: List[Cube] = []
        seen = set()
        for arg in formula.args:
            for cube in _dnf_cubes(arg, theory, max_cubes):
                if cube not in seen:
                    seen.add(cube)
                    out.append(cube)
            _check_budget(out, max_cubes)
        return out
    if isinstance(formula, And):
        acc: List[Cube] = [frozenset()]
        for arg in formula.args:
            arg_cubes = _dnf_cubes(arg, theory, max_cubes)
            next_acc: List[Cube] = []
            seen = set()
            for left in acc:
                for right in arg_cubes:
                    merged = theory.normalize_cached(left | right)
                    if merged is not None and merged not in seen:
                        seen.add(merged)
                        next_acc.append(merged)
            _check_budget(next_acc, max_cubes)
            acc = next_acc
        return acc
    raise TypeError(f"not a formula: {formula!r}")


def _check_budget(cubes: Sequence[Cube], max_cubes: Optional[int]) -> None:
    if max_cubes is not None and len(cubes) > max_cubes:
        raise FormulaExplosion(
            f"DNF conversion produced {len(cubes)} cubes (budget {max_cubes})"
        )


def cube_entails(stronger: Cube, weaker: Cube, theory: Theory) -> bool:
    """Whether ``gamma(stronger) <= gamma(weaker)`` (cube subsumption).

    Holds when every literal of ``weaker`` is entailed by some literal
    of ``stronger`` — the (sound, incomplete) check of Figure 9.
    """
    rest = weaker - stronger  # entailment is reflexive
    return all(theory.cube_entails_literal(stronger, b) for b in rest)


def simplify(dnf: Dnf, theory: Theory) -> Dnf:
    """Remove disjuncts subsumed by earlier (shorter) kept disjuncts.

    This is ``simplify`` of Figure 8 and is semantics-preserving: a
    removed cube denotes a subset of a kept one.

    Memoised per theory on the cube tuple: the backward pass simplifies
    the same post-state DNFs once per trace suffix.
    """
    cache = theory._simplify_memo()
    result = cache.get(dnf.cubes, _CACHE_MISS)
    if result is _CACHE_MISS:
        kept: List[Cube] = []
        for cube in dnf.cubes:
            if any(cube_entails(cube, earlier, theory) for earlier in kept):
                continue
            kept.append(cube)
        result = Dnf(tuple(kept))
        cache.put(dnf.cubes, result)
    return result


def merge_cubes(dnf: Dnf, theory: Theory) -> Dnf:
    """Semantics-preserving cube merging (a one-literal Quine-McCluskey
    pass, iterated to fixpoint).

    Whenever a set of cubes share a common *rest* and their remaining
    literals exhaust all cases (``l`` and ``!l``, or a full value sweep
    of an exclusive group), the whole set collapses to the rest.  Used
    to compact formulas produced by wp *synthesis*, whose raw output
    enumerates one cube per footprint assignment."""
    cubes = set(dnf.cubes)
    changed = True
    while changed:
        changed = False
        by_rest: Dict[Cube, set] = {}
        for cube in cubes:
            for l in cube:
                by_rest.setdefault(cube - {l}, set()).add(l)
        for rest, literals in by_rest.items():
            if len(literals) < 2 or rest in cubes:
                continue
            if theory.literals_exhaust(frozenset(literals)):
                for l in literals:
                    cubes.discard(rest | {l})
                normalized = theory.normalize_cached(rest)
                if normalized is not None:
                    cubes.add(normalized)
                changed = True
                break
    return simplify(Dnf(_sorted_cubes(cubes)), theory)


def drop_k(
    dnf: Dnf, k: int, contains_current: Callable[[Cube], bool]
) -> Dnf:
    """The beam under-approximation ``dropk`` of Figure 8.

    Keeps the first ``k - 1`` disjuncts (the input is size-sorted) plus
    the first disjunct for which ``contains_current`` holds, i.e. the
    smallest disjunct containing the current ``(p, d)``.  The result
    under-approximates the input and still contains ``(p, d)`` whenever
    the input did — the two requirements on ``approx`` in Section 4.

    Raises ``ValueError`` when no disjunct contains the current pair,
    which would violate the meta-analysis invariant.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(dnf.cubes) <= k:
        return dnf
    kept = list(dnf.cubes[: k - 1])
    return Dnf(tuple(_with_current(dnf, kept, contains_current)))


def _with_current(
    dnf: Dnf, kept: List[Cube], contains_current: Callable[[Cube], bool]
) -> List[Cube]:
    for cube in dnf.cubes:
        if contains_current(cube):
            if cube not in kept:
                kept.append(cube)
            return kept
    raise ValueError(
        "drop_k: no disjunct contains the current (p, d); "
        "the meta-analysis invariant is broken"
    )


# ---------------------------------------------------------------------------
# Evaluation and weakest-precondition substitution
# ---------------------------------------------------------------------------


def evaluate_literal(literal: Literal, theory: Theory, p: object, d: object) -> bool:
    value = theory.holds(literal.prim, p, d)
    return value if literal.positive else not value


def evaluate_cube(cube: Cube, theory: Theory, p: object, d: object) -> bool:
    return all(evaluate_literal(l, theory, p, d) for l in cube)


def evaluate(formula: Formula, theory: Theory, p: object, d: object) -> bool:
    """Whether ``(p, d)`` is in ``gamma(formula)``."""
    if isinstance(formula, Dnf):
        return any(evaluate_cube(cube, theory, p, d) for cube in formula.cubes)
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Lit):
        return evaluate_literal(formula.literal, theory, p, d)
    if isinstance(formula, And):
        return all(evaluate(a, theory, p, d) for a in formula.args)
    if isinstance(formula, Or):
        return any(evaluate(a, theory, p, d) for a in formula.args)
    raise TypeError(f"not a formula: {formula!r}")


def wp_substitute(dnf: Dnf, wp_prim: Callable[[Primitive], Formula]) -> Formula:
    """Substitute every primitive by its weakest precondition.

    Because the forward transfer functions are total and deterministic,
    weakest precondition is a boolean homomorphism: it distributes over
    conjunction, disjunction, *and* negation.  Clients therefore only
    define ``wp`` on primitives; this function lifts it to DNF formulas
    (negative literals become the negation of the primitive's wp).
    """
    disjuncts = []
    for cube in dnf.cubes:
        parts = []
        for l in cube:
            pre = wp_prim(l.prim)
            parts.append(pre if l.positive else neg(pre))
        disjuncts.append(conj(*parts))
    return disj(*disjuncts)
