"""A small bounded LRU mapping shared by the hot memoisation caches.

The meta-analysis and formula machinery memoise aggressively (cube
normalisation, primitive grouping, wp lookups, forward fixpoints).
Before this helper existed each cache either grew without bound or
dropped its *entire* working set when it crossed a size threshold —
a hot loop straddling the threshold would then rebuild 500k entries
from scratch.  :class:`LruCache` evicts one cold entry at a time
instead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator, Optional

_MISSING = object()


class LruCache:
    """A dict bounded to ``max_entries`` with least-recently-used
    eviction.  Lookups refresh recency; overflow evicts exactly one
    (the coldest) entry, so a working set slightly above the bound
    degrades gracefully instead of thrashing.
    """

    __slots__ = ("max_entries", "_entries", "hits", "misses", "__weakref__")

    def __init__(self, max_entries: int):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default=None):
        """Return the cached value (refreshing recency) or ``default``."""
        entries = self._entries
        value = entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert ``key``, evicting the coldest entry on overflow."""
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        if len(entries) > self.max_entries:
            entries.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
