"""Branch-and-bound minimum-cost SAT.

TRACER stores the set of still-viable abstractions as a conjunction of
clauses over *parameter primitives* (each eliminated failure condition
contributes negated cubes).  Choosing "a minimum ``p`` in ``viable``"
(Algorithm 1, line 8) is then exactly MinCostSAT: find a model of the
clause set minimising the total cost of the variables set to true
(tracked variables / ``L``-mapped sites), and "``viable`` is empty"
(line 5) is plain unsatisfiability.

The solver is a classic DPLL branch-and-bound:

* unit propagation at every node;
* branching tries ``false`` first (the zero-cost value), so cheap
  models are found early and prune aggressively;
* lower bound: greedily pick variable-disjoint all-positive clauses —
  each must pay at least its cheapest variable.

Instances arising here are small (tens of variables, tens of clauses),
but a ``max_nodes`` safety budget guards against pathological inputs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

Var = Hashable
LitPair = Tuple[Var, bool]
Clause = FrozenSet[LitPair]


def PosLit(var: Var) -> LitPair:
    """A positive literal for :class:`MinCostSat` clauses."""
    return (var, True)


def NegLit(var: Var) -> LitPair:
    """A negative literal for :class:`MinCostSat` clauses."""
    return (var, False)


class SolverBudgetExceeded(RuntimeError):
    """Raised when the branch-and-bound search exceeds ``max_nodes``."""


class MinCostSat:
    """Minimum-cost SAT over clauses of ``(variable, polarity)`` literals."""

    def __init__(
        self,
        costs: Optional[Dict[Var, int]] = None,
        default_cost: int = 1,
        max_nodes: int = 2_000_000,
    ):
        self._clauses: List[Clause] = []
        self._clause_set = set()
        self._costs: Dict[Var, int] = dict(costs or {})
        self._default_cost = default_cost
        self._max_nodes = max_nodes
        self._nodes = 0

    def cost_of(self, var: Var) -> int:
        return self._costs.get(var, self._default_cost)

    def add_clause(self, literals: Iterable[LitPair]) -> None:
        """Add a disjunction of literals; an empty clause makes the
        instance unsatisfiable."""
        clause = frozenset(literals)
        # Drop tautologies (v | !v | ...).
        if any((var, not sign) in clause for var, sign in clause):
            return
        if clause not in self._clause_set:
            self._clause_set.add(clause)
            self._clauses.append(clause)

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        return tuple(self._clauses)

    def is_satisfiable(self) -> bool:
        return self.solve() is not None

    def solve(self) -> Optional[FrozenSet[Var]]:
        """Return the set of true variables in a minimum-cost model, or
        ``None`` when unsatisfiable.  Deterministic: among equal-cost
        models, the search order fixes the result."""
        self._nodes = 0
        self._best_cost = None
        self._best_model: Optional[Dict[Var, bool]] = None
        self._search({}, list(self._clauses), 0)
        if self._best_model is None:
            return None
        return frozenset(
            var for var, value in self._best_model.items() if value
        )

    # -- internals ---------------------------------------------------------

    def _tick(self) -> None:
        self._nodes += 1
        if self._nodes > self._max_nodes:
            raise SolverBudgetExceeded(
                f"MinCostSat exceeded {self._max_nodes} search nodes"
            )

    def _search(
        self, assign: Dict[Var, bool], clauses: List[Clause], cost: int
    ) -> None:
        self._tick()
        result = _propagate(assign, clauses)
        if result is None:
            return
        assign, clauses = result
        cost = sum(
            self.cost_of(var) for var, value in assign.items() if value
        )
        if self._best_cost is not None and cost + self._lower_bound(
            clauses
        ) >= self._best_cost:
            return
        if not clauses:
            if self._best_cost is None or cost < self._best_cost:
                self._best_cost = cost
                self._best_model = dict(assign)
            return
        var = self._pick_variable(clauses)
        for value in (False, True):
            child = dict(assign)
            child[var] = value
            self._search(child, clauses, cost)

    def _pick_variable(self, clauses: List[Clause]) -> Var:
        shortest = min(clauses, key=lambda c: (len(c), _clause_key(c)))
        var, _sign = min(shortest, key=_lit_key)
        return var

    def _lower_bound(self, clauses: List[Clause]) -> int:
        used: set = set()
        bound = 0
        for clause in sorted(clauses, key=lambda c: (len(c), _clause_key(c))):
            if any(not sign for _var, sign in clause):
                continue
            vars_in = {var for var, _sign in clause}
            if vars_in & used:
                continue
            used |= vars_in
            bound += min(self.cost_of(var) for var in vars_in)
        return bound


def _lit_key(literal: LitPair) -> Tuple:
    var, sign = literal
    return (str(var), sign)


def _clause_key(clause: Clause) -> Tuple:
    return tuple(sorted(_lit_key(l) for l in clause))


def _propagate(
    assign: Dict[Var, bool], clauses: List[Clause]
) -> Optional[Tuple[Dict[Var, bool], List[Clause]]]:
    """Unit propagation; returns ``None`` on conflict."""
    assign = dict(assign)
    while True:
        reduced: List[Clause] = []
        unit: Optional[LitPair] = None
        for clause in clauses:
            live: List[LitPair] = []
            satisfied = False
            for var, sign in clause:
                if var in assign:
                    if assign[var] == sign:
                        satisfied = True
                        break
                else:
                    live.append((var, sign))
            if satisfied:
                continue
            if not live:
                return None
            if len(live) == 1 and unit is None:
                unit = live[0]
            reduced.append(frozenset(live))
        if unit is None:
            return assign, reduced
        var, sign = unit
        assign[var] = sign
        clauses = reduced
