"""Parametric dataflow analyses (Section 3.2).

A parametric analysis is a triple ``(P, <=, D, [[a]]p)``: a preordered
set of abstractions, a finite set of abstract states, and per-command
transfer functions parameterised by the abstraction.  The preorder
compares analysis *cost*; every nonempty subset of ``P`` must have a
minimum element, which TRACER exploits when choosing the next
abstraction to try.

Two concrete parameter spaces cover the paper's clients:

* :class:`SubsetParamSpace` — ``P = 2^V`` ordered by cardinality
  (type-state analysis, Figure 4);
* :class:`MapParamSpace` — ``P = H -> {cheap, costly}`` ordered by the
  number of costly bindings (thread-escape analysis, Figure 5, where
  ``costly = L``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Mapping, Sequence, Tuple

from repro.lang.ast import AtomicCommand, Trace


class ParamSpace:
    """The ``(P, <=)`` component of a parametric analysis."""

    def cost(self, p: object) -> int:
        """The cost rank of ``p``; ``p <= p'`` iff ``cost(p) <= cost(p')``."""
        raise NotImplementedError

    def bottom(self) -> object:
        """The minimum (cheapest) abstraction of the full family."""
        raise NotImplementedError

    def iter_all(self) -> Iterator[object]:
        """Enumerate the whole family (test oracles only; may be huge)."""
        raise NotImplementedError

    def size_log2(self) -> int:
        """``log2 |P|`` — the statistic reported in Table 1."""
        raise NotImplementedError


@dataclass(frozen=True)
class SubsetParamSpace(ParamSpace):
    """Abstractions are subsets of a finite universe; cost = cardinality."""

    universe: FrozenSet[str]

    def cost(self, p: FrozenSet[str]) -> int:
        return len(p)

    def bottom(self) -> FrozenSet[str]:
        return frozenset()

    def iter_all(self) -> Iterator[FrozenSet[str]]:
        items = sorted(self.universe)
        for r in range(len(items) + 1):
            for combo in itertools.combinations(items, r):
                yield frozenset(combo)

    def size_log2(self) -> int:
        return len(self.universe)


@dataclass(frozen=True)
class MapParamSpace(ParamSpace):
    """Abstractions map keys to one of two values; cost = #costly keys.

    ``cheap`` is the default (e.g. ``E`` for thread-escape), ``costly``
    the precise one (``L``).  Abstractions are represented as frozen
    sets of the keys mapped to ``costly``.
    """

    keys: FrozenSet[str]
    cheap: str = "E"
    costly: str = "L"

    def cost(self, p: FrozenSet[str]) -> int:
        return len(p)

    def bottom(self) -> FrozenSet[str]:
        return frozenset()

    def iter_all(self) -> Iterator[FrozenSet[str]]:
        items = sorted(self.keys)
        for r in range(len(items) + 1):
            for combo in itertools.combinations(items, r):
                yield frozenset(combo)

    def size_log2(self) -> int:
        return len(self.keys)

    def lookup(self, p: FrozenSet[str], key: str) -> str:
        """The value ``p`` assigns to ``key``."""
        return self.costly if key in p else self.cheap


class ParametricAnalysis:
    """The forward analysis: ``(P, <=, D, [[a]]p)``.

    ``transfer`` must be a *total deterministic* function of the
    abstract state for every command and abstraction — the property the
    backward meta-analysis exploits to treat weakest preconditions as
    boolean homomorphisms.
    """

    param_space: ParamSpace

    def transfer(self, command: AtomicCommand, p: object, d: object) -> object:
        """Apply ``[[command]]p`` to one abstract state."""
        raise NotImplementedError

    def initial_state(self) -> object:
        """The initial abstract state ``dI``."""
        raise NotImplementedError

    def run_trace(self, trace: Trace, p: object, d: object) -> object:
        """``Fp[t](d)`` — analyse a single trace (Figure 3, right)."""
        for command in trace:
            d = self.transfer(command, p, d)
        return d

    def trace_states(self, trace: Trace, p: object, d: object) -> Tuple[object, ...]:
        """All intermediate states ``d0 .. dn`` along ``trace``."""
        states = [d]
        for command in trace:
            d = self.transfer(command, p, d)
            states.append(d)
        return tuple(states)
