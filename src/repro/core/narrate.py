"""Human-readable transcripts of TRACER runs (the Figure 1/6 layout).

The paper explains its technique through annotated counterexample
traces: each trace point carries the forward abstract state computed by
the client analysis and the backward formula tracked by the
meta-analysis.  This module replays a TRACER search and renders exactly
that — one block per CEGAR iteration — which is invaluable both for
debugging client analyses and for teaching the algorithm::

    == iteration 1: p = {} ==
    nu: (closed in ts) & !(opened in ts) & !param(x)
        x = new File                    d = ({closed}, {})
    ...
    eliminated: abstractions satisfying the start condition

The transcript generator is deliberately independent of
:class:`repro.core.tracer.Tracer` so it can replay any client/query
pair without touching the search's production code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.formula import Dnf, evaluate
from repro.core.meta import backward_trace
from repro.core.stats import QueryStatus
from repro.core.tracer import TracerClient, TracerConfig
from repro.core.viability import ParamTheory, ViabilityStore
from repro.lang.ast import Trace
from repro.lang.pretty import pretty_command


@dataclass
class IterationTranscript:
    """One CEGAR iteration: the abstraction tried, the counterexample
    (if the proof failed), and the meta-analysis formulas."""

    index: int
    abstraction: frozenset
    proven: bool
    trace: Optional[Trace] = None
    forward_states: Tuple[object, ...] = ()
    backward_formulas: Tuple[Dnf, ...] = ()

    def render(self) -> str:
        p = "{" + ", ".join(sorted(self.abstraction)) + "}"
        lines = [f"== iteration {self.index}: p = {p} =="]
        if self.proven:
            lines.append("query PROVEN under this abstraction")
            return "\n".join(lines)
        assert self.trace is not None
        for i, command in enumerate(self.trace):
            lines.append(f"  nu: {self.backward_formulas[i]}")
            lines.append(
                f"      {pretty_command(command):<40} "
                f"d = {self.forward_states[i + 1]}"
            )
        lines.append(f"  nu: {self.backward_formulas[-1]}  (failure condition)")
        return "\n".join(lines)


@dataclass
class SearchTranscript:
    """A full TRACER run on one query."""

    query: object
    status: QueryStatus
    iterations: List[IterationTranscript]
    abstraction: Optional[frozenset] = None

    def render(self) -> str:
        blocks = [block.render() for block in self.iterations]
        if self.status is QueryStatus.PROVEN:
            p = "{" + ", ".join(sorted(self.abstraction)) + "}"
            blocks.append(f"RESULT: proven with cheapest abstraction {p}")
        elif self.status is QueryStatus.IMPOSSIBLE:
            blocks.append(
                "RESULT: impossible — no abstraction in the family proves the query"
            )
        else:
            blocks.append("RESULT: unresolved (budget exhausted)")
        return "\n\n".join(blocks)


def narrate(
    client: TracerClient,
    query,
    config: TracerConfig = TracerConfig(),
) -> SearchTranscript:
    """Replay Algorithm 1 on one query, capturing every intermediate.

    Functionally identical to ``Tracer(client, config).solve(query)``
    (same abstractions tried in the same order) but additionally
    records, per iteration, the counterexample trace, the forward
    states along it, and the backward formula at every trace point.
    """
    theory = client.meta.theory
    if not isinstance(theory, ParamTheory):
        raise TypeError("the meta-analysis theory must be a ParamTheory")
    d_init = client.analysis.initial_state()
    store = ViabilityStore(theory, d_init)
    iterations: List[IterationTranscript] = []
    for index in range(1, config.max_iterations + 1):
        p = store.choose_minimum()
        if p is None:
            return SearchTranscript(
                query, QueryStatus.IMPOSSIBLE, iterations
            )
        trace = client.counterexamples([query], p)[query]
        if trace is None:
            iterations.append(
                IterationTranscript(index, p, proven=True)
            )
            return SearchTranscript(
                query, QueryStatus.PROVEN, iterations, abstraction=p
            )
        result = backward_trace(
            client.meta,
            client.analysis,
            trace,
            p,
            d_init,
            client.fail_condition(query),
            k=config.k,
            max_cubes=config.max_cubes,
        )
        iterations.append(
            IterationTranscript(
                index,
                p,
                proven=False,
                trace=trace,
                forward_states=client.analysis.trace_states(trace, p, d_init),
                backward_formulas=result.intermediate,
            )
        )
        store.add_failure_condition(result.condition)
    return SearchTranscript(query, QueryStatus.EXHAUSTED, iterations)
