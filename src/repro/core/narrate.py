"""Human-readable transcripts of TRACER runs (the Figure 1/6 layout).

The paper explains its technique through annotated counterexample
traces: each trace point carries the forward abstract state computed by
the client analysis and the backward formula tracked by the
meta-analysis.  This module renders exactly that — one block per CEGAR
iteration — which is invaluable both for debugging client analyses and
for teaching the algorithm::

    == iteration 1: p = {} ==
    nu: (closed in ts) & !(opened in ts) & !param(x)
        x = new File                    d = ({closed}, {})
    ...
    eliminated: abstractions satisfying the start condition

Transcripts are built from the observability event stream
(:mod:`repro.obs`): :func:`narrate` runs the production search driver
with an in-memory detail sink and folds the captured
``iteration_detail`` / ``query_resolved`` events into a
:class:`SearchTranscript`, and :func:`transcript_from_events` performs
the same fold on *any* recorded stream — so a transcript can be
produced post-hoc from a ``--trace-out`` JSONL file (``repro trace
transcript FILE``) without re-running the search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.stats import QueryStatus
from repro.obs.sinks import MemorySink, MultiSink, Sink
from repro.obs.trace import tracing


@dataclass
class IterationTranscript:
    """One CEGAR iteration: the abstraction tried, the counterexample
    (if the proof failed), and the meta-analysis formulas.

    The payloads are pre-rendered strings (the form they take in the
    recorded event stream): ``trace`` holds pretty-printed commands,
    ``forward_states`` and ``backward_formulas`` the ``str()`` of the
    abstract states / DNF formulas at every trace point."""

    index: int
    abstraction: frozenset
    proven: bool
    trace: Optional[Tuple[str, ...]] = None
    forward_states: Tuple[str, ...] = ()
    backward_formulas: Tuple[str, ...] = ()

    def render(self) -> str:
        p = "{" + ", ".join(sorted(self.abstraction)) + "}"
        lines = [f"== iteration {self.index}: p = {p} =="]
        if self.proven:
            lines.append("query PROVEN under this abstraction")
            return "\n".join(lines)
        assert self.trace is not None
        for i, command in enumerate(self.trace):
            lines.append(f"  nu: {self.backward_formulas[i]}")
            lines.append(
                f"      {command:<40} "
                f"d = {self.forward_states[i + 1]}"
            )
        lines.append(f"  nu: {self.backward_formulas[-1]}  (failure condition)")
        return "\n".join(lines)


@dataclass
class SearchTranscript:
    """A full TRACER run on one query."""

    query: object
    status: QueryStatus
    iterations: List[IterationTranscript]
    abstraction: Optional[frozenset] = None

    def render(self) -> str:
        blocks = [block.render() for block in self.iterations]
        if self.status is QueryStatus.PROVEN:
            p = "{" + ", ".join(sorted(self.abstraction)) + "}"
            blocks.append(f"RESULT: proven with cheapest abstraction {p}")
        elif self.status is QueryStatus.IMPOSSIBLE:
            blocks.append(
                "RESULT: impossible — no abstraction in the family proves the query"
            )
        else:
            blocks.append("RESULT: unresolved (budget exhausted)")
        return "\n\n".join(blocks)


def transcript_from_events(
    events: Sequence[dict], query: Optional[str] = None
) -> SearchTranscript:
    """Fold a recorded event stream into a :class:`SearchTranscript`.

    ``events`` is any stream in the :mod:`repro.obs.events` schema that
    was recorded with detail mode on (``iteration_detail`` events
    present); ``query`` selects one query by id when the stream covers
    several.  Raises :class:`ValueError` when the stream holds no
    resolution for the requested query.
    """
    resolutions = [
        record["attrs"]
        for record in events
        if record.get("type") == "event"
        and record.get("name") == "query_resolved"
        and (query is None or record.get("attrs", {}).get("query") == query)
    ]
    if not resolutions:
        raise ValueError(
            "no query_resolved event in the stream"
            + (f" for query {query!r}" if query else "")
        )
    if query is None and len(resolutions) > 1:
        ids = sorted({r.get("query") for r in resolutions})
        raise ValueError(
            f"stream resolves {len(resolutions)} queries ({', '.join(map(str, ids))}); "
            "pass a query id to select one"
        )
    resolution = resolutions[0]
    query_id = resolution.get("query")
    iterations: List[IterationTranscript] = []
    for record in events:
        if (
            record.get("type") != "event"
            or record.get("name") != "iteration_detail"
        ):
            continue
        attrs = record.get("attrs", {})
        if attrs.get("query") != query_id:
            continue
        proven = bool(attrs.get("proven"))
        iterations.append(
            IterationTranscript(
                index=attrs.get("index", len(iterations) + 1),
                abstraction=frozenset(attrs.get("abstraction", ())),
                proven=proven,
                trace=None if proven else tuple(attrs.get("commands", ())),
                forward_states=tuple(attrs.get("forward_states", ())),
                backward_formulas=tuple(attrs.get("backward_formulas", ())),
            )
        )
    abstraction = resolution.get("abstraction")
    return SearchTranscript(
        query=query_id,
        status=QueryStatus(resolution["status"]),
        iterations=iterations,
        abstraction=frozenset(abstraction) if abstraction is not None else None,
    )


def narrate(
    client,
    query,
    config=None,
    sink: Optional[Sink] = None,
) -> SearchTranscript:
    """Run Algorithm 1 on one query, capturing every intermediate.

    Runs the production search driver
    (:func:`repro.core.tracer.run_query_group`) under an in-memory
    detail sink, then rebuilds the transcript from the recorded event
    stream — the same abstractions are tried in the same order as
    ``Tracer(client, config).solve(query)``, and the transcript is
    exactly what :func:`transcript_from_events` would recover from a
    ``--trace-out`` file of that run.  ``sink`` additionally receives
    a copy of every event (e.g. a
    :class:`~repro.obs.sinks.JsonlSink` to keep the trace).
    """
    from repro.core.tracer import TracerConfig, run_query_group

    if config is None:
        config = TracerConfig()
    memory = MemorySink()
    capture: Sink = memory if sink is None else MultiSink([memory, sink])
    with tracing(capture, detail=True):
        run_query_group(client, [query], config)
    return transcript_from_events(memory.events, query=str(query))
