"""The backward meta-analysis ``B[t]`` (Figure 7, Section 4).

Given a trace ``t`` on which the forward analysis instantiated with
abstraction ``p`` failed to prove a query, the meta-analysis propagates
a *sufficient condition for failure* backwards through ``t``.  The
resulting formula ``B[t](p, dI, not(q))`` denotes a set of pairs
``(p', d')`` such that running the ``p'``-instance from ``d'`` along
``t`` is guaranteed to end in a state violating the query
(Theorem 3.2); and it always contains the current ``(p, dI)``
(Theorem 3.1), so at least the current abstraction is eliminated.

Each backward step is ``approx(p, d, [[a]]b(f))``:

* ``[[a]]b`` is the weakest precondition of the forward transfer
  function.  Transfer functions are total and deterministic, so wp is a
  boolean homomorphism and clients only supply wp on *primitive*
  formulas (:meth:`BackwardMetaAnalysis.wp_primitive`).
* ``approx`` is the generic under-approximation of Section 4.1:
  DNF-normalise, ``simplify``, then ``drop_k`` with beam width ``k``,
  always retaining a disjunct containing the current ``(p, d)``.

Setting ``k = None`` disables the beam (the "without
under-approximation" mode of Figure 6(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.formula import (
    Dnf,
    Formula,
    Lit,
    Literal,
    Theory,
    drop_k,
    evaluate,
    evaluate_cube,
    simplify,
    to_dnf,
    wp_substitute,
)
from repro.core.lru import LruCache
from repro.core.parametric import ParametricAnalysis
from repro.lang.ast import AtomicCommand, Trace
from repro.obs import metrics as obs_metrics
from repro.robust import budget as robust_budget

_WP_MISS = object()


def _wp_counters(meta: "BackwardMetaAnalysis"):
    from repro.core.stats import CacheCounters

    return CacheCounters(hits=meta.wp_hits, misses=meta.wp_misses)


class BackwardMetaAnalysis:
    """Client interface: the theory plus primitive weakest preconditions."""

    theory: Theory

    def wp_primitive(self, command: AtomicCommand, prim) -> Formula:
        """The weakest precondition of ``[[command]]p`` w.r.t. ``prim``.

        Must satisfy requirement (2) of Section 4:
        ``gamma(wp(prim)) = {(p, d) | (p, [[command]]p(d)) in gamma(prim)}``.
        """
        raise NotImplementedError

    #: Bound on the wp memo; eviction is LRU, one entry at a time.
    WP_CACHE_SIZE = 200_000

    #: Memo counters, surfaced in the evaluation's cache statistics
    #: through the metrics registry (registered on first memo use
    #: under ``"wp_memo.<metrics_name>"``).
    wp_hits: int = 0
    wp_misses: int = 0

    #: Registry suffix naming this client's wp memo; concrete meta
    #: bindings override it (``"typestate"``, ``"escape"``, ...).
    metrics_name: str = "meta"

    def wp_cached(self, command: AtomicCommand, prim) -> Formula:
        """Memoised :meth:`wp_primitive` — the same (command, primitive)
        pairs recur along every trace and TRACER iteration."""
        cache = getattr(self, "_wp_cache", None)
        if cache is None:
            cache = self._wp_cache = LruCache(self.WP_CACHE_SIZE)
            obs_metrics.register_cache(
                f"wp_memo.{self.metrics_name}", self, _wp_counters
            )
        key = (command, prim)
        result = cache.get(key, _WP_MISS)
        if result is _WP_MISS:
            self.wp_misses += 1
            result = self.wp_primitive(command, prim)
            cache.put(key, result)
        else:
            self.wp_hits += 1
        return result


@dataclass
class MetaResult:
    """The outcome of one backward pass over a counterexample trace."""

    condition: Dnf
    """``B[t](p, dI, not(q))`` — sufficient condition for failure."""

    intermediate: Tuple[Dnf, ...]
    """Backward states at every trace point, ``intermediate[i]`` holding
    before command ``i`` (so ``intermediate[0]`` is ``condition`` and
    ``intermediate[-1]`` is the normalised post-condition)."""

    max_disjuncts: int
    """Largest number of disjuncts in any *tracked* (post-``approx``)
    formula — the formula-compactness statistic Figure 6 is about."""

    subsumption_drops: int = 0
    """Cubes removed by ``simplify`` (subsumption/merging) over the
    whole backward pass — how much work the normalisation saved."""

    beam_prunes: int = 0
    """Cubes removed by the ``drop_k`` beam over the whole pass — how
    aggressively the under-approximation narrowed the formula."""


def approx(
    dnf: Dnf,
    theory: Theory,
    p: object,
    d: object,
    k: Optional[int],
    stats: Optional[dict] = None,
) -> Dnf:
    """``approx(p, d, f)`` of Section 4.1: simplify, then beam-prune.

    When ``stats`` is given, the cubes dropped by each stage are
    accumulated into its ``"subsumption_drops"`` / ``"beam_prunes"``
    keys (the per-pass telemetry behind the trace's backward spans)."""
    simplified = simplify(dnf, theory)
    if stats is not None:
        stats["subsumption_drops"] += len(dnf.cubes) - len(simplified.cubes)
    if k is None:
        return simplified
    pruned = drop_k(
        simplified, k, lambda cube: evaluate_cube(cube, theory, p, d)
    )
    if stats is not None:
        stats["beam_prunes"] += len(simplified.cubes) - len(pruned.cubes)
    return pruned


def backward_trace(
    meta: BackwardMetaAnalysis,
    analysis: ParametricAnalysis,
    trace: Trace,
    p: object,
    d_init: object,
    post: Formula,
    k: Optional[int] = 5,
    max_cubes: Optional[int] = 100_000,
) -> MetaResult:
    """Run ``B[t](p, d_init, post)`` (Figure 7).

    ``post`` is the failure condition at the end of the trace,
    typically ``not(q)``.  The forward states along the trace are
    replayed first (``B[t ; t'](p, d, f) = B[t](p, d, B[t'](p,
    Fp[t](d), f))`` threads them through), then the weakest
    precondition is folded backwards with ``approx`` applied at every
    step.

    Precondition (checked): ``(p, Fp[t](d_init))`` satisfies ``post`` —
    the trace really is a counterexample.  Guarantee (Theorem 3): the
    returned condition contains ``(p, d_init)``.
    """
    theory = meta.theory
    states = analysis.trace_states(trace, p, d_init)
    stats = {"subsumption_drops": 0, "beam_prunes": 0}
    current = to_dnf(post, theory, max_cubes)
    current = approx(current, theory, p, states[-1], k, stats)
    if not evaluate(current, theory, p, states[-1]):
        raise ValueError(
            "backward_trace: the final forward state does not satisfy the "
            "post-condition; the given trace is not a counterexample"
        )
    intermediate = [current]
    max_disjuncts = len(current.cubes)
    for index in range(len(trace) - 1, -1, -1):
        # One backward command can hide a lot of formula work, so the
        # cooperative budget check here always consults the clock.
        robust_budget.checkpoint()
        command = trace[index]
        # Fast path: when the command leaves every tracked primitive
        # unchanged (the common case on long traces), the weakest
        # precondition is the formula itself.
        wp_cache = {
            prim: meta.wp_cached(command, prim)
            for cube in current.cubes
            for literal in cube
            for prim in [literal.prim]
        }
        if all(
            pre == Lit(Literal(prim, True)) for prim, pre in wp_cache.items()
        ):
            intermediate.append(current)
            continue
        pre_formula = wp_substitute(current, wp_cache.__getitem__)
        pre = to_dnf(pre_formula, theory, max_cubes)
        current = approx(pre, theory, p, states[index], k, stats)
        max_disjuncts = max(max_disjuncts, len(current.cubes))
        intermediate.append(current)
    intermediate.reverse()
    return MetaResult(
        condition=current,
        intermediate=tuple(intermediate),
        max_disjuncts=max_disjuncts,
        subsumption_drops=stats["subsumption_drops"],
        beam_prunes=stats["beam_prunes"],
    )
