"""The compiled bitset kernel for the forward phase.

The interpreted forward engine applies each guarded-update table by
walking its cases: per state, evaluate guard closures, then run the
matching effect closure — several Python frames per transfer.  For the
finite domains all three bundled clients use, the whole table can
instead be compiled *once per (command, footprint)* into a straight-line
Python function over integer bitsets:

* each abstract state is interned to an integer by the client's
  :class:`~repro.dataflow.bitset.StateCodec`;
* each guard lowers to a disjunction of ``(ones, zeros)`` mask cubes
  (parameter literals fold to constants under the bound abstraction
  ``p``, exactly mirroring ``SemanticsBinding.bind_formula``);
* each effect lowers to a keep-mask plus constant bits, shifted copies,
  per-entry ``MapRead`` tables, and conditional bits for ``BoolExpr``
  writes;
* the rows are emitted as one ``def _kernel_step(s): ...`` source
  string and compiled with :func:`compile`/``exec`` — after which a
  transfer is a single call evaluating a few integer mask expressions.

The worklist itself runs in :func:`_run_encoded`, a specialised twin
of :func:`repro.dataflow.collecting.run_collecting` over packed
``state << shift | node`` integer keys.  It preserves the interpreted
engine's observable behaviour *exactly*:

* **FIFO parity** — discovered keys are appended in the same per-pop
  edge order and drained in the same order (a growing list is the same
  queue discipline as the deque), so the pop sequence matches
  ``run_collecting`` pop for pop.
* **Witness parity** — the dict maps each key to the packed key of the
  pop that first derived it.  The deriving *edge* is reconstructed on
  demand as the first successor edge of the predecessor that maps its
  state to the derived one; that edge is necessarily the one that
  performed the insertion (any earlier matching edge would have
  inserted first — in both engines).
* **``steps`` parity** — every recorded state is popped exactly once
  and each pop applies all non-epsilon edges of its node once, so
  ``steps`` is recovered exactly as ``sum(len(states[n]) * commands(n))``.
* **Budget parity** — with a budget installed the loop ticks once per
  pop, like the interpreted loop; without one, the per-pop no-op call
  is hoisted away entirely.

Identity transfers and duplicate ``(dst, fn)`` rows are elided from
the hot successor tables (neither can ever insert anything the
remaining rows don't), and epsilon/identity hops reduce to a single
integer add of a precomputed ``dst - node`` delta.  Codecs may
additionally *narrow* their layout per abstraction footprint
(:meth:`~repro.dataflow.bitset.StateCodec.narrow`): under ``p`` the
typestate must-alias set and the provenance site sets provably stay
inside ``p``, so those bit groups vanish from the word and every mask
op shrinks.  :class:`KernelResult` decodes states, witnesses, and the
step count lazily at the observation API.  Commands whose guards or
effects do not lower (:class:`~repro.dataflow.bitset.KernelFallback`)
fall back to the interpreted bound step for that command only, wrapped
in encode/decode — bit-identity is preserved either way.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.formula import And, Bottom, Formula, Lit, Or, Top
from repro.core.semantics import (
    BoolExpr,
    Const,
    MapRead,
    Read,
    Updates,
    _identity_step,
)
from repro.dataflow.bitset import BOOL, KernelFallback, StateCodec
from repro.dataflow.collecting import CollectingResult
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.robust import budget as robust_budget

__all__ = ["KernelEngine", "KernelResult", "lower_command"]

#: Guard lowering result: a constant, or a list of ``(ones, zeros)``
#: mask cubes — the guard holds iff some cube has all ``ones`` bits set
#: and all ``zeros`` bits clear.
_Guard = Union[bool, List[Tuple[int, int]]]


# ---------------------------------------------------------------------------
# Guard lowering
# ---------------------------------------------------------------------------


def _lower_guard(formula: Formula, binding, codec: StateCodec, p) -> _Guard:
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Lit):
        literal = formula.literal
        prim = literal.prim
        location = binding.location_of(prim)
        if location is None:
            # Parameter literal: folds to a constant under ``p``, via
            # the same test ``bind_formula`` uses.
            value = bool(binding.compile_primitive_test(prim)(p, None))
            return value if literal.positive else not value
        group = codec.layout.group(location)
        if group is None:
            held = codec.missing_read(location) == binding.prim_value(prim)
            return held if literal.positive else not held
        mask, expect = group.test_bit(binding.prim_value(prim))
        want = expect if literal.positive else not expect
        return [(mask, 0)] if want else [(0, mask)]
    if isinstance(formula, And):
        cubes: List[Tuple[int, int]] = [(0, 0)]
        for arg in formula.args:
            part = _lower_guard(arg, binding, codec, p)
            if part is False:
                return False
            if part is True:
                continue
            merged = []
            for ones, zeros in cubes:
                for more_ones, more_zeros in part:
                    o, z = ones | more_ones, zeros | more_zeros
                    if o & z:
                        continue  # same bit required set and clear
                    if (o, z) not in merged:
                        merged.append((o, z))
            if not merged:
                return False
            cubes = merged
        return True if cubes == [(0, 0)] else cubes
    if isinstance(formula, Or):
        out: List[Tuple[int, int]] = []
        for arg in formula.args:
            part = _lower_guard(arg, binding, codec, p)
            if part is True:
                return True
            if part is False:
                continue
            for cube in part:
                if cube == (0, 0):
                    return True
                if cube not in out:
                    out.append(cube)
        return out if out else False
    raise KernelFallback(f"cannot lower guard: {formula!r}")


def _guard_src(cubes: List[Tuple[int, int]]) -> str:
    """Python source testing a lowered guard against local ``s``."""
    tests = []
    for ones, zeros in cubes:
        parts = []
        if ones:
            parts.append(f"(s & {ones:#x}) == {ones:#x}")
        if zeros:
            parts.append(f"not (s & {zeros:#x})")
        tests.append(" and ".join(parts) if parts else "True")
    if len(tests) == 1:
        return tests[0]
    return " or ".join(f"({t})" for t in tests)


# ---------------------------------------------------------------------------
# Effect lowering
# ---------------------------------------------------------------------------


def _effect_src(effect, binding, codec: StateCodec, p, maps_env: Dict) -> str:
    """Python source computing the effect's output word from ``s``.

    Raises :class:`KernelFallback` whenever a write cannot be proven to
    stay inside the layout or a value expression has no mask form.
    """
    if not codec.safe_effect(effect, binding, p):
        raise KernelFallback(f"effect may write outside the layout: {effect!r}")
    keep = 0
    const = 0
    pieces: List[str] = []
    for group in codec.layout.groups:
        expr = effect.value_expr_at(group.location, binding)
        if expr is None:
            keep |= group.mask
        elif isinstance(expr, Const):
            const |= group.value_bits(expr.value)
        elif isinstance(expr, Read):
            src = codec.layout.group(expr.location)
            if src is None:
                const |= group.value_bits(codec.missing_read(expr.location))
            elif src.style == group.style and src.values == group.values:
                if src.shift == group.shift:
                    pieces.append(f"(s & {src.mask:#x})")
                elif group.shift > src.shift:
                    pieces.append(
                        f"((s & {src.mask:#x}) << {group.shift - src.shift})"
                    )
                else:
                    pieces.append(
                        f"((s & {src.mask:#x}) >> {src.shift - group.shift})"
                    )
            else:
                raise KernelFallback(
                    f"incompatible copy {expr.location!r} -> {group.location!r}"
                )
        elif isinstance(expr, MapRead):
            mapping = dict(expr.mapping)
            src = codec.layout.group(expr.location)
            if src is None:
                value = codec.missing_read(expr.location)
                if value not in mapping:
                    raise KernelFallback(f"non-total MapRead: {expr!r}")
                const |= group.value_bits(mapping[value])
            else:
                table: Dict[int, int] = {}
                for value in src.domain():
                    if value not in mapping:
                        raise KernelFallback(f"non-total MapRead: {expr!r}")
                    table[src.local_code(value)] = group.value_bits(
                        mapping[value]
                    )
                name = f"_M{len(maps_env)}"
                maps_env[name] = table
                if src.shift:
                    pieces.append(
                        f"{name}[(s >> {src.shift}) & {src.local_mask:#x}]"
                    )
                else:
                    pieces.append(f"{name}[s & {src.local_mask:#x}]")
        elif isinstance(expr, BoolExpr):
            if group.style != BOOL:
                raise KernelFallback(
                    f"BoolExpr write to non-bool group {group.location!r}"
                )
            lowered = _lower_guard(expr.formula, binding, codec, p)
            if lowered is True:
                const |= group.mask
            elif lowered is not False:
                pieces.append(
                    f"({group.mask:#x} if {_guard_src(lowered)} else 0)"
                )
        else:
            raise KernelFallback(f"cannot lower value expression: {expr!r}")
    if keep == codec.layout.full_mask:
        # Every group is kept: the effect is the identity on canonical
        # (layout-only-bits) words, which is all the worklist ever holds.
        return "s"
    if keep:
        pieces.insert(0, f"(s & {keep:#x})")
    if const:
        pieces.append(f"{const:#x}")
    return " | ".join(pieces) if pieces else "0"


# ---------------------------------------------------------------------------
# Per-command compilation
# ---------------------------------------------------------------------------


def lower_command(compiled, codec: StateCodec, p) -> Callable[[int], int]:
    """Compile one command's case table into an ``int -> int`` step.

    Mirrors ``CompiledCommand._compile_bound`` row for row: cases whose
    guards fold to ``False`` under ``p`` are dropped, the table is
    truncated at the first ``True`` guard, and the last surviving guard
    is elided (tables are checked total at construction).  Raises
    :class:`KernelFallback` when any surviving row resists lowering.
    """
    binding = compiled.binding
    rows: List[Tuple[Optional[List[Tuple[int, int]]], object]] = []
    for case in compiled.cases:
        guard = _lower_guard(case.guard, binding, codec, p)
        if guard is False:
            continue
        rows.append((None if guard is True else guard, case.effect))
        if guard is True:
            break
    if not rows:
        raise KernelFallback("all guards folded to False (non-total table?)")
    rows[-1] = (None, rows[-1][1])

    maps_env: Dict[str, Dict[int, int]] = {}
    emitted: List[Tuple[Optional[List[Tuple[int, int]]], str]] = []
    for cubes, effect in rows:
        if isinstance(effect, Updates) and not effect.writes:
            emitted.append((cubes, "s"))
        else:
            emitted.append((cubes, _effect_src(effect, binding, codec, p, maps_env)))

    if all(expr == "s" for _cubes, expr in emitted):
        # The whole table folded to the identity under ``p`` (common
        # once narrowing drops the bits a command would have touched):
        # let the worklist treat the edge as an epsilon hop.
        return _identity_step

    lines = ["def _kernel_step(s):"]
    for cubes, expr in emitted[:-1]:
        lines.append(f"    if {_guard_src(cubes)}:")
        lines.append(f"        return {expr}")
    lines.append(f"    return {emitted[-1][1]}")
    namespace: Dict[str, object] = dict(maps_env)
    exec(compile("\n".join(lines), "<repro-kernel>", "exec"), namespace)
    return namespace["_kernel_step"]


class _KernelStep:
    """The ``Step`` protocol object handed to ``run_collecting``: maps
    commands to compiled ``int -> int`` functions for one abstraction."""

    __slots__ = ("_engine", "_p", "_resolved")

    def __init__(self, engine: "KernelEngine", p):
        self._engine = engine
        self._p = p
        self._resolved: Dict[object, Callable[[int], int]] = {}

    def for_command(self, command) -> Callable[[int], int]:
        fn = self._resolved.get(command)
        if fn is None:
            fn = self._resolved[command] = self._engine.bound_step(
                command, self._p
            )
        return fn

    def __call__(self, command, bits: int) -> int:
        return self.for_command(command)(bits)


def _build_edge_cache(cfg, kstep: "_KernelStep") -> Dict[str, object]:
    """Per-``(engine, p)`` successor tables for :func:`_run_encoded`.

    ``full`` keeps every original edge in order — witness and ``steps``
    reconstruction need them.  The loop dispatches on three parallel
    per-node arrays, ordered by measured pop frequency:

    * ``fns[node]``/``dsts[node]`` — the node has exactly one compiled
      transfer successor (``fns`` is ``None`` otherwise);
    * ``deltas[node]`` — exactly one epsilon/identity successor, stored
      as the packed-key delta ``dst - node`` (``None`` otherwise);
    * ``rest[node]`` — everything else: a tuple of deltas, or a list
      mixing deltas and ``(fn, dst)`` pairs (empty for exit nodes).

    Identity steps (including whole tables that fold to the identity
    under ``p``) become deltas, and later duplicate ``(dst, fn)`` rows
    are dropped: in the interpreted loop such a row always finds its
    output already present (the earlier identical row inserted it in
    the same pop), so eliding it changes no insertion, no witness, and
    no pop — only the per-pop work.
    """
    resolve = kstep.for_command
    fns: List[object] = []
    dsts: List[int] = []
    deltas: List[Optional[int]] = []
    rest: List[object] = []
    full: List[Tuple] = []
    counts: List[int] = []
    for node in range(cfg.node_count):
        frows = []
        count = 0
        for edge in cfg.successors(node):
            if edge.command is None:
                fn = None
            else:
                fn = resolve(edge.command)
                count += 1
            frows.append((fn, edge.dst, edge))
        full.append(tuple(frows))
        counts.append(count)
        entries: List[object] = []
        markers = set()
        for fn, dst, _edge in frows:
            if fn is _identity_step:
                fn = None
            marker = (dst, None if fn is None else id(fn))
            if marker in markers:
                continue
            markers.add(marker)
            entries.append(dst - node if fn is None else (fn, dst))
        if len(entries) == 1 and type(entries[0]) is tuple:
            fns.append(entries[0][0])
            dsts.append(entries[0][1])
            deltas.append(None)
            rest.append(())
        elif len(entries) == 1:
            fns.append(None)
            dsts.append(0)
            deltas.append(entries[0])
            rest.append(())
        elif entries and all(type(entry) is int for entry in entries):
            fns.append(None)
            dsts.append(0)
            deltas.append(None)
            rest.append(tuple(entries))
        else:
            fns.append(None)
            dsts.append(0)
            deltas.append(None)
            rest.append(entries)
    shift = max(1, cfg.node_count - 1).bit_length()
    return {
        "fns": fns,
        "dsts": dsts,
        "deltas": deltas,
        "rest": rest,
        "full": tuple(full),
        "counts": tuple(counts),
        "shift": shift,
        "mask": (1 << shift) - 1,
    }


def _run_encoded(cache: Dict[str, object], entry_key: int) -> Dict[int, Optional[int]]:
    """The packed-key worklist: ``key -> packed predecessor key`` (the
    entry maps to ``None``).

    Single-successor and all-epsilon nodes insert through
    ``dict.setdefault``: with one edge — or several distinct deltas —
    no two entries of one pop can produce the same key, so
    ``setdefault(...) is item`` holds exactly for fresh insertions.
    Mixed nodes use the two-step membership test instead: a compiled
    transfer can coincide with a sibling edge's output, and the
    identity check would then re-enqueue the key.
    """
    fns = cache["fns"]
    dsts = cache["dsts"]
    deltas = cache["deltas"]
    rest = cache["rest"]
    shift = cache["shift"]
    mask = cache["mask"]
    seen: Dict[int, Optional[int]] = {entry_key: None}
    setdefault = seen.setdefault
    pending = [entry_key]
    append = pending.append
    budget = robust_budget.current_budget()
    if budget is None:
        for item in pending:
            node = item & mask
            fn = fns[node]
            if fn is not None:
                key = fn(item >> shift) << shift | dsts[node]
                if setdefault(key, item) is item:
                    append(key)
                continue
            delta = deltas[node]
            if delta is not None:
                key = item + delta
                if setdefault(key, item) is item:
                    append(key)
                continue
            rows = rest[node]
            if type(rows) is tuple:
                for delta in rows:
                    key = item + delta
                    if setdefault(key, item) is item:
                        append(key)
            else:
                for row in rows:
                    if type(row) is int:
                        key = item + row
                    else:
                        key = row[0](item >> shift) << shift | row[1]
                    if key not in seen:
                        seen[key] = item
                        append(key)
    else:
        # Same body, with the interpreted loop's once-per-pop budget
        # tick — identical charge counts under an active budget.
        tick = budget.tick
        for item in pending:
            tick()
            node = item & mask
            fn = fns[node]
            if fn is not None:
                key = fn(item >> shift) << shift | dsts[node]
                if setdefault(key, item) is item:
                    append(key)
                continue
            delta = deltas[node]
            if delta is not None:
                key = item + delta
                if setdefault(key, item) is item:
                    append(key)
                continue
            rows = rest[node]
            if type(rows) is tuple:
                for delta in rows:
                    key = item + delta
                    if setdefault(key, item) is item:
                        append(key)
            else:
                for row in rows:
                    if type(row) is int:
                        key = item + row
                    else:
                        key = row[0](item >> shift) << shift | row[1]
                    if key not in seen:
                        seen[key] = item
                        append(key)
    return seen


class KernelResult:
    """A lazily-decoded collecting fixpoint.

    Wraps the packed ``key -> predecessor key`` fixpoint and exposes
    the interpreted result's observation API over decoded client
    states.  Everything derived — node tables, witness edges, the
    ``steps`` count — is reconstructed on demand: the hottest consumers
    (micro-benchmarks, cache probes) never touch most nodes, and the
    TRACER driver only reads the few Observe nodes of each query group.
    """

    __slots__ = (
        "codec",
        "cfg",
        "entry_state",
        "_seen",
        "_cache",
        "_steps",
        "_tables",
        "_by_node",
    )

    def __init__(self, seen, cache, codec: StateCodec, cfg, entry_state):
        self._seen = seen
        self._cache = cache
        self.codec = codec
        self.cfg = cfg
        self.entry_state = entry_state
        self._steps: Optional[int] = None
        self._tables: Optional[Dict[int, Dict[int, Optional[int]]]] = None
        self._by_node: Dict[int, Dict[object, int]] = {}

    @property
    def steps(self) -> int:
        """Transfer applications, recovered exactly: each recorded
        state is popped once, and a pop applies every non-epsilon edge
        of its node once."""
        if self._steps is None:
            counts = self._cache["counts"]
            mask = self._cache["mask"]
            self._steps = sum(counts[key & mask] for key in self._seen)
        return self._steps

    def _node_tables(self) -> Dict[int, Dict[int, Optional[int]]]:
        tables = self._tables
        if tables is None:
            shift = self._cache["shift"]
            mask = self._cache["mask"]
            tables = self._tables = {}
            for key, pred in self._seen.items():
                node = key & mask
                table = tables.get(node)
                if table is None:
                    table = tables[node] = {}
                table[key >> shift] = pred
        return tables

    def _witness_edge(self, pred_node: int, pred_bits: int, node: int, bits: int):
        """The edge that first derived ``(node, bits)`` from the
        predecessor pop: the first successor edge mapping
        ``pred_bits`` to ``bits`` at ``dst == node`` — any earlier
        matching edge would have performed the insertion instead, in
        this engine and the interpreted one alike."""
        for fn, dst, edge in self._cache["full"][pred_node]:
            if dst == node and (pred_bits if fn is None else fn(pred_bits)) == bits:
                return edge
        raise AssertionError(
            f"no witness edge from node {pred_node} to {node}"
        )

    def _node_table(self, node: int) -> Dict[object, int]:
        table = self._by_node.get(node)
        if table is None:
            decode = self.codec.decode
            table = self._by_node[node] = {
                decode(bits): bits
                for bits in self._node_tables().get(node, ())
            }
        return table

    def states_at(self, node: int) -> Tuple[object, ...]:
        return tuple(sorted(self._node_table(node), key=repr))

    def exit_states(self) -> Tuple[object, ...]:
        return self.states_at(self.cfg.exit)

    def states_before_observe(self, label: str):
        out: List[Tuple[int, object]] = []
        for edge_label, edges in self.cfg.observe_edges().items():
            if edge_label != label:
                continue
            for edge in edges:
                for state in self.states_at(edge.src):
                    out.append((edge.src, state))
        return tuple(out)

    def trace_to(self, node: int, state: object):
        """Witness trace for a decoded state: re-encode via the node
        table (``KeyError`` when never derived, like the interpreted
        result) and walk the packed witness links."""
        shift = self._cache["shift"]
        mask = self._cache["mask"]
        bits = self._node_table(node)[state]
        seen = self._seen
        commands: List[object] = []
        key = bits << shift | node
        while True:
            pred = seen[key]
            if pred is None:
                break
            pred_node = pred & mask
            pred_bits = pred >> shift
            edge = self._witness_edge(pred_node, pred_bits, key & mask, key >> shift)
            if edge.command is not None:
                commands.append(edge.command)
            key = pred
        commands.reverse()
        return tuple(commands)

    def materialize(self) -> CollectingResult:
        """Eagerly decode everything into a plain
        :class:`CollectingResult` (tests compare engines through this)."""
        shift = self._cache["shift"]
        mask = self._cache["mask"]
        decode = self.codec.decode
        states: Dict[int, Dict[object, object]] = {}
        for node, table in self._node_tables().items():
            out: Dict[object, object] = {}
            for bits, pred in table.items():
                if pred is None:
                    out[decode(bits)] = None
                else:
                    pred_node = pred & mask
                    pred_bits = pred >> shift
                    edge = self._witness_edge(pred_node, pred_bits, node, bits)
                    out[decode(bits)] = (pred_node, decode(pred_bits), edge)
            states[node] = out
        return CollectingResult(
            cfg=self.cfg,
            entry_state=self.entry_state,
            states=states,
            steps=self.steps,
        )


#: Mirrors ``engines._MAX_STEP_CACHES``: bound on per-step edge caches
#: and on per-footprint narrowed sub-engines.
_MAX_STEP_CACHES = 256


class KernelEngine:
    """Drop-in replacement for :class:`CollectingEngine` running the
    worklist over bitset-encoded states.

    Wraps the client's existing engine: steps that are not the bound
    ``BoundStep`` of this engine's semantics (or entry states the codec
    refuses) delegate to the wrapped engine unchanged.  Compiled
    ``int -> int`` steps are cached per ``(command,
    specialisation_key(p))`` — the same footprint key the interpreted
    specialisation cache uses, so abstractions agreeing on a command's
    parameter footprint share one compiled function.
    """

    def __init__(self, inner, codec: StateCodec, semantics, _parent=None):
        self.inner = inner
        self.cfg = inner.cfg
        self.codec = codec
        self.semantics = semantics
        self._root: "KernelEngine" = self if _parent is None else _parent
        self._bound: Dict[Tuple[object, object], Callable[[int], int]] = {}
        self._steps: Dict[object, _KernelStep] = {}
        self._edge_caches: Dict[_KernelStep, Dict] = {}
        if _parent is None:
            self.hits = 0
            self.misses = 0
            self.fallbacks = 0
            self._narrowed: Dict[object, "KernelEngine"] = {}
            self._prepared: Dict[object, Tuple[StateCodec, Dict]] = {}
            obs_metrics.register_cache(f"kernel.{semantics.metrics_name}", self)

    def bound_step(self, command, p) -> Callable[[int], int]:
        """The compiled (or fallback) ``int -> int`` step for one
        command under abstraction ``p``."""
        root = self._root
        compiled = self.semantics.compiled(command)
        if compiled._all_identity:
            return _identity_step
        key = (command, compiled.specialisation_key(p))
        fn = self._bound.get(key)
        if fn is not None:
            root.hits += 1
            return fn
        root.misses += 1
        with obs.span(
            "kernel_compile",
            phase="forward",
            client=self.semantics.metrics_name,
            command=str(command),
        ) as span:
            try:
                fn = lower_command(compiled, self.codec, p)
                span.set(fallback=False)
            except KernelFallback as reason:
                inner = compiled.bind(p)
                codec = self.codec

                def fn(bits, _inner=inner, _codec=codec):
                    return _codec.encode(_inner(_codec.decode(bits)))

                span.set(fallback=True, reason=str(reason))
                root.fallbacks += 1
        self._bound[key] = fn
        return fn

    def _for_footprint(self, p) -> "KernelEngine":
        """The engine whose codec layout matches ``p``: ``self`` when
        the codec does not narrow, else a cached sub-engine built over
        ``codec.narrow(p)``.  Sub-engines share the root's counters and
        skip metrics registration; their compiled-step caches stay
        keyed by the same footprint keys, which is sound because every
        abstraction reaching one sub-engine shares its narrow key."""
        narrow_key = self.codec.narrow_key(p)
        if narrow_key is None:
            return self
        engine = self._narrowed.get(narrow_key)
        if engine is None:
            if len(self._narrowed) > _MAX_STEP_CACHES:
                self._narrowed.clear()
            engine = self._narrowed[narrow_key] = KernelEngine(
                self.inner, self.codec.narrow(p), self.semantics, _parent=self
            )
        return engine

    def _prepare(self, p) -> Tuple[StateCodec, Dict]:
        """Resolve, once per abstraction, everything ``run`` needs on
        the hot path: the (possibly narrowed) codec and the built edge
        cache.  Cached at the root keyed by ``p`` itself."""
        engine = self._for_footprint(p)
        kstep = engine._steps.get(p)
        if kstep is None:
            kstep = engine._steps[p] = _KernelStep(engine, p)
        cache = engine._edge_caches.get(kstep)
        if cache is None:
            if len(engine._edge_caches) > _MAX_STEP_CACHES:
                engine._edge_caches.clear()
            cache = engine._edge_caches[kstep] = _build_edge_cache(
                engine.cfg, kstep
            )
        if len(self._prepared) > _MAX_STEP_CACHES:
            self._prepared.clear()
        prepared = self._prepared[p] = (engine.codec, cache)
        return prepared

    def run(self, step, entry_state):
        semantics = getattr(step, "_semantics", None)
        if semantics is not self.semantics:
            return self.inner.run(step, entry_state)
        p = step._p
        prepared = self._prepared.get(p)
        if prepared is None:
            prepared = self._prepare(p)
        codec, cache = prepared
        try:
            entry_bits = codec.encode(entry_state)
        except ValueError:
            return self.inner.run(step, entry_state)
        entry_key = entry_bits << cache["shift"] | self.cfg.entry
        seen = _run_encoded(cache, entry_key)
        result = KernelResult(seen, cache, codec, self.cfg, entry_state)
        if obs.active():
            obs.event(
                "kernel_exec",
                client=self.semantics.metrics_name,
                steps=result.steps,
                states=len(seen),
            )
        return result
