"""Automatic synthesis of backward transfer functions.

The paper closes (Section 8) noting that "manually defining the
transfer functions of the meta-analysis can be tedious and
error-prone" and proposes "a general recipe for synthesizing these
functions automatically from a given abstract domain and parametric
analysis".  This module implements that recipe for the (common) case
where abstract states are *location-valued*: the pair ``(p, d)`` is a
finite assignment of values to locations (variables, fields, sites,
boolean facts), and every primitive formula reads a single location.

The recipe:

1. the client declares, per command, a **footprint** — the set of
   location groups the command reads or writes (always finitely many
   and small: a heap command touches at most three locations);
2. to compute ``wp(command, prim)``, enumerate every assignment of
   values to ``footprint(command) + {group(prim)}``, instantiate a
   concrete pair ``(p, d)``, run the *forward* transfer function once,
   and test whether ``prim`` holds afterwards;
3. the weakest precondition is the disjunction of the assignments that
   pass, each rendered as a conjunction of literals.

Correctness needs exactly the footprint contract: the post-value of
``prim``'s location must be a function of the footprint locations'
pre-values.  The test suite cross-checks every synthesized function
against requirement (2) of Section 4 by full enumeration, and against
the handwritten Figures 10/11 functions semantically.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Sequence, Tuple

from repro.core.formula import (
    Formula,
    Lit,
    Literal,
    Primitive,
    Theory,
    conj,
    disj,
    merge_cubes,
    simplify,
    to_dnf,
)
from repro.core.meta import BackwardMetaAnalysis
from repro.core.parametric import ParametricAnalysis
from repro.lang.ast import AtomicCommand

Group = Hashable
Assignment = Dict[Group, object]


class FootprintModel:
    """Client interface describing the location structure of a domain."""

    def groups_of_command(self, command: AtomicCommand) -> FrozenSet[Group]:
        """The location groups ``command`` reads or writes.  An empty
        set declares the command a no-op for the analysis."""
        raise NotImplementedError

    def group_of_primitive(self, prim: Primitive) -> Group:
        """The (single) location group ``prim`` reads."""
        raise NotImplementedError

    def group_values(self, group: Group) -> Tuple[object, ...]:
        """The finitely many values the group's location can take."""
        raise NotImplementedError

    def group_literal(self, group: Group, value: object) -> Literal:
        """The literal asserting ``location = value``."""
        raise NotImplementedError

    def instantiate(self, assignment: Assignment) -> Optional[Tuple[object, object]]:
        """Build a concrete ``(p, d)`` pair realising ``assignment``
        (un-assigned locations take an arbitrary baseline), or ``None``
        when the assignment is unsatisfiable (no such pair exists)."""
        raise NotImplementedError


def synthesize_wp(
    analysis: ParametricAnalysis,
    theory: Theory,
    model: FootprintModel,
    command: AtomicCommand,
    prim: Primitive,
) -> Formula:
    """Synthesize the weakest precondition of ``command`` w.r.t. ``prim``."""
    groups = sorted(
        model.groups_of_command(command) | {model.group_of_primitive(prim)},
        key=repr,
    )
    value_spaces = [model.group_values(group) for group in groups]
    passing = []
    for values in itertools.product(*value_spaces):
        assignment = dict(zip(groups, values))
        pair = model.instantiate(assignment)
        if pair is None:
            continue
        p, d = pair
        post = analysis.transfer(command, p, d)
        if theory.holds(prim, p, post):
            passing.append(
                conj(
                    *(
                        Lit(model.group_literal(group, value))
                        for group, value in zip(groups, values)
                    )
                )
            )
    raw = to_dnf(disj(*passing), theory)
    # The raw result enumerates one cube per passing assignment; merge
    # exhaustive case splits away so downstream DNF work stays small
    # (for the escape domain this recovers formulas of the same order
    # as the handwritten Figure 11 ones).
    return merge_cubes(simplify(raw, theory), theory).to_formula()


class SynthesizedMeta(BackwardMetaAnalysis):
    """A backward meta-analysis whose transfer functions are synthesized
    on demand from the forward analysis (and memoised via
    :meth:`wp_cached`, so each (command, primitive) pair is enumerated
    once per run)."""

    def __init__(
        self,
        analysis: ParametricAnalysis,
        theory: Theory,
        model: FootprintModel,
    ):
        self.analysis = analysis
        self.theory = theory
        self.model = model

    def wp_primitive(self, command: AtomicCommand, prim: Primitive) -> Formula:
        return synthesize_wp(self.analysis, self.theory, self.model, command, prim)
