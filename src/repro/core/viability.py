"""The ``viable`` abstraction store of Algorithm 1.

TRACER tracks the set of abstractions that may still prove the query.
A failure condition learned by the backward meta-analysis is a DNF
formula over parameter primitives and state primitives; evaluated at
the (fixed) initial abstract state ``dI`` it denotes the set of
*unviable* abstractions ``{p | (p, dI) in gamma(condition)}``
(Algorithm 1, line 14).  This store keeps ``viable`` implicitly as a
CNF over boolean parameter variables:

* every cube of the failure condition whose state literals hold at
  ``dI`` eliminates the abstractions satisfying its parameter
  literals, so its negation — a clause of negated parameter literals —
  is conjoined onto the store (line 15);
* choosing a minimum viable abstraction (line 8) is MinCostSAT;
* emptiness (line 5) is unsatisfiability.

Parameter primitives are mapped to SAT variables by the client theory
via :meth:`ParamTheory.param_var`; an abstraction is reconstructed
from a model as the set of true variables, which matches both clients
(tracked-variable sets; ``L``-mapped site sets).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.core.formula import Cube, Dnf, Theory, evaluate_literal
from repro.core.minsat import Clause, MinCostSat


class ParamTheory(Theory):
    """A theory whose parameter primitives map onto boolean variables."""

    def param_var(self, prim) -> Tuple[object, bool]:
        """Return ``(variable, polarity)`` for a parameter primitive:
        the primitive holds of ``p`` iff ``variable in p`` equals
        ``polarity``."""
        raise NotImplementedError


class ViabilityStore:
    """Implicit representation of the viable-abstraction set."""

    def __init__(self, theory: ParamTheory, d_init: object):
        self._theory = theory
        self._d_init = d_init
        self._clauses: List[Clause] = []
        self._impossible = False

    def copy(self) -> "ViabilityStore":
        dup = ViabilityStore(self._theory, self._d_init)
        dup._clauses = list(self._clauses)
        dup._impossible = self._impossible
        return dup

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        return tuple(self._clauses)

    def add_failure_condition(self, condition: Dnf) -> Tuple[Clause, ...]:
        """Conjoin ``not condition|dI`` onto the store; returns the
        clauses actually derived (used by the group driver to decide
        how to split query groups)."""
        added: List[Clause] = []
        for cube in condition.cubes:
            clause = self._clause_of_cube(cube)
            if clause is None:
                continue
            if not clause:
                self._impossible = True
            added.append(clause)
            self._clauses.append(clause)
        return tuple(added)

    def warm_start(
        self,
        clauses: Iterable[Clause],
        universe: Optional[Iterable[object]] = None,
    ) -> Tuple[Tuple[Clause, ...], Tuple[Clause, ...]]:
        """Seed the store with clauses learned by a *previous* search
        (the knowledge-store warm-start path; see
        :mod:`repro.serve.store`), so abstractions refuted back then
        are never chosen — and never forward-run — again.

        Unlike :meth:`add_clauses` (the journal replay path, whose
        clauses are integrity-checked round by round), seeded clauses
        arrive from outside this search, so they are *validated* before
        they constrain anything: a clause naming a parameter variable
        outside ``universe`` (the current parameter space) is dropped —
        on a lightly-edited program such a clause could silently mask
        viable abstractions, or with a positive orphan literal declare
        the query impossible outright.  When ``universe`` is ``None``
        the space is unknown and *every* clause is dropped (seeding is
        an optimisation; refusing it is always sound).

        Returns ``(seeded, dropped)``."""
        seeded: List[Clause] = []
        dropped: List[Clause] = []
        known = None if universe is None else set(universe)
        for clause in clauses:
            if known is None or any(var not in known for var, _sign in clause):
                dropped.append(clause)
                continue
            seeded.append(clause)
        self.add_clauses(seeded)
        return tuple(seeded), tuple(dropped)

    def add_clauses(self, clauses: Iterable[Clause]) -> Tuple[Clause, ...]:
        """Conjoin already-derived clauses onto the store — the journal
        replay path: a resumed search re-applies the clauses recorded
        by the interrupted run instead of re-deriving them from
        counterexample traces.  Mirrors the bookkeeping of
        :meth:`add_failure_condition` (an empty clause marks the store
        impossible) and returns the clauses in application order so the
        caller can recompute group-split signatures."""
        added: List[Clause] = []
        for clause in clauses:
            if not clause:
                self._impossible = True
            added.append(clause)
            self._clauses.append(clause)
        return tuple(added)

    def _clause_of_cube(self, cube: Cube) -> Optional[Clause]:
        """Negate one eliminated cube into a clause, or ``None`` when
        the cube eliminates nothing (a state literal fails at ``dI``)."""
        literals = []
        for l in cube:
            if self._theory.is_param(l.prim):
                var, polarity = self._theory.param_var(l.prim)
                asserted = polarity if l.positive else not polarity
                literals.append((var, not asserted))
            else:
                # State literal: evaluated at dI (state primitives do
                # not inspect the abstraction, so any p works here).
                if not evaluate_literal(l, self._theory, frozenset(), self._d_init):
                    return None
        return frozenset(literals)

    def _solver(self) -> MinCostSat:
        solver = MinCostSat()
        for clause in self._clauses:
            solver.add_clause(clause)
        return solver

    def choose_minimum(self) -> Optional[FrozenSet[object]]:
        """A minimum-cost viable abstraction, or ``None`` when the
        viable set is empty (the query is impossible to prove)."""
        if self._impossible:
            return None
        return self._solver().solve()

    def excludes(self, p: FrozenSet[object]) -> bool:
        """Whether abstraction ``p`` is already eliminated — used to
        assert TRACER's progress guarantee after every iteration."""
        if self._impossible:
            return True
        for clause in self._clauses:
            if not any((var in p) == sign for var, sign in clause):
                return True
        return False
