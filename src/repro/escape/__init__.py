"""The parametric thread-escape analysis client (Figures 5, 6, 11).

Abstract states map local variables and fields-of-local-objects to one
of three abstract values: ``L`` (thread-local objects), ``E``
(possibly escaping objects, incl. null), ``N`` (null).  The
abstraction maps each allocation site to ``L`` or ``E``; cost is the
number of ``L``-mapped sites.
"""

from repro.escape.domain import EscSchema, EscState, LOC, ESC, NIL
from repro.escape.analysis import EscapeAnalysis
from repro.escape.meta import (
    EscapeMeta,
    EscapeTheory,
    FieldIs,
    SiteIs,
    VarIs,
)
from repro.escape.client import EscapeClient, EscapeQuery
from repro.escape.synth import EscapeFootprint, synthesized_escape_meta

__all__ = [
    "ESC",
    "EscSchema",
    "EscState",
    "EscapeAnalysis",
    "EscapeClient",
    "EscapeFootprint",
    "EscapeMeta",
    "EscapeQuery",
    "EscapeTheory",
    "FieldIs",
    "LOC",
    "NIL",
    "SiteIs",
    "VarIs",
    "synthesized_escape_meta",
]
