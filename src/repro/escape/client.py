"""TRACER client for the thread-escape analysis.

A query ``(pc, v)`` (Section 6) asks whether the object ``v`` denotes
at the field/array access labelled ``pc`` is thread-local.  The query
holds when ``d(v) != E`` in every state reaching ``pc``, so::

    not(q) = v.E
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.formula import Formula, lit
from repro.core.selfcheck import sample_pairs, sample_subsets
from repro.core.tracer import TracerClient
from repro.dataflow.engines import ForwardResult, engine_for
from repro.escape.analysis import EscapeAnalysis
from repro.escape.domain import ESC, LOC, NIL, EscSchema
from repro.escape.kernel import EscapeCodec
from repro.escape.meta import EscapeMeta, FieldIs, SiteIs, VarIs
from repro.lang.ast import Program
from repro.lang.cfg import Cfg, build_cfg


@dataclass(frozen=True)
class EscapeQuery:
    """Prove that at ``Observe(label)`` variable ``var`` is not ``E``."""

    label: str
    var: str

    def __str__(self) -> str:
        return f"escape:{self.label}:{self.var}"


class EscapeClient(TracerClient):
    """Binds a program and its site/variable/field universes."""

    def __init__(
        self,
        program: Program,
        schema: EscSchema,
        sites: FrozenSet[str],
    ):
        """``program`` is a structured program (intraprocedural
        collecting engine) or a :class:`repro.dataflow.interproc.ProcGraph`
        (interprocedural tabulation engine)."""
        self.program = program
        self.engine = engine_for(program)
        self.cfg: Optional[Cfg] = getattr(self.engine, "cfg", None)
        self.schema = schema
        self.analysis = EscapeAnalysis(schema, sites)
        self.meta = EscapeMeta(self.analysis)

    def fail_condition(self, query: EscapeQuery) -> Formula:
        return lit(VarIs(query.var, ESC))

    def cache_key(self):
        """Forward-run cache identity; the base token distinguishes
        client instances (and hence programs)."""
        return ("escape", TracerClient.cache_key(self))

    def run_forward(self, p: FrozenSet[str]) -> ForwardResult:
        return self.engine.run(
            self.analysis.semantics.bound_step(p),
            self.analysis.initial_state(),
        )

    def _kernel_codec(self):
        """Bitset layout for ``use_engine("compiled")``: one one-hot
        L/E/N group per schema name."""
        return EscapeCodec(self.schema)

    def selfcheck_space(self):
        """Primitives and ``(p, d)`` samples for ``repro selfcheck``;
        exhaustive when the site/state universes are small."""
        sites = sorted(self.analysis.param_space.keys)
        prims = []
        for site in sites:
            prims.extend(SiteIs(site, value) for value in (LOC, ESC))
        for var in self.schema.locals:
            prims.extend(VarIs(var, value) for value in (LOC, ESC, NIL))
        for fld in self.schema.fields:
            prims.extend(FieldIs(fld, value) for value in (LOC, ESC, NIL))
        return prims, sample_pairs(
            sample_subsets(sites), self.schema.all_states()
        )

    # counterexamples() is inherited from TracerClient.
