"""Abstract states of the thread-escape analysis (Figure 5).

``D = (L + F) -> {L, E, N}``: every local variable and every field (of
``L``-summarised objects) is bound to an abstract location.  The
``esc`` operation models the information loss when a local object is
published: locals become ``E`` (unless null), fields reset to ``N``.

States are immutable; a shared :class:`EscSchema` fixes the variable
and field universes so states can be stored compactly as value tuples.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

LOC = "L"
ESC = "E"
NIL = "N"

VALUES = (LOC, ESC, NIL)


class EscSchema:
    """The (ordered) universes of local variables and fields."""

    __slots__ = ("locals", "fields", "_index")

    def __init__(self, locals_: Iterable[str], fields: Iterable[str]):
        self.locals: Tuple[str, ...] = tuple(sorted(set(locals_)))
        self.fields: Tuple[str, ...] = tuple(sorted(set(fields)))
        overlap = set(self.locals) & set(self.fields)
        if overlap:
            raise ValueError(f"names used as both local and field: {sorted(overlap)}")
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.locals + self.fields)
        }

    @property
    def names(self) -> Tuple[str, ...]:
        return self.locals + self.fields

    def is_local(self, name: str) -> bool:
        return name in self._index and self._index[name] < len(self.locals)

    def is_field(self, name: str) -> bool:
        return name in self._index and self._index[name] >= len(self.locals)

    def index(self, name: str) -> int:
        return self._index[name]

    def initial(self) -> "EscState":
        """Everything starts null."""
        return EscState(self, (NIL,) * len(self.names))

    def state(self, bindings: Mapping[str, str]) -> "EscState":
        """Build a state from explicit bindings; unmentioned names are ``N``."""
        values = [NIL] * len(self.names)
        for name, value in bindings.items():
            if value not in VALUES:
                raise ValueError(f"not an abstract value: {value!r}")
            values[self.index(name)] = value
        return EscState(self, tuple(values))

    def all_states(self):
        """Enumerate the full (exponential) state space — test oracles only."""
        import itertools

        for combo in itertools.product(VALUES, repeat=len(self.names)):
            yield EscState(self, combo)


class EscState:
    """An immutable abstract state over a fixed schema."""

    __slots__ = ("schema", "values", "_hash")

    def __init__(self, schema: EscSchema, values: Tuple[str, ...]):
        self.schema = schema
        self.values = values
        self._hash = hash(values)

    def get(self, name: str) -> str:
        return self.values[self.schema.index(name)]

    def set(self, name: str, value: str) -> "EscState":
        index = self.schema.index(name)
        if self.values[index] == value:
            return self
        values = list(self.values)
        values[index] = value
        return EscState(self.schema, tuple(values))

    def esc(self) -> "EscState":
        """``esc(d)`` of Figure 5: non-null locals to ``E``, fields to ``N``."""
        local_count = len(self.schema.locals)
        values = [
            (NIL if v == NIL else ESC) if i < local_count else NIL
            for i, v in enumerate(self.values)
        ]
        return EscState(self.schema, tuple(values))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, EscState)
            and self.schema is other.schema
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}->{value}"
            for name, value in zip(self.schema.names, self.values)
            if value != NIL
        )
        return f"[{inner}]"
