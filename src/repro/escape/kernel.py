"""Bitset codec for the thread-escape domain.

Layout: one one-hot three-bit group (``L``/``E``/``N``) per schema
name, locals first then fields, matching ``EscSchema.names`` order.
The domain is total over the schema, so there are no outside-layout
locations to default; any write outside the schema falls back to the
interpreted step (which raises the same ``KeyError`` the schema would).
"""

from __future__ import annotations

from repro.core.semantics import Updates
from repro.dataflow.bitset import BitsetLayout, StateCodec, onehot_group
from repro.escape.analysis import Esc
from repro.escape.domain import VALUES, EscSchema, EscState

__all__ = ["EscapeCodec"]


class EscapeCodec(StateCodec):
    """Encodes ``EscState`` over a fixed schema.

    Decoded states are built on the codec's own schema object —
    ``EscState`` equality requires schema identity, so the codec must
    be constructed with the *client's* schema.
    """

    __slots__ = ("schema", "_value_bits")

    def __init__(self, schema: EscSchema):
        specs = [onehot_group(("var", name), VALUES) for name in schema.locals]
        specs.extend(
            onehot_group(("field", name), VALUES) for name in schema.fields
        )
        super().__init__(BitsetLayout(specs))
        self.schema = schema
        # Per-name value -> absolute-bit tables, in schema.names order.
        self._value_bits = tuple(
            {value: group.value_bits(value) for value in VALUES}
            for group in self.layout.groups
        )

    def encode_state(self, state: EscState) -> int:
        bits = 0
        for table, value in zip(self._value_bits, state.values):
            bits |= table[value]
        return bits

    def decode_state(self, bits: int) -> EscState:
        return EscState(
            self.schema,
            tuple(group.decode(bits) for group in self.layout.groups),
        )

    def safe_effect(self, effect, binding, p) -> bool:
        if isinstance(effect, Esc):
            return True
        if isinstance(effect, Updates):
            return all(location in self.layout for location, _ in effect.writes)
        return False
