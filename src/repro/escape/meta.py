"""Backward meta-analysis for the thread-escape analysis (Figure 11).

Primitive formulas over pairs ``(p, d)``:

* ``SiteIs(h, o)`` with ``o in {L, E}`` — the abstraction maps ``h``
  to ``o`` (a parameter primitive, written ``h.o`` in the paper);
* ``VarIs(v, o)`` / ``FieldIs(f, o)`` with ``o in {L, E, N}`` — the
  state binds the local/field to ``o`` (``v.o`` / ``f.o``).

Weakest preconditions are no longer written here at all: the forward
case tables in :mod:`repro.escape.analysis` are the single source of
truth, and :class:`EscapeMeta` delegates to the generic guard-by-guard
derivation of :mod:`repro.core.semantics`.  The derived formulas are
semantically equal to Figure 11 (e.g. for ``g = v`` and a local
``u != v``::

    wp(u.E) = u.E | (v.L & u.L)
    wp(u.N) = u.N
    wp(f.N) = f.N | v.L

after DNF simplification) and are verified exhaustively against the
forward semantics in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.formula import ExclusiveValueTheory, Formula, Primitive
from repro.core.meta import BackwardMetaAnalysis
from repro.core.viability import ParamTheory
from repro.escape.domain import ESC, LOC, VALUES, EscState
from repro.lang.ast import AtomicCommand


@dataclass(frozen=True)
class SiteIs(Primitive):
    """``p(h) = o`` — written ``h.o`` in the paper."""

    site: str
    value: str

    def __str__(self) -> str:
        return f"{self.site}.{self.value}"


@dataclass(frozen=True)
class VarIs(Primitive):
    """``d(v) = o`` — written ``v.o`` in the paper."""

    var: str
    value: str

    def __str__(self) -> str:
        return f"{self.var}.{self.value}"


@dataclass(frozen=True)
class FieldIs(Primitive):
    """``d(f) = o`` — written ``f.o`` in the paper."""

    field: str
    value: str

    def __str__(self) -> str:
        return f"{self.field}.{self.value}"


class EscapeTheory(ExclusiveValueTheory, ParamTheory):
    """Semantics of the escape primitives.

    Every primitive belongs to an exhaustive exclusive-value group
    (one per site/local/field), which powers cube normalisation:
    ``v.L & v.E`` is false, ``!v.L & !v.E`` collapses to ``v.N``, etc.
    """

    def group_of(self, prim: Primitive):
        if isinstance(prim, SiteIs):
            return (("site", prim.site), prim.value, (LOC, ESC))
        if isinstance(prim, VarIs):
            return (("var", prim.var), prim.value, VALUES)
        if isinstance(prim, FieldIs):
            return (("field", prim.field), prim.value, VALUES)
        raise TypeError(f"not an escape primitive: {prim!r}")

    def make_primitive(self, group_key, value) -> Primitive:
        kind, name = group_key
        if kind == "site":
            return SiteIs(name, value)
        if kind == "var":
            return VarIs(name, value)
        return FieldIs(name, value)

    def holds(self, prim: Primitive, p, d: EscState) -> bool:
        if isinstance(prim, SiteIs):
            return (prim.site in p) == (prim.value == LOC)
        if isinstance(prim, VarIs):
            return d.get(prim.var) == prim.value
        if isinstance(prim, FieldIs):
            return d.get(prim.field) == prim.value
        raise TypeError(f"not an escape primitive: {prim!r}")

    def is_param(self, prim: Primitive) -> bool:
        return isinstance(prim, SiteIs)

    def param_var(self, prim: Primitive) -> Tuple[str, bool]:
        assert isinstance(prim, SiteIs)
        return (prim.site, prim.value == LOC)


class EscapeMeta(BackwardMetaAnalysis):
    """Backward weakest preconditions on escape primitives, derived
    from the forward case tables (requirement (2) by construction)."""

    metrics_name = "escape"

    def __init__(self, analysis):
        self.analysis = analysis
        self.theory = analysis.semantics.binding.theory

    def wp_primitive(self, command: AtomicCommand, prim: Primitive) -> Formula:
        return self.analysis.semantics.wp_primitive(command, prim)
