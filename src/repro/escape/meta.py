"""Backward meta-analysis for the thread-escape analysis (Figure 11).

Primitive formulas over pairs ``(p, d)``:

* ``SiteIs(h, o)`` with ``o in {L, E}`` — the abstraction maps ``h``
  to ``o`` (a parameter primitive, written ``h.o`` in the paper);
* ``VarIs(v, o)`` / ``FieldIs(f, o)`` with ``o in {L, E, N}`` — the
  state binds the local/field to ``o`` (``v.o`` / ``f.o``).

Weakest preconditions are derived *systematically* rather than
transcribed from Figure 11: every forward transfer function is a case
split on the values of at most three locations, and in each case the
effect is the identity, a single constant binding, or ``esc``.  The
precondition of a primitive under such an effect is immediate, and the
command's wp is the guard-by-guard disjunction.  The resulting
formulas are semantically equal to Figure 11 (e.g. for ``g = v`` and a
local ``u != v``::

    wp(u.E) = (v.L & u.L) | u.E
    wp(u.N) = u.N
    wp(f.N) = v.L | ((v.E | v.N) & f.N)

after DNF simplification) and are verified exhaustively against the
forward semantics in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.formula import (
    FALSE,
    Formula,
    Primitive,
    TRUE,
    conj,
    disj,
    lit,
)
from repro.core.formula import ExclusiveValueTheory
from repro.core.meta import BackwardMetaAnalysis
from repro.core.viability import ParamTheory
from repro.escape.analysis import EscapeAnalysis
from repro.escape.domain import ESC, LOC, NIL, VALUES, EscState
from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)


@dataclass(frozen=True)
class SiteIs(Primitive):
    """``p(h) = o`` — written ``h.o`` in the paper."""

    site: str
    value: str

    def __str__(self) -> str:
        return f"{self.site}.{self.value}"


@dataclass(frozen=True)
class VarIs(Primitive):
    """``d(v) = o`` — written ``v.o`` in the paper."""

    var: str
    value: str

    def __str__(self) -> str:
        return f"{self.var}.{self.value}"


@dataclass(frozen=True)
class FieldIs(Primitive):
    """``d(f) = o`` — written ``f.o`` in the paper."""

    field: str
    value: str

    def __str__(self) -> str:
        return f"{self.field}.{self.value}"


class EscapeTheory(ExclusiveValueTheory, ParamTheory):
    """Semantics of the escape primitives.

    Every primitive belongs to an exhaustive exclusive-value group
    (one per site/local/field), which powers cube normalisation:
    ``v.L & v.E`` is false, ``!v.L & !v.E`` collapses to ``v.N``, etc.
    """

    def group_of(self, prim: Primitive):
        if isinstance(prim, SiteIs):
            return (("site", prim.site), prim.value, (LOC, ESC))
        if isinstance(prim, VarIs):
            return (("var", prim.var), prim.value, VALUES)
        if isinstance(prim, FieldIs):
            return (("field", prim.field), prim.value, VALUES)
        raise TypeError(f"not an escape primitive: {prim!r}")

    def make_primitive(self, group_key, value) -> Primitive:
        kind, name = group_key
        if kind == "site":
            return SiteIs(name, value)
        if kind == "var":
            return VarIs(name, value)
        return FieldIs(name, value)

    def holds(self, prim: Primitive, p, d: EscState) -> bool:
        if isinstance(prim, SiteIs):
            return (prim.site in p) == (prim.value == LOC)
        if isinstance(prim, VarIs):
            return d.get(prim.var) == prim.value
        if isinstance(prim, FieldIs):
            return d.get(prim.field) == prim.value
        raise TypeError(f"not an escape primitive: {prim!r}")

    def is_param(self, prim: Primitive) -> bool:
        return isinstance(prim, SiteIs)

    def param_var(self, prim: Primitive) -> Tuple[str, bool]:
        assert isinstance(prim, SiteIs)
        return (prim.site, prim.value == LOC)


def _var(v: str, o: str) -> Formula:
    return lit(VarIs(v, o))


def _field(f: str, o: str) -> Formula:
    return lit(FieldIs(f, o))


def _not_local(v: str) -> Formula:
    return disj(_var(v, ESC), _var(v, NIL))


class EscapeMeta(BackwardMetaAnalysis):
    """Backward weakest preconditions on escape primitives."""

    def __init__(self, analysis: EscapeAnalysis):
        self.analysis = analysis
        self.theory = EscapeTheory()

    def wp_primitive(self, command: AtomicCommand, prim: Primitive) -> Formula:
        if isinstance(prim, SiteIs):
            return lit(prim)  # no command changes the abstraction
        if isinstance(command, New):
            return self._wp_const(
                command.lhs, lit(SiteIs(command.site, prim.value)), prim
            ) if self._targets(prim, command.lhs) else lit(prim)
        if isinstance(command, Assign):
            if self._targets(prim, command.lhs):
                return _var(command.rhs, prim.value)
            return lit(prim)
        if isinstance(command, AssignNull):
            if self._targets(prim, command.lhs):
                return TRUE if prim.value == NIL else FALSE
            return lit(prim)
        if isinstance(command, LoadGlobal):
            if self._targets(prim, command.lhs):
                return TRUE if prim.value == ESC else FALSE
            return lit(prim)
        if isinstance(command, (StoreGlobal, ThreadStart)):
            var = command.rhs if isinstance(command, StoreGlobal) else command.var
            return self._wp_publish(
                esc_guard=_var(var, LOC), not_esc=_not_local(var), prim=prim
            )
        if isinstance(command, LoadField):
            return self._wp_load_field(command, prim)
        if isinstance(command, StoreField):
            return self._wp_store_field(command, prim)
        if isinstance(command, (Invoke, Observe)):
            return lit(prim)
        raise TypeError(f"unknown command: {command!r}")

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _targets(prim: Primitive, local: str) -> bool:
        return isinstance(prim, VarIs) and prim.var == local

    @staticmethod
    def _wp_const(local: str, site_formula: Formula, prim: Primitive) -> Formula:
        """Precondition of ``local := p(h)`` for a primitive on ``local``:
        ``N`` is impossible, otherwise the site must map to the value."""
        assert isinstance(prim, VarIs) and prim.var == local
        if prim.value == NIL:
            return FALSE
        return site_formula

    def _wp_load_field(self, command: LoadField, prim: Primitive) -> Formula:
        if not self._targets(prim, command.lhs):
            return lit(prim)
        through_local = conj(
            _var(command.base, LOC), _field(command.field, prim.value)
        )
        if prim.value == ESC:
            return disj(through_local, _not_local(command.base))
        return through_local

    def _wp_publish(
        self, esc_guard: Formula, not_esc: Formula, prim: Primitive
    ) -> Formula:
        """Factored precondition for a command that either triggers
        ``esc`` (when ``esc_guard`` holds) or is the identity.

        The factoring mirrors Figure 11: when ``esc`` preserves the
        asserted value (``E``/``N`` for locals, ``N`` for fields),
        ``wp(q) = q | (esc_guard & esc_pre(q))``; otherwise the value
        survives only without ``esc``: ``wp(q) = not_esc & q``.  The
        first form keeps the formula's main disjunct free of guard
        literals, which is what lets the beam search retain compact
        cubes (e.g. ``wp(u.E) = u.E | (v.L & u.L)`` for ``g = v``).
        """
        if isinstance(prim, VarIs):
            if prim.value == ESC:
                return disj(lit(prim), conj(esc_guard, _var(prim.var, LOC)))
            if prim.value == NIL:
                return lit(prim)  # esc and identity both preserve null
            return conj(not_esc, lit(prim))
        if isinstance(prim, FieldIs):
            if prim.value == NIL:
                return disj(lit(prim), esc_guard)
            return conj(not_esc, lit(prim))
        raise TypeError(prim)

    def _wp_store_field(self, command: StoreField, prim: Primitive) -> Formula:
        """Precondition of ``v.f = v'`` (the last row of Figure 11).

        The command either triggers ``esc``, updates the summary of
        field ``f`` (only possible from ``f = N``), or is the identity;
        locals and other fields see a pure publish command, while
        primitives on ``f`` itself need the explicit case split.
        """
        base, field, rhs = command.base, command.field, command.rhs
        esc_guard = disj(
            conj(_var(base, ESC), _var(rhs, LOC)),
            conj(_var(base, LOC), _field(field, LOC), _var(rhs, ESC)),
            conj(_var(base, LOC), _field(field, ESC), _var(rhs, LOC)),
        )
        not_esc = disj(
            _var(base, NIL),
            conj(_var(base, ESC), _var(rhs, ESC)),
            conj(_var(base, ESC), _var(rhs, NIL)),
            conj(_var(base, LOC), _var(rhs, NIL)),
            conj(_var(base, LOC), _field(field, NIL)),
            conj(_var(base, LOC), _field(field, LOC), _var(rhs, LOC)),
            conj(_var(base, LOC), _field(field, ESC), _var(rhs, ESC)),
        )
        if not (isinstance(prim, FieldIs) and prim.field == field):
            return self._wp_publish(esc_guard, not_esc, prim)
        # Primitive on the stored field itself.
        identity_cases = disj(
            conj(_var(base, NIL), lit(prim)),
            conj(_var(base, ESC), _var(rhs, ESC), lit(prim)),
            conj(_var(base, ESC), _var(rhs, NIL), lit(prim)),
            conj(_var(base, LOC), _var(rhs, NIL), lit(prim)),
            conj(_var(base, LOC), lit(prim), _var(rhs, prim.value)),
        )
        if prim.value == NIL:
            return disj(esc_guard, identity_cases)
        updated = conj(_var(base, LOC), _field(field, NIL), _var(rhs, prim.value))
        return disj(updated, identity_cases)
