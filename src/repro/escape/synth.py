"""Footprint model for synthesizing the thread-escape backward
transfer functions (Figure 11) automatically from Figure 5.

Location groups are exactly the primitive groups of
:class:`repro.escape.meta.EscapeTheory`: one per local (values
``{L, E, N}``), one per field (``{L, E, N}``), one per allocation site
(``{L, E}``).  Every heap command touches at most three of them, so
synthesis enumerates at most ``3^4`` assignments per primitive.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro.core.formula import Literal
from repro.core.synthesis import FootprintModel, SynthesizedMeta
from repro.escape.analysis import EscapeAnalysis
from repro.escape.domain import ESC, LOC, NIL, VALUES
from repro.escape.meta import EscapeTheory, FieldIs, SiteIs, VarIs
from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)


class EscapeFootprint(FootprintModel):
    """Footprints of the Figure 5 transfer functions."""

    def __init__(self, analysis: EscapeAnalysis):
        self.analysis = analysis
        self.schema = analysis.schema

    def groups_of_command(self, command: AtomicCommand) -> FrozenSet:
        if isinstance(command, New):
            return frozenset([("var", command.lhs), ("site", command.site)])
        if isinstance(command, Assign):
            return frozenset([("var", command.lhs), ("var", command.rhs)])
        if isinstance(command, (AssignNull, LoadGlobal)):
            return frozenset([("var", command.lhs)])
        if isinstance(command, StoreGlobal):
            return frozenset([("var", command.rhs)])
        if isinstance(command, ThreadStart):
            return frozenset([("var", command.var)])
        if isinstance(command, LoadField):
            return frozenset(
                [
                    ("var", command.lhs),
                    ("var", command.base),
                    ("field", command.field),
                ]
            )
        if isinstance(command, StoreField):
            return frozenset(
                [
                    ("var", command.base),
                    ("var", command.rhs),
                    ("field", command.field),
                ]
            )
        if isinstance(command, (Invoke, Observe)):
            return frozenset()
        raise TypeError(f"unknown command: {command!r}")

    def group_of_primitive(self, prim):
        if isinstance(prim, SiteIs):
            return ("site", prim.site)
        if isinstance(prim, VarIs):
            return ("var", prim.var)
        if isinstance(prim, FieldIs):
            return ("field", prim.field)
        raise TypeError(f"not an escape primitive: {prim!r}")

    def group_values(self, group) -> Tuple[str, ...]:
        kind, _name = group
        return (LOC, ESC) if kind == "site" else VALUES

    def group_literal(self, group, value) -> Literal:
        kind, name = group
        if kind == "site":
            return Literal(SiteIs(name, value), True)
        if kind == "var":
            return Literal(VarIs(name, value), True)
        return Literal(FieldIs(name, value), True)

    def instantiate(self, assignment) -> Optional[Tuple[frozenset, object]]:
        d = self.schema.initial()
        p = set()
        for (kind, name), value in assignment.items():
            if kind == "site":
                if value == LOC:
                    p.add(name)
            else:
                d = d.set(name, value)
        return frozenset(p), d


def synthesized_escape_meta(analysis: EscapeAnalysis) -> SynthesizedMeta:
    """A drop-in replacement for :class:`repro.escape.meta.EscapeMeta`
    whose backward transfer functions are synthesized from the forward
    analysis rather than handwritten."""
    return SynthesizedMeta(analysis, EscapeTheory(), EscapeFootprint(analysis))
