"""Transfer semantics of the thread-escape analysis (Figure 5), as
guarded-update case tables.

Each command is described *once* by :meth:`EscapeSemantics.table_for`;
the framework (:mod:`repro.core.semantics`) derives both the forward
transfer function and the primitive weakest preconditions of Figure 11
from the same table, so the two can never drift apart.

The interesting commands are the two publication points — a store to a
global and handing an object to a new thread — which trigger ``esc``
when the published object is ``L``-summarised, and the field store
``v.f = v'``, whose effect is a case split on the current bindings of
``v``, ``f`` and ``v'``:

* ``d(v) = E`` and ``d(v') = L`` — a local object becomes reachable
  from an escaped one: ``esc(d)``;
* ``d(v) = L`` — the field summary ``f`` (covering *all* ``L``
  objects) must absorb ``d(v')``: equal values are a no-op, ``N``
  joins with ``L``/``E`` to that value, and mixing ``L`` with ``E``
  forces ``esc(d)`` (the two-location domain cannot represent it);
* otherwise the store is invisible at this abstraction.

Method-call commands are no-ops here: the front end inlines bodies.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.core.formula import Formula, Primitive, TRUE, conj, disj, lit
from repro.core.parametric import MapParamSpace, ParametricAnalysis
from repro.core.semantics import (
    IDENTITY,
    Case,
    Const,
    Effect,
    GuardedSemantics,
    Location,
    MapRead,
    Read,
    SemanticsBinding,
    Updates,
)
from repro.escape.domain import ESC, LOC, NIL, EscSchema, EscState
from repro.escape.meta import EscapeTheory, FieldIs, SiteIs, VarIs
from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)


def _var_loc(name: str) -> Location:
    return ("var", name)


def _field_loc(name: str) -> Location:
    return ("field", name)


class EscapeBinding(SemanticsBinding):
    """Location <-> primitive binding over a fixed :class:`EscSchema`.

    Locations mirror the theory's exclusive-value groups: ``("var", v)``
    for locals, ``("field", f)`` for fields; allocation-site primitives
    have no location (no command writes the abstraction)."""

    def __init__(self, schema: EscSchema):
        self.schema = schema
        self.theory = EscapeTheory()

    def location_of(self, prim: Primitive):
        if isinstance(prim, VarIs):
            return _var_loc(prim.var)
        if isinstance(prim, FieldIs):
            return _field_loc(prim.field)
        return None  # SiteIs: a parameter primitive

    def prim_value(self, prim: Primitive):
        return prim.value

    def location_literal(self, location: Location, value) -> Formula:
        kind, name = location
        if kind == "var":
            return lit(VarIs(name, value))
        return lit(FieldIs(name, value))

    def compile_read(self, location: Location):
        index = self.schema.index(location[1])
        return lambda p, d: d.values[index]

    def compile_write(self, location: Location):
        name = location[1]
        return lambda d, value: d.set(name, value)

    def compile_primitive_test(self, prim: Primitive):
        if isinstance(prim, SiteIs):
            site, want_local = prim.site, prim.value == LOC
            return lambda p, d: (site in p) == want_local
        index = self.schema.index(
            prim.var if isinstance(prim, VarIs) else prim.field
        )
        value = prim.value
        return lambda p, d: d.values[index] == value

    def compile_primitive_test_bound(self, prim: Primitive, p):
        if isinstance(prim, SiteIs):
            value = (prim.site in p) == (prim.value == LOC)
            return lambda d: value
        index = self.schema.index(
            prim.var if isinstance(prim, VarIs) else prim.field
        )
        value = prim.value
        return lambda d: d.values[index] == value


class Esc(Effect):
    """``esc(d)`` of Figure 5: non-null locals to ``E``, fields to ``N``."""

    __slots__ = ()

    def __repr__(self):
        return "Esc()"

    def value_expr_at(self, location, binding):
        kind, _ = location
        if kind == "var":
            return MapRead(location, ((LOC, ESC), (ESC, ESC), (NIL, NIL)))
        return Const(NIL)

    def compile(self, binding):
        return lambda p, d: d.esc()

    def param_primitives(self, binding):
        return ()


ESC_EFFECT = Esc()


def _var(v: str, o: str) -> Formula:
    return lit(VarIs(v, o))


def _field(f: str, o: str) -> Formula:
    return lit(FieldIs(f, o))


def _publish_table(var: str):
    """Publishing ``var`` escapes everything iff ``d(var) = L``."""
    return (
        Case(_var(var, LOC), ESC_EFFECT),
        Case(disj(_var(var, ESC), _var(var, NIL)), IDENTITY),
    )


class EscapeSemantics(GuardedSemantics):
    """Case tables of the thread-escape transfer functions."""

    metrics_name = "escape"

    def __init__(self, schema: EscSchema):
        super().__init__(EscapeBinding(schema))

    def table_for(self, command: AtomicCommand):
        if isinstance(command, New):
            lhs = _var_loc(command.lhs)
            return (
                Case(lit(SiteIs(command.site, LOC)), Updates.of({lhs: Const(LOC)})),
                Case(lit(SiteIs(command.site, ESC)), Updates.of({lhs: Const(ESC)})),
            )
        if isinstance(command, Assign):
            return (
                Case(
                    TRUE,
                    Updates.of({_var_loc(command.lhs): Read(_var_loc(command.rhs))}),
                ),
            )
        if isinstance(command, AssignNull):
            return (Case(TRUE, Updates.of({_var_loc(command.lhs): Const(NIL)})),)
        if isinstance(command, LoadGlobal):
            return (Case(TRUE, Updates.of({_var_loc(command.lhs): Const(ESC)})),)
        if isinstance(command, (StoreGlobal, ThreadStart)):
            var = command.rhs if isinstance(command, StoreGlobal) else command.var
            return _publish_table(var)
        if isinstance(command, LoadField):
            lhs = _var_loc(command.lhs)
            return (
                Case(
                    _var(command.base, LOC),
                    Updates.of({lhs: Read(_field_loc(command.field))}),
                ),
                Case(
                    disj(_var(command.base, ESC), _var(command.base, NIL)),
                    Updates.of({lhs: Const(ESC)}),
                ),
            )
        if isinstance(command, StoreField):
            return self._store_field_table(command)
        if isinstance(command, (Invoke, Observe)):
            return (Case(TRUE, IDENTITY),)
        raise TypeError(f"unknown command: {command!r}")

    @staticmethod
    def _store_field_table(command: StoreField):
        """``v.f = v'``: escape, absorb into the field summary, or no-op."""
        base, field, rhs = command.base, command.field, command.rhs
        return (
            # A local object becomes reachable from an escaped one.
            Case(conj(_var(base, ESC), _var(rhs, LOC)), ESC_EFFECT),
            # The field summary would have to mix L with E.
            Case(
                conj(_var(base, LOC), _field(field, LOC), _var(rhs, ESC)),
                ESC_EFFECT,
            ),
            Case(
                conj(_var(base, LOC), _field(field, ESC), _var(rhs, LOC)),
                ESC_EFFECT,
            ),
            # f = N absorbs d(v') (a store of null keeps it N).
            Case(
                conj(_var(base, LOC), _field(field, NIL)),
                Updates.of({_field_loc(field): Read(_var_loc(rhs))}),
            ),
            # Equal values (or null stores) are invisible.
            Case(
                conj(
                    _var(base, LOC),
                    _field(field, LOC),
                    disj(_var(rhs, LOC), _var(rhs, NIL)),
                ),
                IDENTITY,
            ),
            Case(
                conj(
                    _var(base, LOC),
                    _field(field, ESC),
                    disj(_var(rhs, ESC), _var(rhs, NIL)),
                ),
                IDENTITY,
            ),
            # Stores through null or into escaped state change nothing.
            Case(_var(base, NIL), IDENTITY),
            Case(
                conj(_var(base, ESC), disj(_var(rhs, ESC), _var(rhs, NIL))),
                IDENTITY,
            ),
        )


class EscapeAnalysis(ParametricAnalysis):
    """The parametric thread-escape analysis ``(H -> {L,E}, #L, D, [[.]]p)``."""

    def __init__(self, schema: EscSchema, sites: FrozenSet[str]):
        self.schema = schema
        self.param_space = MapParamSpace(frozenset(sites), cheap=ESC, costly=LOC)
        self.semantics = EscapeSemantics(schema)

    def initial_state(self) -> EscState:
        return self.schema.initial()

    def site_value(self, p: FrozenSet[str], site: str) -> str:
        """``p(h)`` — the abstract location summarising site ``h``."""
        return self.param_space.lookup(p, site)

    def transfer(self, command: AtomicCommand, p: FrozenSet[str], d: EscState) -> EscState:
        return self.semantics.transfer(command, p, d)
