"""Forward transfer functions of the thread-escape analysis (Figure 5).

The interesting commands are the two publication points — a store to a
global and handing an object to a new thread — which trigger ``esc``
when the published object is ``L``-summarised, and the field store
``v.f = v'``, whose effect depends on the current bindings of ``v``,
``f`` and ``v'``:

* ``d(v) = E`` and ``d(v') = L`` — a local object becomes reachable
  from an escaped one: ``esc(d)``;
* ``d(v) = L`` — the field summary ``f`` (covering *all* ``L``
  objects) must absorb ``d(v')``: equal values are a no-op, ``N``
  joins with ``L``/``E`` to that value, and mixing ``L`` with ``E``
  forces ``esc(d)`` (the two-location domain cannot represent it);
* otherwise the store is invisible at this abstraction.

Method-call commands are no-ops here: the front end inlines bodies.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.core.parametric import MapParamSpace, ParametricAnalysis
from repro.escape.domain import ESC, LOC, NIL, EscSchema, EscState
from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)


class EscapeAnalysis(ParametricAnalysis):
    """The parametric thread-escape analysis ``(H -> {L,E}, #L, D, [[.]]p)``."""

    def __init__(self, schema: EscSchema, sites: FrozenSet[str]):
        self.schema = schema
        self.param_space = MapParamSpace(frozenset(sites), cheap=ESC, costly=LOC)

    def initial_state(self) -> EscState:
        return self.schema.initial()

    def site_value(self, p: FrozenSet[str], site: str) -> str:
        """``p(h)`` — the abstract location summarising site ``h``."""
        return self.param_space.lookup(p, site)

    def transfer(self, command: AtomicCommand, p: FrozenSet[str], d: EscState) -> EscState:
        if isinstance(command, New):
            return d.set(command.lhs, self.site_value(p, command.site))
        if isinstance(command, Assign):
            return d.set(command.lhs, d.get(command.rhs))
        if isinstance(command, AssignNull):
            return d.set(command.lhs, NIL)
        if isinstance(command, LoadGlobal):
            return d.set(command.lhs, ESC)
        if isinstance(command, (StoreGlobal, ThreadStart)):
            var = command.rhs if isinstance(command, StoreGlobal) else command.var
            return d.esc() if d.get(var) == LOC else d
        if isinstance(command, LoadField):
            if d.get(command.base) == LOC:
                return d.set(command.lhs, d.get(command.field))
            return d.set(command.lhs, ESC)
        if isinstance(command, StoreField):
            return self._store_field(command, d)
        if isinstance(command, (Invoke, Observe)):
            return d
        raise TypeError(f"unknown command: {command!r}")

    def _store_field(self, command: StoreField, d: EscState) -> EscState:
        base = d.get(command.base)
        rhs = d.get(command.rhs)
        if base == ESC and rhs == LOC:
            return d.esc()
        if base == LOC:
            old = d.get(command.field)
            if old == rhs:
                return d
            if {old, rhs} == {NIL, LOC}:
                return d.set(command.field, LOC)
            if {old, rhs} == {NIL, ESC}:
                return d.set(command.field, ESC)
            return d.esc()  # {old, rhs} == {L, E}
        return d
