"""Integer-bitset encodings of finite abstract domains.

The compiled forward engine (``repro.core.kernel``) runs the collecting
worklist over plain Python integers instead of client state objects:
each abstract state is packed into a bitset over an interned *value
universe*, and every guarded-update transfer becomes a handful of mask
operations on that integer.  This module is the encoding layer — it
knows nothing about commands or guards, only about laying out a
client's state components as bit groups and converting states to and
from integers.

A :class:`BitsetLayout` is an ordered sequence of :class:`Group`\\ s,
one per addressable *location* of the client's
:class:`~repro.core.semantics.SemanticsBinding`:

* a **bool** group is a single bit (``("err",)``, ``("var", "x")``,
  ``("has", "x", "h1")`` ...);
* a **onehot** group is one bit per value of an exclusive-value domain
  (the escape lattice's ``L``/``E``/``N``), with the invariant that
  exactly one bit of the group is set in any canonical state.

Clients supply a :class:`StateCodec` subclass that maps their native
states onto a layout; the kernel only ever talks to the codec through
``encode``/``decode`` and the lowering hooks (:meth:`StateCodec.
missing_read`, :meth:`StateCodec.safe_effect`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BOOL",
    "ONEHOT",
    "Group",
    "BitsetLayout",
    "KernelFallback",
    "StateCodec",
    "bool_group",
    "onehot_group",
]

BOOL = "bool"
ONEHOT = "onehot"


class KernelFallback(Exception):
    """Raised while lowering a command whose guard or effect cannot be
    expressed as bitset operations; the kernel then falls back to the
    interpreted step for that one command (the rest of the table still
    runs compiled)."""


def bool_group(location: object) -> Tuple[object, str, Tuple[object, ...]]:
    """Spec for a single-bit location holding ``False``/``True``."""
    return (location, BOOL, (False, True))


def onehot_group(
    location: object, values: Iterable[object]
) -> Tuple[object, str, Tuple[object, ...]]:
    """Spec for an exclusive-value location: one bit per value."""
    return (location, ONEHOT, tuple(values))


class Group:
    """One location's slice of the bitset.

    ``shift`` is the bit offset of the group within the word; ``mask``
    is the absolute mask covering the group; ``local_mask`` is the same
    mask before shifting (``mask == local_mask << shift``).
    """

    __slots__ = ("location", "style", "values", "shift", "width",
                 "mask", "local_mask", "_index")

    def __init__(self, location, style, values, shift):
        if style not in (BOOL, ONEHOT):
            raise ValueError(f"unknown group style: {style!r}")
        self.location = location
        self.style = style
        self.values = tuple(values)
        self.shift = shift
        self.width = 1 if style == BOOL else len(self.values)
        if self.width < 1:
            raise ValueError(f"empty value set for group {location!r}")
        self.local_mask = (1 << self.width) - 1
        self.mask = self.local_mask << shift
        self._index = (
            None
            if style == BOOL
            else {value: i for i, value in enumerate(self.values)}
        )

    def domain(self) -> Tuple[object, ...]:
        """Every value the group can hold (``(False, True)`` for bool)."""
        return self.values

    def value_bits(self, value: object) -> int:
        """The group's (absolute) bit pattern for ``value``.

        Raises :class:`KernelFallback` for a value outside the group's
        domain, so effect lowering degrades to the interpreted step
        instead of silently mis-encoding.
        """
        if self.style == BOOL:
            return (1 << self.shift) if value else 0
        index = self._index.get(value)
        if index is None:
            raise KernelFallback(
                f"value {value!r} outside domain of group {self.location!r}"
            )
        return 1 << (self.shift + index)

    def local_code(self, value: object) -> int:
        """The group's bit pattern for ``value`` before shifting —
        the table index used by ``MapRead`` lowering."""
        return self.value_bits(value) >> self.shift

    def test_bit(self, value: object) -> Tuple[int, bool]:
        """``(mask, expect_set)`` such that ``location == value`` holds
        iff ``bool(state & mask) == expect_set``.

        For a bool group asserting ``False`` the test is "bit clear";
        every other assertion is "bit set" on the value's own bit.
        """
        if self.style == BOOL:
            return (1 << self.shift), bool(value)
        return self.value_bits(value), True

    def decode(self, word: int) -> object:
        """Read the group's value out of an encoded state."""
        local = (word >> self.shift) & self.local_mask
        if self.style == BOOL:
            return bool(local)
        if local.bit_count() != 1:
            raise ValueError(
                f"non-canonical bits {local:#x} in onehot group "
                f"{self.location!r}"
            )
        return self.values[local.bit_length() - 1]

    def __repr__(self) -> str:
        return (
            f"Group({self.location!r}, {self.style}, shift={self.shift}, "
            f"width={self.width})"
        )


class BitsetLayout:
    """An ordered packing of groups into one integer word."""

    __slots__ = ("groups", "total_bits", "full_mask", "_by_location")

    def __init__(self, specs: Iterable[Tuple[object, str, Tuple]]):
        groups: List[Group] = []
        by_location: Dict[object, Group] = {}
        shift = 0
        for location, style, values in specs:
            if location in by_location:
                raise ValueError(f"duplicate layout location: {location!r}")
            group = Group(location, style, values, shift)
            groups.append(group)
            by_location[location] = group
            shift += group.width
        self.groups = tuple(groups)
        self.total_bits = shift
        self.full_mask = (1 << shift) - 1
        self._by_location = by_location

    def group(self, location: object) -> Optional[Group]:
        """The group at ``location``, or ``None`` when the location is
        outside the layout (the codec decides what that means)."""
        return self._by_location.get(location)

    def __contains__(self, location: object) -> bool:
        return location in self._by_location

    def __len__(self) -> int:
        return len(self.groups)


class StateCodec:
    """Maps a client's native abstract states onto a bitset layout.

    Subclasses implement :meth:`encode_state` / :meth:`decode_state`;
    both directions are memoised here because the same handful of
    states flows through the worklist thousands of times.  The two
    memos double as each other's inverse check: whatever ``encode``
    interns, ``decode`` reuses the *same* state object, so decoded
    states are reference-identical across a run.
    """

    __slots__ = ("layout", "_encode_memo", "_decode_memo")

    def __init__(self, layout: BitsetLayout):
        self.layout = layout
        self._encode_memo: Dict[object, int] = {}
        self._decode_memo: Dict[int, object] = {}

    # -- the two hot-path entry points ---------------------------------

    def encode(self, state: object) -> int:
        bits = self._encode_memo.get(state)
        if bits is None:
            bits = self._encode_memo[state] = self.encode_state(state)
            self._decode_memo.setdefault(bits, state)
        return bits

    def decode(self, bits: int) -> object:
        state = self._decode_memo.get(bits)
        if state is None:
            state = self._decode_memo[bits] = self.decode_state(bits)
            self._encode_memo.setdefault(state, bits)
        return state

    # -- client hooks --------------------------------------------------

    def encode_state(self, state: object) -> int:
        raise NotImplementedError

    def decode_state(self, bits: int) -> object:
        raise NotImplementedError

    def missing_read(self, location: object) -> object:
        """The constant value stored at a location *outside* the
        layout, for clients whose states are sparse (the typestate
        domain stores only true bits).  The default refuses, sending
        the command to the interpreted fallback."""
        raise KernelFallback(f"read of location outside layout: {location!r}")

    def safe_effect(self, effect: object, binding: object, p: object) -> bool:
        """Whether every write of ``effect`` lands inside the layout
        (or provably writes the :meth:`missing_read` default outside
        it) under abstraction ``p``.  Anything unproven must return
        ``False`` — the kernel then falls back per-command rather than
        silently dropping a write."""
        return False

    def narrow_key(self, p: object):
        """Hashable identity of the layout this codec would use under
        abstraction ``p`` — or ``None`` when the full layout is already
        minimal for ``p``.  Codecs whose reachable states provably
        shrink under a footprint (fewer live bits means smaller
        integers and cheaper mask ops) override this together with
        :meth:`narrow`; the kernel keys per-footprint sub-engines on
        the returned value.  The default never narrows."""
        return None

    def narrow(self, p: object) -> "StateCodec":
        """A fresh codec over the narrowed layout for ``p``; only
        called when :meth:`narrow_key` returned a non-``None`` key."""
        return self
