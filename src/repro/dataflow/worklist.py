"""A generic forward worklist solver over join semilattices."""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Generic, Hashable, TypeVar

from repro.lang.cfg import Cfg, CfgEdge
from repro.robust import budget as robust_budget

V = TypeVar("V")


class JoinSemilattice(Generic[V]):
    """The join-semilattice interface the solver needs."""

    def bottom(self) -> V:
        raise NotImplementedError

    def join(self, a: V, b: V) -> V:
        raise NotImplementedError

    def leq(self, a: V, b: V) -> bool:
        raise NotImplementedError


class PowersetLattice(JoinSemilattice[FrozenSet]):
    """Finite powerset lattice ordered by inclusion."""

    def bottom(self) -> FrozenSet:
        return frozenset()

    def join(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a | b

    def leq(self, a: FrozenSet, b: FrozenSet) -> bool:
        return a <= b


def solve_forward(
    cfg: Cfg,
    lattice: JoinSemilattice[V],
    transfer: Callable[[CfgEdge, V], V],
    entry_value: V,
) -> Dict[int, V]:
    """Least fixpoint of the forward dataflow equations over ``cfg``.

    ``transfer`` must be monotone in its value argument for the result
    to be the least solution; termination requires the lattice to have
    no infinite ascending chains among the values encountered.
    """
    values: Dict[int, V] = {cfg.entry: entry_value}
    pending = deque([cfg.entry])
    tick = robust_budget.tick  # cooperative deadline/step budget
    while pending:
        tick()
        node = pending.popleft()
        value = values.get(node, lattice.bottom())
        for edge in cfg.successors(node):
            out = transfer(edge, value)
            old = values.get(edge.dst, lattice.bottom())
            joined = lattice.join(old, out)
            if edge.dst not in values or not lattice.leq(joined, old):
                values[edge.dst] = joined
                pending.append(edge.dst)
    return values
