"""Interprocedural tabulation with procedure summaries.

This is the reproduction's analogue of the RHS tabulation framework
the paper's implementation builds on: instead of inlining call bodies,
procedures are analysed once per *entry abstract state* and the
resulting ``entry -> exit`` summaries are reused at every call site —
which is fully context-sensitive on finite domains and, unlike
inlining, handles recursion.

The unit of work is a *path edge* ``(proc, node, entry, d)``: "if
``proc`` is entered in abstract state ``entry``, then ``d`` reaches
``node``".  Atomic edges apply the client transfer function; a
:class:`repro.lang.ast.CallProc` edge suspends on the callee's
summaries (registering the caller for resumption as new exit states
are discovered) and seeds the callee with path edge
``(callee, entry_node, d, d)``.

Every path edge records one *witness*, so abstract counterexample
traces are reconstructed across procedure boundaries: an intra edge
prepends its command; a return edge splices the callee's own witness
trace between the caller's prefix and the continuation — yielding the
same flat command sequences the backward meta-analysis consumes in the
intraprocedural mode.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.dataflow.collecting import resolve_step
from repro.lang.ast import AtomicCommand, CallProc, Observe, Trace
from repro.lang.cfg import Cfg, CfgEdge
from repro.robust import budget as robust_budget

Step = Callable[[AtomicCommand, object], object]


@dataclass
class ProcGraph:
    """A program as a set of procedures with one distinguished main."""

    procedures: Dict[str, Cfg]
    main: str

    def __post_init__(self) -> None:
        if self.main not in self.procedures:
            raise ValueError(f"main procedure {self.main!r} missing")
        for name, cfg in self.procedures.items():
            for edge in cfg.edges:
                if isinstance(edge.command, CallProc):
                    if edge.command.callee not in self.procedures:
                        raise ValueError(
                            f"procedure {name!r} calls unknown "
                            f"{edge.command.callee!r}"
                        )


PathEdge = Tuple[str, int, object, object]  # (proc, node, entry, d)
_Witness = Tuple  # ("intra", pred, edge) | ("return", caller, edge, callee_exit)


@dataclass
class TabulationResult:
    """Fixpoint of the tabulation plus witness links.

    Exposes the same query surface as
    :class:`repro.dataflow.collecting.CollectingResult` — states before
    ``Observe`` labels, and witness traces — with opaque node handles
    (path-edge prefixes) instead of bare CFG nodes."""

    graph: ProcGraph
    entry_state: object
    edges: Dict[PathEdge, Optional[_Witness]]
    summaries: Dict[str, Dict[object, Set[object]]]
    steps: int

    def states_before_observe(self, label: str) -> Tuple[Tuple[object, object], ...]:
        out: List[Tuple[object, object]] = []
        for proc_name, cfg in sorted(self.graph.procedures.items()):
            for edge in cfg.edges:
                if not isinstance(edge.command, Observe):
                    continue
                if edge.command.label != label:
                    continue
                for path_edge in self._edges_at(proc_name, edge.src):
                    handle = (path_edge[0], path_edge[1], path_edge[2])
                    out.append((handle, path_edge[3]))
        return tuple(sorted(out, key=repr))

    def exit_states(self) -> Tuple[object, ...]:
        main = self.graph.procedures[self.graph.main]
        return tuple(
            sorted(
                {
                    pe[3]
                    for pe in self.edges
                    if pe[0] == self.graph.main
                    and pe[1] == main.exit
                    and pe[2] == self.entry_state
                },
                key=repr,
            )
        )

    def _edges_at(self, proc: str, node: int) -> List[PathEdge]:
        return sorted(
            (pe for pe in self.edges if pe[0] == proc and pe[1] == node),
            key=repr,
        )

    def trace_to(self, handle, state) -> Trace:
        """Reconstruct the witness trace for ``state`` at ``handle``
        (a ``(proc, node, entry)`` triple from ``states_before_observe``),
        all the way back to the main entry."""
        proc, node, entry = handle
        target: PathEdge = (proc, node, entry, state)
        prefix = self._trace_within(target)
        # Walk out of callees: find how (proc, entry) was entered.
        while True:
            caller = self._caller_of(proc, entry)
            if caller is None:
                break
            caller_pe, _edge = caller
            prefix = self._trace_within(caller_pe) + prefix
            proc, _node, entry, _d = caller_pe
        return prefix

    def _caller_of(self, proc: str, entry: object) -> Optional[Tuple[PathEdge, CfgEdge]]:
        witness = self.edges.get((proc, self.graph.procedures[proc].entry, entry, entry))
        if witness is None:
            return None
        assert witness[0] == "callseed"
        return witness[1], witness[2]

    def _trace_within(self, path_edge: PathEdge) -> Trace:
        """Commands from the procedure's entry (at ``entry``) to this
        path edge, with callee bodies spliced in at return sites."""
        commands: List[AtomicCommand] = []
        current = path_edge
        while True:
            witness = self.edges[current]
            if witness is None or witness[0] == "callseed":
                break
            if witness[0] == "intra":
                _kind, pred, edge = witness
                if edge.command is not None:
                    commands.append(edge.command)
                current = pred
            else:  # return
                _kind, caller_pe, _edge, callee_exit = witness
                callee_body = self._trace_within(callee_exit)
                commands.extend(reversed(callee_body))
                current = caller_pe
        commands.reverse()
        return tuple(commands)


def run_tabulation(
    graph: ProcGraph,
    step: Step,
    entry_state: object,
    edge_cache: Optional[Dict[Tuple[str, int], Tuple]] = None,
) -> TabulationResult:
    """Compute the interprocedural fixpoint from ``entry_state``.

    ``edge_cache`` mirrors :func:`repro.dataflow.collecting.run_collecting`:
    a persistent dict reusing resolved successor lists across runs with
    the same ``step``."""
    resolve = resolve_step(step)
    # Per-(proc, node) successor lists with the step closure resolved
    # per edge, built once (``None`` marks epsilon and call edges).
    compiled: Dict[Tuple[str, int], Tuple] = (
        {} if edge_cache is None else edge_cache
    )
    edges: Dict[PathEdge, Optional[_Witness]] = {}
    summaries: Dict[str, Dict[object, Set[object]]] = {
        name: {} for name in graph.procedures
    }
    # (callee, entry) -> list of (caller path edge at call src, call edge)
    waiting: Dict[Tuple[str, object], List[Tuple[PathEdge, CfgEdge]]] = {}
    pending = deque()
    steps = 0

    def discover(path_edge: PathEdge, witness: Optional[_Witness]) -> None:
        if path_edge not in edges:
            edges[path_edge] = witness
            pending.append(path_edge)

    main_cfg = graph.procedures[graph.main]
    discover((graph.main, main_cfg.entry, entry_state, entry_state), None)

    tick = robust_budget.tick  # cooperative deadline/step budget
    while pending:
        tick()
        path_edge = pending.popleft()
        proc, node, entry, d = path_edge
        cfg = graph.procedures[proc]
        if node == cfg.exit:
            # New summary exit state: resume every waiting caller.
            bucket = summaries[proc].setdefault(entry, set())
            if d not in bucket:
                bucket.add(d)
                for caller_pe, call_edge in waiting.get((proc, entry), ()):
                    discover(
                        (caller_pe[0], call_edge.dst, caller_pe[2], d),
                        ("return", caller_pe, call_edge, path_edge),
                    )
        node_key = (proc, node)
        succ = compiled.get(node_key)
        if succ is None:
            succ = compiled[node_key] = tuple(
                (
                    edge,
                    None
                    if edge.command is None
                    or isinstance(edge.command, CallProc)
                    else resolve(edge.command),
                )
                for edge in cfg.successors(node)
            )
        for edge, fn in succ:
            command = edge.command
            if isinstance(command, CallProc):
                callee = command.callee
                callers = waiting.setdefault((callee, d), [])
                callers.append((path_edge, edge))
                callee_cfg = graph.procedures[callee]
                discover(
                    (callee, callee_cfg.entry, d, d),
                    ("callseed", path_edge, edge),
                )
                for exit_state in sorted(
                    summaries[callee].get(d, ()), key=repr
                ):
                    callee_exit = (callee, callee_cfg.exit, d, exit_state)
                    discover(
                        (proc, edge.dst, entry, exit_state),
                        ("return", path_edge, edge, callee_exit),
                    )
                continue
            if fn is None:
                out = d
            else:
                out = fn(d)
                steps += 1
            discover((proc, edge.dst, entry, out), ("intra", path_edge, edge))
    return TabulationResult(
        graph=graph,
        entry_state=entry_state,
        edges=edges,
        summaries=summaries,
        steps=steps,
    )
