"""The disjunctive collecting engine with counterexample witnesses.

This plays the role of the RHS tabulation engine in the paper's
implementation: it computes, for a ``p``-instantiated analysis, the set
of abstract states reaching every CFG node — ``Fp[s]({dI})`` of
Figure 3 — and records for every *first derivation* of a state a
witness link ``(predecessor node, predecessor state, edge)``.

Because the analysis is disjunctive (transfer functions are applied to
states one at a time; node results are plain unions), Lemma 1 applies:
every reachable ``(node, state)`` pair is produced by some loop-free
derivation, and following witness links backwards yields a concrete
*abstract counterexample trace* — a straight-line sequence of atomic
commands ``t`` with ``Fp[t](dI) = state`` — exactly what the backward
meta-analysis consumes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.ast import AtomicCommand, Trace
from repro.lang.cfg import Cfg, CfgEdge
from repro.robust import budget as robust_budget

Step = Callable[[AtomicCommand, object], object]
_Witness = Optional[Tuple[int, object, CfgEdge]]


def resolve_step(step: Step) -> Callable[[AtomicCommand], Callable]:
    """A ``command -> (d -> d')`` resolver for ``step``.

    When ``step`` offers a ``for_command`` hook (the
    :class:`repro.core.semantics.BoundStep` protocol) the hook is used
    directly — the fixpoint loops apply the same few commands to many
    states, and pre-resolving each command once replaces the
    per-application dispatch (table lookup, guard selection) with a
    direct closure call.  Plain callables are wrapped per command."""
    resolver = getattr(step, "for_command", None)
    if resolver is not None:
        return resolver
    resolved: Dict[AtomicCommand, Callable[[object], object]] = {}

    def resolve(command: AtomicCommand) -> Callable[[object], object]:
        fn = resolved.get(command)
        if fn is None:

            def fn(d, _command=command):
                return step(_command, d)

            resolved[command] = fn
        return fn

    return resolve


@dataclass
class CollectingResult:
    """Fixpoint of the collecting semantics plus witness links."""

    cfg: Cfg
    entry_state: object
    states: Dict[int, Dict[object, _Witness]]
    steps: int  # number of transfer-function applications (a cost proxy)

    def states_at(self, node: int) -> Tuple[object, ...]:
        """All abstract states reaching ``node``, deterministically ordered."""
        table = self.states.get(node, {})
        return tuple(sorted(table.keys(), key=repr))

    def exit_states(self) -> Tuple[object, ...]:
        return self.states_at(self.cfg.exit)

    def states_before_observe(self, label: str) -> Tuple[Tuple[int, object], ...]:
        """All ``(node, state)`` pairs flowing into the ``Observe``
        edges carrying ``label`` — the states at the query point."""
        out: List[Tuple[int, object]] = []
        for edge_label, edges in self.cfg.observe_edges().items():
            if edge_label != label:
                continue
            for edge in edges:
                for state in self.states_at(edge.src):
                    out.append((edge.src, state))
        return tuple(out)

    def trace_to(self, node: int, state: object) -> Trace:
        """The witness trace deriving ``state`` at ``node`` from the
        entry state: a sequence of atomic commands (epsilon edges are
        dropped).  Raises ``KeyError`` if the pair was never derived."""
        commands: List[AtomicCommand] = []
        current: Tuple[int, object] = (node, state)
        while True:
            witness = self.states[current[0]][current[1]]
            if witness is None:
                break
            pred_node, pred_state, edge = witness
            if edge.command is not None:
                commands.append(edge.command)
            current = (pred_node, pred_state)
        commands.reverse()
        return tuple(commands)


def run_collecting(
    cfg: Cfg,
    step: Step,
    entry_state: object,
    edge_cache: Optional[Dict[int, Tuple]] = None,
) -> CollectingResult:
    """Compute the collecting fixpoint from ``entry_state``.

    ``step`` is the (already ``p``-instantiated) transfer function; it
    must be total and deterministic on abstract states, and the state
    space reachable from ``entry_state`` must be finite.  Callers that
    repeat runs with the *same* ``step`` may pass a persistent
    ``edge_cache`` dict to reuse the per-node resolved successor lists
    across runs.
    """
    resolve = resolve_step(step)
    # Per-node successor lists with the step closure resolved per edge,
    # built once: the hot loop revisits the same nodes with many states.
    compiled: Dict[int, Tuple[Tuple[CfgEdge, Optional[Callable]], ...]] = (
        {} if edge_cache is None else edge_cache
    )
    states: Dict[int, Dict[object, _Witness]] = {cfg.entry: {entry_state: None}}
    pending = deque([(cfg.entry, entry_state)])
    steps = 0
    tick = robust_budget.tick  # cooperative deadline/step budget
    while pending:
        tick()
        node, state = pending.popleft()
        edges = compiled.get(node)
        if edges is None:
            edges = compiled[node] = tuple(
                (
                    edge,
                    None if edge.command is None else resolve(edge.command),
                )
                for edge in cfg.successors(node)
            )
        for edge, fn in edges:
            if fn is None:
                out = state
            else:
                out = fn(state)
                steps += 1
            table = states.setdefault(edge.dst, {})
            if out not in table:
                table[out] = (node, state, edge)
                pending.append((edge.dst, out))
    return CollectingResult(cfg=cfg, entry_state=entry_state, states=states, steps=steps)
