"""Forward-engine adapters shared by the client analyses.

A TRACER client needs, per abstraction, a forward run exposing the
states reaching every ``Observe`` label plus witness traces.  Two
engines provide that interface:

* :class:`CollectingEngine` — the intraprocedural disjunctive engine
  over one CFG (used with fully inlined programs);
* :class:`TabulationEngine` — the interprocedural summary-based engine
  over a :class:`repro.dataflow.interproc.ProcGraph` (full context
  sensitivity via entry states; supports recursion).

Both results expose ``states_before_observe(label)`` and
``trace_to(handle, state)``; clients treat handles opaquely.
"""

from __future__ import annotations

from typing import Union

from repro.dataflow.collecting import CollectingResult, run_collecting
from repro.dataflow.interproc import ProcGraph, TabulationResult, run_tabulation
from repro.lang.ast import Program
from repro.lang.cfg import Cfg, build_cfg

ForwardResult = Union[CollectingResult, TabulationResult]


#: Distinct step objects an engine keeps edge caches for.  Clients
#: that reuse per-abstraction bound steps stay far below this; the
#: bound protects against callers passing a fresh closure every run.
_MAX_STEP_CACHES = 256


class CollectingEngine:
    """Intraprocedural engine over a single CFG.

    Resolved per-node successor lists are cached per ``step`` object,
    so repeated runs with the same bound step (the TRACER loop
    re-running under many abstractions) skip edge resolution entirely.
    """

    def __init__(self, cfg: Cfg):
        self.cfg = cfg
        self._edge_caches = {}

    def run(self, step, entry_state) -> CollectingResult:
        if len(self._edge_caches) > _MAX_STEP_CACHES:
            self._edge_caches.clear()
        cache = self._edge_caches.setdefault(step, {})
        return run_collecting(self.cfg, step, entry_state, cache)


class TabulationEngine:
    """Interprocedural summary-based engine over a procedure graph.

    Caches resolved successor lists per ``step`` like
    :class:`CollectingEngine`."""

    def __init__(self, graph: ProcGraph):
        self.graph = graph
        self._edge_caches = {}

    def run(self, step, entry_state) -> TabulationResult:
        if len(self._edge_caches) > _MAX_STEP_CACHES:
            self._edge_caches.clear()
        cache = self._edge_caches.setdefault(step, {})
        return run_tabulation(self.graph, step, entry_state, cache)


def engine_for(program: Union[Program, ProcGraph]):
    """Pick the engine matching the program representation."""
    if isinstance(program, ProcGraph):
        return TabulationEngine(program)
    return CollectingEngine(build_cfg(program))
