"""Dataflow engines.

* :mod:`repro.dataflow.worklist` — a generic worklist fixpoint solver
  over join semilattices (used by the front end's 0-CFA and may-alias
  analyses).
* :mod:`repro.dataflow.collecting` — the disjunctive collecting engine
  computing ``Fp[s]({dI})`` (Figure 3) over a CFG, with per-state
  witness links so abstract counterexample traces can be extracted
  (the role Chord's RHS tabulation plays in the paper).
"""

from repro.dataflow.collecting import CollectingResult, resolve_step, run_collecting
from repro.dataflow.engines import CollectingEngine, ForwardResult, TabulationEngine, engine_for
from repro.dataflow.interproc import ProcGraph, TabulationResult, run_tabulation
from repro.dataflow.worklist import JoinSemilattice, PowersetLattice, solve_forward

__all__ = [
    "CollectingEngine",
    "CollectingResult",
    "ForwardResult",
    "ProcGraph",
    "TabulationEngine",
    "TabulationResult",
    "JoinSemilattice",
    "PowersetLattice",
    "engine_for",
    "resolve_step",
    "run_collecting",
    "run_tabulation",
    "solve_forward",
]
