"""Abstract syntax of the paper's imperative language (Section 3.1).

The language has an open-ended set of atomic commands ``a`` and three
compound constructs::

    s ::= a | s ; s' | s + s' | s*

We fix a concrete vocabulary of atomic commands rich enough for both
client analyses of the paper (type-state and thread-escape):

* heap commands (Figure 5): ``v = new h``, ``g = v``, ``v = g``,
  ``v = null``, ``v = v'``, ``v = v'.f``, ``v.f = v'``;
* ``Invoke`` — a method-call event ``v.m()`` driving type-state automata
  (Figure 4); heap-wise it is a no-op because call bodies are inlined by
  the front end;
* ``ThreadStart`` — ``v`` is handed to a newly started thread, which
  makes it escape (the thread-escape analysis treats it like ``g = v``);
* ``Observe`` — a labelled no-op marking a program point where a query
  is evaluated.

All nodes are immutable and hashable so they can serve as dictionary
keys in dataflow engines and witness tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union


class AtomicCommand:
    """Base class for atomic commands.

    Subclasses are frozen dataclasses; equality and hashing are
    structural.  Analyses dispatch on the concrete class.
    """

    __slots__ = ()


@dataclass(frozen=True)
class New(AtomicCommand):
    """``lhs = new site`` — allocate at allocation site ``site``."""

    lhs: str
    site: str


@dataclass(frozen=True)
class Assign(AtomicCommand):
    """``lhs = rhs`` — copy a local variable."""

    lhs: str
    rhs: str


@dataclass(frozen=True)
class AssignNull(AtomicCommand):
    """``lhs = null``."""

    lhs: str


@dataclass(frozen=True)
class LoadGlobal(AtomicCommand):
    """``lhs = g`` — read a global (static) variable."""

    lhs: str
    glob: str


@dataclass(frozen=True)
class StoreGlobal(AtomicCommand):
    """``g = rhs`` — write a global (static) variable."""

    glob: str
    rhs: str


@dataclass(frozen=True)
class LoadField(AtomicCommand):
    """``lhs = base.field`` — read an instance field."""

    lhs: str
    base: str
    field: str


@dataclass(frozen=True)
class StoreField(AtomicCommand):
    """``base.field = rhs`` — write an instance field."""

    base: str
    field: str
    rhs: str


@dataclass(frozen=True)
class Invoke(AtomicCommand):
    """``base.method()`` — a type-state event at a call site.

    ``site_label`` identifies the originating call site; the type-state
    client keys queries on it.
    """

    base: str
    method: str
    site_label: str = ""


@dataclass(frozen=True)
class ThreadStart(AtomicCommand):
    """``start(v)`` — hand object ``v`` to a freshly started thread."""

    var: str


@dataclass(frozen=True)
class Observe(AtomicCommand):
    """A labelled no-op marking a query program point."""

    label: str


@dataclass(frozen=True)
class CallProc(AtomicCommand):
    """Transfer control to procedure ``callee`` (interprocedural mode).

    Only the tabulation engine interprets this command; client transfer
    functions never see it.  Parameter/return passing is encoded as
    explicit ``Assign`` commands around the call by the front end."""

    callee: str


# ---------------------------------------------------------------------------
# Structured programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """A program consisting of a single atomic command."""

    command: AtomicCommand


@dataclass(frozen=True)
class Seq:
    """Sequential composition ``first ; second``."""

    first: "Program"
    second: "Program"


@dataclass(frozen=True)
class Choice:
    """Non-deterministic choice ``left + right``."""

    left: "Program"
    right: "Program"


@dataclass(frozen=True)
class Star:
    """Iteration ``body*`` — zero or more repetitions."""

    body: "Program"


@dataclass(frozen=True)
class Skip:
    """The empty program (unit of sequential composition)."""


Program = Union[Atom, Seq, Choice, Star, Skip]


def seq(*programs: Program) -> Program:
    """Right-associated sequential composition of any number of programs.

    Atomic commands may be passed directly; ``seq()`` is ``Skip``.
    """
    parts = [_coerce(part) for part in programs]
    parts = [part for part in parts if not isinstance(part, Skip)]
    if not parts:
        return Skip()
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = Seq(part, result)
    return result


def choice(*programs: Program) -> Program:
    """Right-associated non-deterministic choice of the given programs."""
    parts = [_coerce(part) for part in programs]
    if not parts:
        raise ValueError("choice() requires at least one branch")
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = Choice(part, result)
    return result


def _coerce(part: object) -> Program:
    if isinstance(part, AtomicCommand):
        return Atom(part)
    if isinstance(part, (Atom, Seq, Choice, Star, Skip)):
        return part
    raise TypeError(f"not a program or atomic command: {part!r}")


def atoms_of(program: Program) -> Iterator[AtomicCommand]:
    """Yield every atomic command occurring in ``program``, in syntax order."""
    stack = [program]
    out = []
    while stack:
        node = stack.pop()
        if isinstance(node, Atom):
            out.append(node.command)
        elif isinstance(node, Seq):
            stack.append(node.second)
            stack.append(node.first)
        elif isinstance(node, Choice):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, Star):
            stack.append(node.body)
        elif isinstance(node, Skip):
            pass
        else:
            raise TypeError(f"not a program node: {node!r}")
    # The stack discipline above visits children in reverse, so `out`
    # already lists atoms in left-to-right syntax order for Seq/Choice.
    return iter(out)


Trace = Tuple[AtomicCommand, ...]
