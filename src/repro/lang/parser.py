"""A small text syntax for programs, used by examples and tests.

Grammar (line oriented)::

    program  := stmt*
    stmt     := atomic
              | "choice" "{" program "}" "or" "{" program "}"
              | "loop" "{" program "}"
              | "skip"
    atomic   := VAR "=" "new" SITE
              | VAR "=" "null"
              | VAR "=" "$" GLOBAL
              | "$" GLOBAL "=" VAR
              | VAR "=" VAR "." FIELD
              | VAR "." FIELD "=" VAR
              | VAR "=" VAR
              | VAR "." METHOD "(" ")" [ "[" LABEL "]" ]
              | "start" "(" VAR ")"
              | "observe" LABEL

Identifiers are ``[A-Za-z_][A-Za-z0-9_]*``.  ``#`` starts a comment.
"""

from __future__ import annotations

import re
from typing import List

from repro.lang.ast import (
    Assign,
    AssignNull,
    CallProc,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    Program,
    Skip,
    Star,
    StoreField,
    StoreGlobal,
    ThreadStart,
    choice,
    seq,
)

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"

_PATTERNS = [
    ("new", re.compile(rf"^({_IDENT})\s*=\s*new\s+({_IDENT})$")),
    ("null", re.compile(rf"^({_IDENT})\s*=\s*null$")),
    ("loadg", re.compile(rf"^({_IDENT})\s*=\s*\$({_IDENT})$")),
    ("storeg", re.compile(rf"^\$({_IDENT})\s*=\s*({_IDENT})$")),
    ("loadf", re.compile(rf"^({_IDENT})\s*=\s*({_IDENT})\.({_IDENT})$")),
    ("storef", re.compile(rf"^({_IDENT})\.({_IDENT})\s*=\s*({_IDENT})$")),
    ("invoke", re.compile(rf"^({_IDENT})\.({_IDENT})\(\)\s*(?:\[({_IDENT})\])?$")),
    ("start", re.compile(rf"^start\(({_IDENT})\)$")),
    ("observe", re.compile(rf"^observe\s+({_IDENT})$")),
    ("callproc", re.compile(rf"^call\s+([A-Za-z_][A-Za-z0-9_.]*)$")),
    ("assign", re.compile(rf"^({_IDENT})\s*=\s*({_IDENT})$")),
]


class ParseError(ValueError):
    """Raised on malformed program text, with a 1-based line number."""

    def __init__(self, message: str, line_no: int):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


class _Lines:
    def __init__(self, text: str):
        self.items: List[tuple] = []
        for number, raw in enumerate(text.splitlines(), start=1):
            stripped = raw.split("#", 1)[0].strip()
            if stripped:
                self.items.append((number, stripped))
        self.pos = 0

    def peek(self):
        return self.items[self.pos] if self.pos < len(self.items) else None

    def take(self):
        item = self.peek()
        if item is None:
            raise ParseError("unexpected end of input", self._last_line())
        self.pos += 1
        return item

    def _last_line(self) -> int:
        return self.items[-1][0] if self.items else 0


def parse_program(text: str) -> Program:
    """Parse ``text`` into a structured program."""
    lines = _Lines(text)
    program = _parse_block(lines, top_level=True)
    if lines.peek() is not None:
        number, content = lines.peek()
        raise ParseError(f"unexpected {content!r}", number)
    return program


def _parse_block(lines: _Lines, top_level: bool = False) -> Program:
    parts: List[Program] = []
    while True:
        item = lines.peek()
        if item is None:
            if top_level:
                break
            raise ParseError("unexpected end of input, missing '}'", lines._last_line())
        number, content = item
        if content in ("}", "} or {") and not top_level:
            break
        lines.take()
        if content == "skip":
            parts.append(Skip())
        elif content.startswith("choice"):
            parts.append(_parse_choice(lines, number, content))
        elif content.startswith("loop"):
            parts.append(_parse_loop(lines, number, content))
        else:
            parts.append(seq(_parse_atomic(content, number)))
    return seq(*parts) if parts else Skip()


def _expect(lines: _Lines, expected: str) -> None:
    number, content = lines.take()
    if content != expected:
        raise ParseError(f"expected {expected!r}, got {content!r}", number)


def _parse_choice(lines: _Lines, number: int, content: str) -> Program:
    if content != "choice {":
        raise ParseError("expected 'choice {'", number)
    left = _parse_block(lines)
    _expect(lines, "} or {")
    right = _parse_block(lines)
    _expect(lines, "}")
    return choice(left, right)


def _parse_loop(lines: _Lines, number: int, content: str) -> Program:
    if content != "loop {":
        raise ParseError("expected 'loop {'", number)
    body = _parse_block(lines)
    _expect(lines, "}")
    return Star(body)


def _parse_atomic(content: str, number: int):
    for kind, pattern in _PATTERNS:
        match = pattern.match(content)
        if not match:
            continue
        groups = match.groups()
        if kind == "new":
            return New(groups[0], groups[1])
        if kind == "null":
            return AssignNull(groups[0])
        if kind == "loadg":
            return LoadGlobal(groups[0], groups[1])
        if kind == "storeg":
            return StoreGlobal(groups[0], groups[1])
        if kind == "loadf":
            return LoadField(groups[0], groups[1], groups[2])
        if kind == "storef":
            return StoreField(groups[0], groups[1], groups[2])
        if kind == "invoke":
            return Invoke(groups[0], groups[1], groups[2] or "")
        if kind == "start":
            return ThreadStart(groups[0])
        if kind == "observe":
            return Observe(groups[0])
        if kind == "callproc":
            return CallProc(groups[0])
        if kind == "assign":
            return Assign(groups[0], groups[1])
    raise ParseError(f"cannot parse statement {content!r}", number)
