"""Control-flow graphs for structured programs.

The disjunctive collecting engine (:mod:`repro.dataflow.collecting`)
computes fixpoints over a CFG rather than by structural recursion, so
that per-state *witness links* can be recorded and abstract
counterexample traces extracted (the input TRACER's backward
meta-analysis needs).

Construction is the standard one: every sub-program gets an entry and
an exit node; ``Atom`` contributes a labelled edge, ``Seq`` splices,
``Choice`` forks with epsilon edges, and ``Star`` adds back/skip
epsilon edges.  Epsilon edges carry ``command is None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lang.ast import Atom, AtomicCommand, Choice, Observe, Program, Seq, Skip, Star


@dataclass(frozen=True)
class CfgEdge:
    """A CFG edge; ``command is None`` marks an epsilon (no-op) edge."""

    src: int
    command: Optional[AtomicCommand]
    dst: int


@dataclass
class Cfg:
    """A control-flow graph with a single entry and a single exit."""

    entry: int
    exit: int
    edges: List[CfgEdge] = field(default_factory=list)
    out_edges: Dict[int, List[CfgEdge]] = field(default_factory=dict)
    in_edges: Dict[int, List[CfgEdge]] = field(default_factory=dict)
    node_count: int = 0

    def successors(self, node: int) -> List[CfgEdge]:
        return self.out_edges.get(node, [])

    def predecessors(self, node: int) -> List[CfgEdge]:
        return self.in_edges.get(node, [])

    def observe_edges(self) -> Dict[str, List[CfgEdge]]:
        """Map each ``Observe`` label to the edges carrying it."""
        table: Dict[str, List[CfgEdge]] = {}
        for edge in self.edges:
            if isinstance(edge.command, Observe):
                table.setdefault(edge.command.label, []).append(edge)
        return table


class _Builder:
    def __init__(self) -> None:
        self.edges: List[CfgEdge] = []
        self._next = 0

    def fresh(self) -> int:
        node = self._next
        self._next += 1
        return node

    def edge(self, src: int, command: Optional[AtomicCommand], dst: int) -> None:
        self.edges.append(CfgEdge(src, command, dst))

    def lower(self, program: Program, entry: int, exit_: int) -> None:
        if isinstance(program, Skip):
            self.edge(entry, None, exit_)
        elif isinstance(program, Atom):
            self.edge(entry, program.command, exit_)
        elif isinstance(program, Seq):
            mid = self.fresh()
            self.lower(program.first, entry, mid)
            self.lower(program.second, mid, exit_)
        elif isinstance(program, Choice):
            self.lower(program.left, entry, exit_)
            self.lower(program.right, entry, exit_)
        elif isinstance(program, Star):
            head = self.fresh()
            self.edge(entry, None, head)
            self.lower(program.body, head, head)
            self.edge(head, None, exit_)
        else:
            raise TypeError(f"not a program node: {program!r}")


def build_cfg(program: Program) -> Cfg:
    """Lower a structured program to a control-flow graph."""
    builder = _Builder()
    entry = builder.fresh()
    exit_ = builder.fresh()
    builder.lower(program, entry, exit_)
    cfg = Cfg(entry=entry, exit=exit_, edges=builder.edges, node_count=builder._next)
    for edge in cfg.edges:
        cfg.out_edges.setdefault(edge.src, []).append(edge)
        cfg.in_edges.setdefault(edge.dst, []).append(edge)
    return cfg
