"""Syntactic universes of a program.

Client analyses need the sets of variables, allocation sites, fields
and globals a program mentions (to size abstraction families and state
schemas).  This module collects them in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.lang.ast import (
    Assign,
    AssignNull,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    Program,
    StoreField,
    StoreGlobal,
    ThreadStart,
    atoms_of,
)


@dataclass(frozen=True)
class Universe:
    """Everything a program's atomic commands mention."""

    variables: FrozenSet[str]
    sites: FrozenSet[str]
    fields: FrozenSet[str]
    globals: FrozenSet[str]
    methods: FrozenSet[str]
    observe_labels: FrozenSet[str]


def collect_universe(program: Program) -> Universe:
    """Collect the syntactic universes of ``program``."""
    variables, sites, fields = set(), set(), set()
    globals_, methods, labels = set(), set(), set()
    for command in atoms_of(program):
        if isinstance(command, New):
            variables.add(command.lhs)
            sites.add(command.site)
        elif isinstance(command, Assign):
            variables.update((command.lhs, command.rhs))
        elif isinstance(command, AssignNull):
            variables.add(command.lhs)
        elif isinstance(command, LoadGlobal):
            variables.add(command.lhs)
            globals_.add(command.glob)
        elif isinstance(command, StoreGlobal):
            variables.add(command.rhs)
            globals_.add(command.glob)
        elif isinstance(command, LoadField):
            variables.update((command.lhs, command.base))
            fields.add(command.field)
        elif isinstance(command, StoreField):
            variables.update((command.base, command.rhs))
            fields.add(command.field)
        elif isinstance(command, Invoke):
            variables.add(command.base)
            methods.add(command.method)
        elif isinstance(command, ThreadStart):
            variables.add(command.var)
        elif isinstance(command, Observe):
            labels.add(command.label)
        else:
            raise TypeError(f"unknown command: {command!r}")
    return Universe(
        variables=frozenset(variables),
        sites=frozenset(sites),
        fields=frozenset(fields),
        globals=frozenset(globals_),
        methods=frozenset(methods),
        observe_labels=frozenset(labels),
    )
